"""Tests for the native backend: plan lowering, caches, both exec paths.

The native backend is specified by the compiled int64 engine: on every
network and every encoded volley matrix the two must agree exactly —
the cross-family property sweep lives in
``tests/testing/test_native_properties.py``; here the unit tests pin
the kernel lowering, the mode switch, the buffer pool, the separate
plan cache, and the trace semantics.
"""

import numpy as np
import pytest

from repro.core.value import INF
from repro.ir import lower, optimize_program
from repro.native import (
    NativePlan,
    clear_native_plan_cache,
    compile_native,
    evaluate_batch_native,
    native_mode,
    native_plan_cache_info,
    set_native_plan_cache_limit,
)
from repro.native import jit as native_jit
from repro.native import plan as native_plan_mod
from repro.network.builder import NetworkBuilder
from repro.network.compile_plan import (
    INF_I64,
    evaluate_batch,
    plan_cache_info,
)
from repro.network.graph import NetworkError
from repro.network.serialize import dumps, loads
from repro.obs import reset_metrics
from repro.obs.metrics import METRICS


def diamond():
    b = NetworkBuilder("diamond")
    x, y = b.inputs("x", "y")
    fast = b.inc(b.min(x, y), 1)
    slow = b.inc(b.max(x, y), 3)
    b.output("first", b.lt(fast, slow))
    b.output("joined", b.min(fast, slow))
    return b.build()


def ragged_net():
    """Same-level min group with mixed arity — the reduceat kernel."""
    b = NetworkBuilder("ragged")
    x, y, z = b.inputs("x", "y", "z")
    b.output("pair", b.min(x, y))
    b.output("triple", b.min(x, y, z))
    b.output("wide", b.max(x, y, z))
    b.output("zero", b.max())  # const-0 fill
    b.output("never", b.min())  # const-∞ fill
    return b.build()


@pytest.fixture
def numba_mode(monkeypatch):
    """Force the row-interpreter path (pure-Python when Numba is absent)."""
    monkeypatch.setattr(native_jit, "NUMBA_AVAILABLE", True)
    monkeypatch.setattr(native_plan_mod._jit, "NUMBA_AVAILABLE", True)
    monkeypatch.setenv("REPRO_NATIVE", "numba")


class TestModeSelection:
    def test_default_is_numpy_without_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        if not native_jit.NUMBA_AVAILABLE:
            assert native_mode() == "numpy"

    def test_numpy_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "numpy")
        assert native_mode() == "numpy"

    def test_numba_without_numba_falls_back_counted(self, monkeypatch):
        monkeypatch.setattr(native_plan_mod._jit, "NUMBA_AVAILABLE", False)
        monkeypatch.setenv("REPRO_NATIVE", "numba")
        before = METRICS.counter("native.fallbacks")
        assert native_mode() == "numpy"
        assert METRICS.counter("native.fallbacks") == before + 1

    def test_numba_selected_when_available(self, numba_mode):
        assert native_mode() == "numba"

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "cuda")
        with pytest.raises(NetworkError, match="REPRO_NATIVE"):
            native_mode()


class TestLowering:
    def test_kernel_count_is_group_count_not_node_count(self):
        plan = NativePlan(diamond())
        # 2 inputs + 6 compute nodes, but fused to one kernel per
        # (level, kind) bucket: min, max, 2×inc (one level), lt, min.
        assert plan.n_nodes == 8
        assert 1 <= len(plan.kernels) <= 6

    def test_describe_lists_kernels(self):
        text = NativePlan(ragged_net()).describe()
        assert "arena rows" in text
        assert "const" in text and "min" in text and "max" in text

    def test_const_fills_cover_identities(self):
        plan = NativePlan(ragged_net())
        values = {f.value for f in plan.const_fills}
        assert values == {0, INF_I64}

    def test_ragged_group_uses_reduceat_kernel(self):
        plan = NativePlan(ragged_net())
        assert any(
            isinstance(k, native_plan_mod._RaggedReduceKernel)
            for k in plan.kernels
        )

    def test_uniform_group_uses_rectangular_kernel(self):
        plan = NativePlan(diamond())
        assert any(
            isinstance(k, native_plan_mod._UniformReduceKernel)
            for k in plan.kernels
        )

    def test_accepts_optimized_program(self):
        program, _report = optimize_program(lower(ragged_net()))
        plan = NativePlan(program)
        matrix = np.array([[0, 2, INF_I64]], dtype=np.int64)
        expected = evaluate_batch(program, matrix)
        np.testing.assert_array_equal(plan.outputs(matrix), expected)


class TestExecution:
    CASES = [
        [(0, 1), (2, 3), (INF, 0), (INF, INF), (5, 5)],
    ]

    def test_outputs_match_compiled(self):
        net = diamond()
        for volleys in self.CASES:
            expected = evaluate_batch(net, volleys)
            got = evaluate_batch_native(net, volleys)
            np.testing.assert_array_equal(got, expected)

    def test_rows_interpreter_matches_compiled(self, numba_mode):
        net = ragged_net()
        volleys = [(0, 1, 2), (INF, INF, INF), (7, 7, 7), (0, INF, 3)]
        expected = evaluate_batch(net, volleys)
        np.testing.assert_array_equal(
            evaluate_batch_native(net, volleys), expected
        )

    def test_run_returns_node_order_values(self):
        net = diamond()
        plan = compile_native(net)
        matrix = np.array([[2, 5]], dtype=np.int64)
        from repro.network.compile_plan import compile_plan

        expected = compile_plan(net).run(matrix)
        np.testing.assert_array_equal(plan.run(matrix), expected)

    def test_empty_batch(self):
        net = diamond()
        out = evaluate_batch_native(net, np.zeros((0, 2), dtype=np.int64))
        assert out.shape == (0, 2)

    def test_missing_params_rejected(self):
        b = NetworkBuilder()
        x = b.input("x")
        w = b.param("w")
        b.output("y", b.min(x, w))
        net = b.build()
        with pytest.raises(NetworkError, match="params"):
            compile_native(net).outputs(np.zeros((1, 1), dtype=np.int64))

    def test_params_bound(self):
        b = NetworkBuilder()
        x = b.input("x")
        w = b.param("w")
        b.output("y", b.min(x, w))
        net = b.build()
        expected = evaluate_batch(net, [(4,)], params={"w": INF})
        np.testing.assert_array_equal(
            evaluate_batch_native(net, [(4,)], params={"w": INF}), expected
        )

    def test_buffer_pool_recycles(self):
        plan = NativePlan(diamond())
        matrix = np.zeros((3, 2), dtype=np.int64)
        plan.outputs(matrix)
        assert len(plan._pool[("cols", 3)]) == 1
        plan.outputs(matrix)  # reuses the pooled set, returns it again
        assert len(plan._pool[("cols", 3)]) == 1

    def test_warm_counts(self):
        reset_metrics()
        NativePlan(diamond()).warm()
        assert METRICS.counter("plan.warmups.native") == 1


class TestTrace:
    def test_sink_trace_matches_interpreted(self):
        from repro.obs.trace import RecordingSink
        from repro.testing.oracles import InterpretedOracle, NativeOracle

        net = ragged_net()
        volley = (0, 3, INF)
        assert NativeOracle().trace(net, volley) == InterpretedOracle().trace(
            net, volley
        )

    def test_disabled_sink_skips_trace_path(self):
        from repro.obs.trace import RecordingSink

        sink = RecordingSink()
        sink.enabled = False
        out = evaluate_batch_native(diamond(), [(0, 1)], sink=sink)
        assert sink.canonical() == []
        assert out.shape == (1, 2)


class TestNativePlanCache:
    def setup_method(self):
        clear_native_plan_cache()

    def teardown_method(self):
        clear_native_plan_cache()
        set_native_plan_cache_limit(128)

    def test_identity_memoized(self):
        net = diamond()
        assert compile_native(net) is compile_native(net)

    def test_structural_twins_share_one_plan(self):
        net = diamond()
        twin = loads(dumps(net))
        assert twin is not net
        assert compile_native(twin) is compile_native(net)

    def test_separate_from_int64_cache(self):
        from repro.network.compile_plan import compile_plan

        net = diamond()
        assert compile_native(net) is not compile_plan(net)

    def test_hit_miss_counters(self):
        reset_metrics()
        net = diamond()
        compile_native(net)  # miss
        compile_native(net)  # identity hit
        compile_native(loads(dumps(net)))  # structural hit
        info = native_plan_cache_info()
        assert info["misses"] == 1
        assert info["hits_identity"] == 1
        assert info["hits_structural"] == 1

    def test_lru_eviction(self):
        reset_metrics()
        previous = set_native_plan_cache_limit(1)
        try:
            compile_native(diamond())
            compile_native(ragged_net())
            info = native_plan_cache_info()
            assert info["structural"] == 1
            assert info["evictions"] == 1
        finally:
            set_native_plan_cache_limit(previous)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            set_native_plan_cache_limit(0)

    def test_clear(self):
        compile_native(diamond())
        clear_native_plan_cache()
        info = native_plan_cache_info()
        assert info["identity"] == 0 and info["structural"] == 0

    def test_plan_cache_info_reports_native_key(self):
        # Satellite regression: the int64 cache report carries the
        # native cache record under a nested ``native`` key.
        compile_native(diamond())
        info = plan_cache_info()
        assert info["native"]["structural"] == 1
        assert info["native"]["mode"] in ("numpy", "numba")
        assert isinstance(info["native"]["numba_available"], bool)
