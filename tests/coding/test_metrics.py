"""Tests for volley metrics and coding efficiency (Fig. 5 analysis)."""

import math

import pytest

from repro.coding.metrics import (
    coding_efficiency,
    coincidence,
    mean_spikes_per_bit,
    temporal_distance,
)
from repro.coding.volley import Volley
from repro.core.value import INF


class TestCoincidence:
    def test_identical(self):
        v = Volley([0, 3, INF, 1])
        assert coincidence(v, v) == 1.0

    def test_shift_invariant(self):
        a = Volley([0, 3, INF, 1])
        assert coincidence(a, a.shifted(7)) == 1.0

    def test_partial_match(self):
        a = Volley([0, 3, INF])
        b = Volley([0, 4, INF])
        assert coincidence(a, b) == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            coincidence(Volley([0]), Volley([0, 1]))

    def test_empty(self):
        assert coincidence(Volley([]), Volley([])) == 1.0


class TestTemporalDistance:
    def test_zero_for_identical(self):
        v = Volley([0, 2, INF])
        assert temporal_distance(v, v) == 0.0

    def test_shift_invariant(self):
        a = Volley([0, 2, 5])
        assert temporal_distance(a, a.shifted(3)) == 0.0

    def test_counts_offsets(self):
        a = Volley([0, 2])
        b = Volley([0, 4])
        assert temporal_distance(a, b) == 1.0  # |2-4| / 2 lines

    def test_missing_spike_costs_more_than_jitter(self):
        a = Volley([0, 2])
        jittered = Volley([0, 3])
        dropped = Volley([0, INF])
        assert temporal_distance(a, dropped) > temporal_distance(a, jittered)

    def test_custom_missing_cost(self):
        a = Volley([0, INF])
        b = Volley([0, 0])
        assert temporal_distance(a, b, missing_cost=10) == 5.0


class TestCodingEfficiency:
    def test_fig5_numbers(self):
        # 4 lines, 3 spikes, 3-bit resolution: 6 bits in 8 time slots.
        eff = coding_efficiency(Volley([0, 3, INF, 1]), 3)
        assert eff.spikes == 3
        assert eff.bits == 6
        assert eff.message_time == 8

    def test_one_spike_per_n_bits_asymptotically(self):
        # The paper's claim: as n grows, cost approaches 1 spike / n bits,
        # i.e. bits_per_spike -> n.
        v = Volley(list(range(16)))  # 16 spikes
        for bits in (2, 4, 6):
            eff = coding_efficiency(v, bits)
            assert eff.bits_per_spike == pytest.approx(bits * 15 / 16)

    def test_message_time_grows_exponentially(self):
        times = [coding_efficiency(Volley([0, 1]), b).message_time for b in (2, 3, 4)]
        assert times == [4, 8, 16]

    def test_mean_spikes_per_bit(self):
        volleys = [Volley([0, 1, 2]), Volley([0, INF, 3])]
        total_spikes = 5
        total_bits = (2 + 1) * 3
        assert mean_spikes_per_bit(volleys, 3) == pytest.approx(
            total_spikes / total_bits
        )

    def test_mean_spikes_per_bit_degenerate(self):
        assert mean_spikes_per_bit([Volley([0, INF])], 3) == math.inf

    def test_sparse_coding_cheaper(self):
        dense = Volley([0, 1, 2, 3, 4, 5, 6, 7])
        sparse = Volley([0, 5, INF, INF, INF, INF, INF, INF])
        assert sparse.spike_count < dense.spike_count
