"""Tests for Address-Event Representation streams."""

import pytest

from repro.coding.aer import AEREvent, AERStream
from repro.core.value import INF


class TestEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            AEREvent(-1, 0, 0)
        with pytest.raises(ValueError):
            AEREvent(0, 0, 0, polarity=2)

    def test_ordering_by_time(self):
        assert AEREvent(1, 5, 5) < AEREvent(2, 0, 0)


class TestStream:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            AERStream(4, 4, [AEREvent(0, 4, 0)])

    def test_append_keeps_order(self):
        s = AERStream(4, 4)
        s.append(AEREvent(3, 0, 0))
        with pytest.raises(ValueError, match="time order"):
            s.append(AEREvent(1, 0, 0))

    def test_events_sorted_on_construction(self):
        s = AERStream(4, 4, [AEREvent(5, 1, 1), AEREvent(2, 0, 0)])
        assert [e.timestamp for e in s] == [2, 5]

    def test_line_addressing(self):
        s = AERStream(4, 2)
        on = AEREvent(0, 1, 1, polarity=1)
        off = AEREvent(0, 1, 1, polarity=-1)
        assert s.address(on) == 5
        assert s.address(off) == 5 + 8
        assert s.n_lines == 16

    def test_duration(self):
        s = AERStream(2, 2, [AEREvent(7, 0, 0)])
        assert s.duration == 8
        assert AERStream(2, 2).duration == 0


class TestWindowing:
    def make_stream(self):
        return AERStream(
            2,
            1,
            [
                AEREvent(0, 0, 0),
                AEREvent(2, 1, 0),
                AEREvent(3, 0, 0),  # second spike on line 0: ignored in window
                AEREvent(6, 1, 0, polarity=-1),
            ],
        )

    def test_window_volley_first_event_wins(self):
        s = self.make_stream()
        v = s.window_volley(0, 4)
        assert v[s.address(AEREvent(0, 0, 0))] == 0
        assert v[s.address(AEREvent(2, 1, 0))] == 2

    def test_window_times_are_relative(self):
        s = self.make_stream()
        v = s.window_volley(2, 4)
        assert v[s.address(AEREvent(2, 1, 0))] == 0

    def test_empty_window_is_silent(self):
        s = self.make_stream()
        assert s.window_volley(10, 4).is_silent

    def test_volleys_skip_empty_windows(self):
        s = self.make_stream()
        starts = [start for start, _ in s.volleys(2)]
        assert 4 not in starts  # no events in [4, 6)

    def test_volley_length_validation(self):
        with pytest.raises(ValueError):
            self.make_stream().window_volley(0, 0)


class TestFromFrames:
    def test_difference_encoding(self):
        frames = [
            [[0.0, 0.0]],
            [[1.0, 0.0]],  # pixel (0,0) rises
            [[0.0, 0.0]],  # pixel (0,0) falls
        ]
        s = AERStream.from_frames(frames, delta=0.5)
        assert len(s) == 2
        on, off = s.events
        assert on.polarity == 1 and on.timestamp == 1
        assert off.polarity == -1 and off.timestamp == 2

    def test_subthreshold_change_silent(self):
        frames = [[[0.0]], [[0.05]]]
        assert len(AERStream.from_frames(frames, delta=0.1)) == 0

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            AERStream.from_frames([[[0.0]]])

    def test_ticks_per_frame(self):
        frames = [[[0.0]], [[1.0]]]
        s = AERStream.from_frames(frames, delta=0.5, ticks_per_frame=3)
        assert s.events[0].timestamp == 3
