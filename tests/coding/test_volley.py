"""Tests for spike volleys (Fig. 5)."""

import pytest

from repro.coding.volley import FIG5_VOLLEY, Volley
from repro.core.value import INF


class TestConstruction:
    def test_fig5_example(self):
        # The paper's example vector [0, 3, ∞, 1].
        assert FIG5_VOLLEY.times == (0, 3, INF, 1)

    def test_from_values_none_is_silent(self):
        v = Volley.from_values([2, None, 0])
        assert v.times == (2, INF, 0)

    def test_silent(self):
        v = Volley.silent(3)
        assert v.is_silent
        assert v.spike_count == 0

    def test_immutable(self):
        with pytest.raises(AttributeError):
            FIG5_VOLLEY.times = (0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            Volley([-1, 2])

    def test_container_protocol(self):
        assert len(FIG5_VOLLEY) == 4
        assert FIG5_VOLLEY[1] == 3
        assert list(FIG5_VOLLEY) == [0, 3, INF, 1]

    def test_equality_with_tuple(self):
        assert FIG5_VOLLEY == (0, 3, INF, 1)
        assert Volley([1]) != Volley([2])

    def test_hashable(self):
        assert len({Volley([1, 2]), Volley([1, 2])}) == 1


class TestFrameOfReference:
    def test_normalized(self):
        v = Volley([5, 8, INF, 6])
        assert v.normalized() == (0, 3, INF, 1)

    def test_shifted(self):
        assert FIG5_VOLLEY.shifted(5) == (5, 8, INF, 6)

    def test_shift_roundtrip(self):
        v = Volley([5, 8, INF, 6])
        assert v.normalized().shifted(5) == v

    def test_silent_normalization_is_identity(self):
        v = Volley.silent(2)
        assert v.normalized() == v

    def test_is_normal(self):
        assert FIG5_VOLLEY.is_normal()
        assert not Volley([1, 2]).is_normal()
        assert Volley.silent(2).is_normal()

    def test_decode(self):
        assert Volley([5, 8, INF, 6]).decode() == [0, 3, None, 1]

    def test_encode_decode_roundtrip(self):
        values = [0, 3, None, 1]
        assert Volley.from_values(values).decode() == values


class TestMetrics:
    def test_spike_count_and_sparsity(self):
        v = Volley([0, INF, 2, INF])
        assert v.spike_count == 2
        assert v.sparsity == 0.5

    def test_span(self):
        assert Volley([2, 9, INF]).span == 7
        assert Volley([4]).span == 0
        assert Volley.silent(3).span == 0

    def test_bits_conveyed(self):
        # The paper: one line is the 0 reference, so s spikes convey
        # (s - 1) * n bits.
        v = Volley([0, 1, 2, 3])
        assert v.bits_conveyed(3) == 9

    def test_efficiency_improves_with_resolution(self):
        v = Volley([0, 1, 2, 3])
        assert v.spikes_per_bit(4) < v.spikes_per_bit(2)

    def test_single_spike_conveys_nothing(self):
        v = Volley([0, INF])
        assert v.bits_conveyed(3) == 0
        assert v.spikes_per_bit(3) == float("inf")

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            Volley([0]).bits_conveyed(0)
