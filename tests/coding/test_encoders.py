"""Tests for intensity → spike encoders."""

import pytest

from repro.coding.encoders import LatencyEncoder, OnOffEncoder, RankOrderEncoder
from repro.core.value import INF


class TestLatencyEncoder:
    def test_strongest_spikes_first(self):
        enc = LatencyEncoder(resolution_bits=3)
        v = enc.encode([1.0, 0.5, 0.1])
        assert v[0] == 0
        assert v[0] < v[1] < v[2]

    def test_silence_threshold(self):
        enc = LatencyEncoder(silence_threshold=0.2)
        v = enc.encode([0.1, 0.5])
        assert v[0] is INF
        assert v[1] is not INF

    def test_zero_is_silent(self):
        enc = LatencyEncoder()
        assert enc.encode([0.0])[0] is INF

    def test_window_size(self):
        assert LatencyEncoder(resolution_bits=4).window == 16

    def test_times_within_window(self):
        enc = LatencyEncoder(resolution_bits=3)
        v = enc.encode([x / 10 for x in range(1, 11)])
        for t in v:
            assert 0 <= t < enc.window

    def test_clamping(self):
        enc = LatencyEncoder(max_intensity=1.0)
        assert enc.encode([5.0])[0] == 0  # over-range clamps to earliest

    def test_decode_approximate_inverse(self):
        enc = LatencyEncoder(resolution_bits=4)
        values = [1.0, 0.6, 0.3]
        decoded = enc.decode(enc.encode(values))
        for original, recovered in zip(values, decoded):
            assert abs(original - recovered) < 0.1

    def test_decode_silence(self):
        enc = LatencyEncoder()
        assert enc.decode_one(INF) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyEncoder(resolution_bits=0)
        with pytest.raises(ValueError):
            LatencyEncoder(max_intensity=0.0)


class TestRankOrderEncoder:
    def test_ranks(self):
        enc = RankOrderEncoder()
        v = enc.encode([0.5, 0.9, 0.1])
        assert v.times == (1, 0, 2)

    def test_ties_share_rank(self):
        enc = RankOrderEncoder()
        v = enc.encode([0.5, 0.5, 0.1])
        assert v[0] == v[1] == 0
        assert v[2] == 1

    def test_silence(self):
        enc = RankOrderEncoder(silence_threshold=0.2)
        v = enc.encode([0.1, 0.9, 0.05])
        assert v[0] is INF and v[2] is INF
        assert v[1] == 0

    def test_output_is_normalized(self):
        enc = RankOrderEncoder()
        assert enc.encode([0.2, 0.8]).is_normal()

    def test_all_silent(self):
        enc = RankOrderEncoder()
        assert enc.encode([0.0, 0.0]).is_silent


class TestOnOffEncoder:
    def test_rise_spikes_on_line(self):
        enc = OnOffEncoder(delta=0.1)
        v = enc.encode([0.0, 0.5], [0.5, 0.5])
        # Input 0 rose: ON line (index 0) spikes, OFF line (1) silent.
        assert v[0] is not INF
        assert v[1] is INF
        # Input 1 unchanged: both lines silent.
        assert v[2] is INF and v[3] is INF

    def test_fall_spikes_off_line(self):
        enc = OnOffEncoder(delta=0.1)
        v = enc.encode([0.8], [0.2])
        assert v[0] is INF
        assert v[1] is not INF

    def test_small_change_ignored(self):
        enc = OnOffEncoder(delta=0.2)
        v = enc.encode([0.5], [0.55])
        assert v.is_silent

    def test_larger_change_spikes_earlier(self):
        enc = OnOffEncoder(delta=0.1)
        small = enc.encode([0.0], [0.3])
        large = enc.encode([0.0], [0.9])
        assert large[0] < small[0]

    def test_frame_length_mismatch(self):
        enc = OnOffEncoder()
        with pytest.raises(ValueError):
            enc.encode([0.1], [0.1, 0.2])

    def test_two_lines_per_input(self):
        enc = OnOffEncoder()
        assert len(enc.encode([0.1] * 5, [0.9] * 5)) == 10
