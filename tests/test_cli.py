"""Tests for the ``python -m repro`` entry point."""

from repro.__main__ import main


class TestCli:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "[ok]" in out
        assert "FAIL" not in out.replace("CHECK(S) FAILED", "")

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "repro.core" in out
        assert "repro.racelogic" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "repro 1.0.0" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2
        assert "unknown command" in capsys.readouterr().out
