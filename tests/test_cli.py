"""Tests for the ``python -m repro`` entry point."""

from repro.__main__ import main


class TestCli:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "[ok]" in out
        assert "FAIL" not in out.replace("CHECK(S) FAILED", "")

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "repro.core" in out
        assert "repro.racelogic" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "repro 1.0.0" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2
        out = capsys.readouterr().out
        assert "unknown command" in out
        assert "conformance" in out

    def test_conformance_smoke(self, capsys):
        code = main(
            ["conformance", "--seed", "0", "--count", "3", "--smoke"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance sweep: seeds 0..2" in out
        assert "zero cross-backend disagreements" in out
        assert "all killed" in out
        assert "verdict: OK" in out

    def test_conformance_flags(self, capsys):
        code = main(
            [
                "conformance",
                "--seed",
                "1",
                "--count",
                "2",
                "--smoke",
                "--no-grl",
                "--no-faults",
                "--no-shrink",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault self-check" not in out
        assert "verdict: OK" in out
