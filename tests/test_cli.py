"""Tests for the ``python -m repro`` entry point."""

import json

from repro.__main__ import main


class TestCli:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "ALL CHECKS PASSED" in out
        assert "[ok]" in out
        assert "FAIL" not in out.replace("CHECK(S) FAILED", "")

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "repro.core" in out
        assert "repro.racelogic" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "repro 1.0.0" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2
        out = capsys.readouterr().out
        assert "unknown command" in out
        assert "conformance" in out
        assert "trace" in out
        assert "stats" in out
        assert "serve" in out
        assert "loadgen" in out

    def test_conformance_smoke(self, capsys):
        code = main(
            ["conformance", "--seed", "0", "--count", "3", "--smoke"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance sweep: seeds 0..2" in out
        assert "zero cross-backend disagreements" in out
        assert "all killed" in out
        assert "verdict: OK" in out

    def test_trace_smoke(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--seed",
                "0",
                "--smoke",
                "--jsonl",
                str(jsonl),
                "--chrome",
                str(chrome),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in out
        assert "grl-circuit" in out
        # Valid JSONL: every line parses with the canonical keys.
        lines = jsonl.read_text().splitlines()
        assert lines
        for line in lines:
            assert set(json.loads(line)) == {"t", "node", "kind", "name", "cause"}
        # Valid Chrome trace: instant events present.
        doc = json.loads(chrome.read_text())
        assert any(e.get("ph") == "i" for e in doc["traceEvents"])

    def test_trace_is_deterministic_per_seed(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["trace", "--seed", "5", "--smoke", "--jsonl", str(a)]) == 0
        assert main(["trace", "--seed", "5", "--smoke", "--jsonl", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_stats_exercise(self, capsys):
        assert main(["stats", "--exercise", "--plan-cache", "--reset"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "evaluate_batch.calls" in out
        assert "events.runs" in out
        assert "plan cache:" in out
        assert "metrics reset" in out

    def test_stats_json(self, capsys):
        assert main(["stats", "--exercise", "--plan-cache", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload and "plan_cache" in payload
        assert payload["metrics"]["counters"]["evaluate_batch.calls"] >= 1
        for key in ("hits_identity", "hits_structural", "misses"):
            assert key in payload["plan_cache"]

    def test_stats_json_includes_serve_section(self, capsys):
        assert main(["stats", "--json"]) == 0
        serve = json.loads(capsys.readouterr().out)["serve"]
        assert "queue_depth" in serve
        assert "batch_size" in serve and "buckets" in serve["batch_size"]
        for key in ("p50_ms", "p90_ms", "p99_ms"):
            assert key in serve["latency"]
        assert "rejected" in serve and "worker_restarts" in serve

    def test_stats_json_serve_reflects_traffic(self, capsys):
        from repro.serve import (
            BatchPolicy,
            InlineWorkerPool,
            ModelRegistry,
            TNNService,
        )
        from repro.serve.demo import demo_column

        registry = ModelRegistry()
        registry.register(demo_column(0, smoke=True)[0], name="demo")
        service = TNNService(
            registry,
            InlineWorkerPool(registry.documents()),
            policy=BatchPolicy(max_batch=4, max_wait_s=0.001),
        )
        try:
            futures = [service.submit("demo", (i, 0)) for i in range(8)]
            for f in futures:
                f.result(timeout=10)
        finally:
            service.close()
        assert main(["stats", "--json"]) == 0
        serve = json.loads(capsys.readouterr().out)["serve"]
        assert serve["batch_size"]["rows"] >= 8
        assert serve["latency"]["count"] >= 8

    def test_stats_json_training_section(self, capsys):
        assert main(["stats", "--json"]) == 0
        training = json.loads(capsys.readouterr().out)["training"]
        for key in ("steps", "snapshots", "promotions", "last_accuracy"):
            assert key in training
        for key in ("accepted", "dropped", "depth"):
            assert key in training["queue"]

    def test_serve_and_loadgen_help(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--help"])
        assert exit_info.value.code == 0
        assert "micro-batched" in capsys.readouterr().out
        with pytest.raises(SystemExit) as exit_info:
            main(["loadgen", "--help"])
        assert exit_info.value.code == 0
        assert "byte-check" in capsys.readouterr().out

    def test_conformance_flags(self, capsys):
        code = main(
            [
                "conformance",
                "--seed",
                "1",
                "--count",
                "2",
                "--smoke",
                "--no-grl",
                "--no-faults",
                "--no-shrink",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault self-check" not in out
        assert "verdict: OK" in out

    def test_kernels_lists_registry(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "registered s-t kernels (9)" in out
        for name in (
            "interval-shift",
            "interval-intersect",
            "latch",
            "barrier",
            "router",
            "accumulator",
        ):
            assert name in out

    def test_kernels_demo_runs_all_backends(self, capsys):
        assert main(["kernels", "--demo", "latch"]) == 0
        out = capsys.readouterr().out
        assert "kernel latch" in out
        assert "byte-identical across 5 backend(s)" in out
        for backend in (
            "interpreted",
            "compiled-batch",
            "event-driven",
            "grl-circuit",
            "native",
        ):
            assert backend in out
        assert "function-table contract" in out
        assert "q:" in out and "missed:" in out

    def test_kernels_demo_no_grl(self, capsys):
        assert main(["kernels", "--demo", "router", "--no-grl"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical across 4 backend(s)" in out

    def test_kernels_demo_unknown_name(self, capsys):
        assert main(["kernels", "--demo", "bogus"]) == 2
        out = capsys.readouterr().out
        assert "unknown kernel" in out
        assert "interval-shift" in out

    def test_conformance_family_pin(self, capsys):
        code = main(
            [
                "conformance",
                "--seed",
                "0",
                "--count",
                "2",
                "--smoke",
                "--family",
                "kernels",
                "--no-faults",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "zero cross-backend disagreements" in out

    def test_conformance_family_unknown(self, capsys):
        code = main(
            ["conformance", "--count", "1", "--family", "bogus"]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown family" in out

    def test_train_smoke_end_to_end(self, capsys, tmp_path):
        lineage_path = tmp_path / "lineage.json"
        code = main(
            [
                "train",
                "--smoke",
                "--lineage-out",
                str(lineage_path),
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["final_accuracy"] > report["untrained_accuracy"]
        assert report["snapshots"] >= 2
        assert report["curve"][0]["steps"] == 0  # the seed record
        assert report["curve"][-1]["model"] == report["final_model"]

        from repro.train import ModelLineage

        lineage = ModelLineage.load(str(lineage_path))
        assert lineage.head() == report["final_model"]

        code = main(["train", "--show", str(lineage_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "lineage 'digits-smoke@live'" in out
        assert report["final_model"][:12] in out

    def test_train_source_arity_mismatch(self, capsys, tmp_path):
        from repro.train import TrainingItem, save_items

        bad = tmp_path / "bad.ndjson"
        save_items([TrainingItem(volley=(0, 1))], str(bad))
        assert main(["train", "--smoke", "--source", str(bad)]) == 2
        assert "takes 10 lines" in capsys.readouterr().out

    def test_train_show_missing_file(self, capsys, tmp_path):
        assert main(["train", "--show", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_unknown_command_mentions_kernels(self, capsys):
        assert main(["bogus"]) == 2
        assert "kernels" in capsys.readouterr().out
