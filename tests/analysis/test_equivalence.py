"""Tests for the cross-implementation equivalence harness."""

import pytest

from repro.analysis.equivalence import (
    check_network,
    compare,
    network_implementations,
)
from repro.core.synthesis import max_from_min_lt, synthesize
from repro.core.table import FIG7_TABLE
from repro.core.value import INF
from repro.network.builder import NetworkBuilder


class TestCompare:
    def test_agreement(self):
        impls = {
            "a": lambda vec: {"y": min(vec)},
            "b": lambda vec: {"y": min(vec)},
        }
        report = compare(impls, [(1, 2), (3, 0)])
        assert report.ok
        assert report.vectors_checked == 2

    def test_disagreement_recorded(self):
        impls = {
            "a": lambda vec: {"y": min(vec)},
            "b": lambda vec: {"y": max(vec)},
        }
        report = compare(impls, [(1, 2), (3, 3)])
        assert not report.ok
        assert report.disagreements[0].inputs == (1, 2)
        # (3, 3): min == max, agree.
        assert len(report.disagreements) == 1

    def test_disagreement_cap(self):
        impls = {
            "a": lambda vec: {"y": 0},
            "b": lambda vec: {"y": 1},
        }
        report = compare(impls, [(i,) for i in range(50)], max_disagreements=5)
        assert len(report.disagreements) == 5

    def test_needs_two(self):
        with pytest.raises(ValueError):
            compare({"only": lambda vec: {}}, [])

    def test_str(self):
        impls = {
            "a": lambda vec: {"y": 0},
            "b": lambda vec: {"y": 0},
        }
        text = str(compare(impls, [(0,)]))
        assert "all agree" in text


class TestCheckNetwork:
    def test_fig7_all_semantics_agree(self):
        report = check_network(synthesize(FIG7_TABLE), window=3)
        assert report.ok, str(report)
        assert set(report.implementations) == {
            "denotational",
            "event-driven",
            "grl-digital",
        }

    def test_lemma2_agrees(self):
        report = check_network(max_from_min_lt(), window=4)
        assert report.ok

    def test_sampled_mode(self):
        report = check_network(synthesize(FIG7_TABLE), window=6, sample=40)
        assert report.ok
        assert report.vectors_checked == 40

    def test_without_grl(self):
        report = check_network(
            max_from_min_lt(), window=3, include_grl=False
        )
        assert report.ok
        assert "grl-digital" not in report.implementations

    def test_params_must_be_bound(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("y", b.gate(x, mu))
        with pytest.raises(ValueError, match="parameters"):
            network_implementations(b.build())

    def test_catches_injected_bug(self):
        # Hand-build mismatched implementations through the public API.
        net = max_from_min_lt()
        impls = network_implementations(net, include_grl=False)
        impls["broken"] = lambda vec: {"c": INF}
        report = compare(impls, [(0, 1)])
        assert not report.ok
