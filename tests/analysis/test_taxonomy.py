"""Tests for the RNN/TNN taxonomy spike-count test (Fig. 3)."""

from repro.analysis.taxonomy import (
    NetworkClass,
    classify_counts,
    classify_simulation,
    synthetic_rate_trace,
)
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.network.events import simulate


class TestClassifyCounts:
    def test_tnn(self):
        report = classify_counts([1, 0, 1, 1, 0])
        assert report.classification is NetworkClass.TNN
        assert report.active_lines == 3
        assert report.max_spikes_per_line == 1

    def test_rnn(self):
        report = classify_counts([3, 5, 2, 4])
        assert report.classification is NetworkClass.RNN
        assert report.mean_spikes_per_active_line == 3.5

    def test_mixed(self):
        report = classify_counts([1, 5, 0])
        assert report.classification is NetworkClass.MIXED

    def test_silent(self):
        report = classify_counts([0, 0])
        assert report.classification is NetworkClass.SILENT


class TestClassifySimulation:
    def test_our_networks_are_tnns(self):
        # By construction every s-t computation is single-spike-per-line.
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
        report = classify_simulation(result)
        assert report.classification is NetworkClass.TNN

    def test_silent_computation(self):
        net = synthesize(FIG7_TABLE)
        from repro.core.value import INF

        result = simulate(net, dict(zip(net.input_names, (INF, INF, INF))))
        assert classify_simulation(result).classification is NetworkClass.SILENT


class TestSyntheticRate:
    def test_classified_as_rnn(self):
        counts = synthetic_rate_trace(30, mean_rate=4.0, seed=1)
        assert classify_counts(counts).classification is NetworkClass.RNN

    def test_minimum_two_spikes(self):
        counts = synthetic_rate_trace(50, mean_rate=0.5, seed=2)
        assert min(counts) >= 2

    def test_deterministic(self):
        assert synthetic_rate_trace(10, seed=3) == synthetic_rate_trace(10, seed=3)
