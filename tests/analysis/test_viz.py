"""Tests for the ASCII visualizers."""

from repro.analysis.viz import raster, response_plot, trace_raster, waveforms
from repro.coding.volley import FIG5_VOLLEY, Volley
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.core.value import INF
from repro.network.events import simulate
from repro.neuron.response import FIG11_RESPONSE, ResponseFunction
from repro.racelogic.signals import EdgeSignal


class TestRaster:
    def test_fig5_volley(self):
        text = raster([FIG5_VOLLEY])
        assert "x0" in text
        assert "no spike" in text  # the ∞ line
        # Spike at time 3 on line 1.
        line1 = [l for l in text.splitlines() if l.startswith("x1")][0]
        assert line1[line1.index("|") + 1 + 3] == "|"

    def test_multiple_volleys_with_labels(self):
        text = raster(
            [Volley([0, 2]), Volley([0, INF])], labels=["before", "after"]
        )
        assert "before" in text and "after" in text

    def test_empty(self):
        assert "(no volleys)" in raster([])

    def test_custom_width_clips(self):
        text = raster([Volley([0, 9])], width=5)
        header = text.splitlines()[0]
        assert header.endswith("01234")


class TestResponsePlot:
    def test_fig11_shape(self):
        text = response_plot(FIG11_RESPONSE)
        assert "5 |" in text  # the peak level
        assert "0 +" in text  # the axis

    def test_inhibitory_levels_below_axis(self):
        text = response_plot(ResponseFunction([0, -2, -1]))
        assert "-2 |" in text

    def test_width_matches_tmax(self):
        r = ResponseFunction([0, 1, 1, 0])
        axis = [l for l in response_plot(r).splitlines() if "+" in l][0]
        assert axis.count("-") == r.t_max + 1


class TestWaveforms:
    def test_basic(self):
        text = waveforms(
            {
                "a": EdgeSignal(2).trace(6),
                "b": EdgeSignal.never().trace(6),
            }
        )
        lines = text.splitlines()
        assert len(lines) == 3
        a_row = [l for l in lines if l.strip().startswith("a")][0]
        assert "¯¯_____" in a_row.replace(" ", "")[1:]  # falls at cycle 2

    def test_empty(self):
        assert "(no signals)" in waveforms({})


class TestTraceRaster:
    def test_fires_render(self):
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
        text = trace_raster(result)
        assert "time" in text
        assert "|" in text

    def test_silent(self):
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (INF, INF, INF))))
        assert "(silent computation)" in trace_raster(result)

    def test_max_nodes_elision(self):
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
        text = trace_raster(result, max_nodes=3)
        assert "elided" in text

    def test_node_names(self):
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
        names = {net.input_ids["x1"]: "inA"}
        assert "inA" in trace_raster(result, node_names=names)
