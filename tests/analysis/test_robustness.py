"""Tests for jitter robustness analysis."""

import random

import numpy as np
import pytest

from repro.analysis.robustness import (
    column_evaluator,
    jitter_input,
    measure_robustness,
    network_evaluator,
)
from repro.core.synthesis import synthesize
from repro.core.table import NormalizedTable
from repro.core.value import INF
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction


class TestJitterInput:
    def test_zero_jitter_is_identity(self):
        rng = random.Random(0)
        volley = (0, 3, INF, 5)
        assert jitter_input(volley, jitter=0, rng=rng) == volley

    def test_silence_stays_silent(self):
        rng = random.Random(0)
        out = jitter_input((INF, INF), jitter=3, rng=rng)
        assert out == (INF, INF)

    def test_bounded(self):
        rng = random.Random(1)
        volley = tuple(range(10))
        for _ in range(20):
            noisy = jitter_input(volley, jitter=2, rng=rng)
            for clean, moved in zip(volley, noisy):
                assert abs(int(moved) - clean) <= 2 or moved == 0

    def test_clamped_at_zero(self):
        rng = random.Random(2)
        for _ in range(20):
            out = jitter_input((0,), jitter=3, rng=rng)
            assert out[0] >= 0


class TestMeasure:
    def make_column(self):
        base = ResponseFunction.step(amplitude=1, width=8)
        weights = np.array([[4, 4, 0, 0], [0, 0, 4, 4]])
        return Column(weights, threshold=6, base_response=base)

    def test_zero_jitter_perfectly_stable(self):
        col = self.make_column()
        report = measure_robustness(
            column_evaluator(col),
            [(0, 0, INF, INF), (INF, INF, 0, 1)],
            jitter=0,
            trials_per_volley=3,
        )
        assert report.pattern_stability == 1.0
        assert report.mean_time_deviation == 0.0
        assert report.appearance_changes == 0

    def test_stability_degrades_with_jitter(self):
        col = self.make_column()
        volleys = [(0, 1, INF, INF), (INF, INF, 1, 0), (0, 0, 2, 2)]
        stabilities = []
        for jitter in (0, 1, 3):
            report = measure_robustness(
                column_evaluator(col),
                volleys,
                jitter=jitter,
                trials_per_volley=15,
                seed=5,
            )
            stabilities.append(report.pattern_stability)
        assert stabilities[0] >= stabilities[1] >= stabilities[2] - 0.15

    def test_same_seed_same_report(self):
        col = self.make_column()
        volleys = [(0, 1, INF, INF), (0, 0, 2, 2)]
        runs = [
            measure_robustness(
                column_evaluator(col), volleys, jitter=2, seed=17
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_default_seed_is_zero(self):
        col = self.make_column()
        volleys = [(0, 1, INF, INF)]
        implicit = measure_robustness(column_evaluator(col), volleys, jitter=2)
        explicit = measure_robustness(
            column_evaluator(col), volleys, jitter=2, seed=0
        )
        legacy = measure_robustness(
            column_evaluator(col), volleys, jitter=2, rng=random.Random(0)
        )
        assert implicit == explicit == legacy

    def test_seed_and_rng_mutually_exclusive(self):
        col = self.make_column()
        with pytest.raises(ValueError, match="not both"):
            measure_robustness(
                column_evaluator(col), [], seed=1, rng=random.Random(1)
            )

    def test_network_evaluator_adapter(self):
        table = NormalizedTable.random(3, window=3, n_rows=4, rng=random.Random(2))
        net = synthesize(table)
        evaluator = network_evaluator(net)
        out = evaluator((0, 1, 2))
        assert len(out) == 1  # single output 'y'
        report = measure_robustness(
            evaluator, [(0, 1, 2)], jitter=1, trials_per_volley=5
        )
        assert report.trials == 5

    def test_negative_jitter_rejected(self):
        col = self.make_column()
        with pytest.raises(ValueError):
            measure_robustness(column_evaluator(col), [], jitter=-1)

    def test_report_str(self):
        col = self.make_column()
        report = measure_robustness(
            column_evaluator(col), [(0, 0, 0, 0)], jitter=1, trials_per_volley=2
        )
        assert "stable" in str(report)
