"""Tests for structural validation and dead-node elimination."""

from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate_vector
from repro.network.validate import (
    check_feedforward,
    live_node_ids,
    strip_dead_nodes,
    validate,
)


def with_dead_branch():
    b = NetworkBuilder("deadish")
    x, y = b.inputs("x", "y")
    live = b.min(x, y)
    b.inc(live, 5)  # dead: feeds nothing
    b.max(x, y)  # dead
    b.output("out", live)
    return b.build()


class TestValidation:
    def test_clean_network_ok(self):
        b = NetworkBuilder("clean")
        x, y = b.inputs("x", "y")
        b.output("m", b.min(x, y))
        report = validate(b.build())
        assert report.ok
        assert report.is_feedforward
        assert "feedforward" in str(report)

    def test_dead_nodes_flagged(self):
        report = validate(with_dead_branch())
        assert not report.ok
        assert len(report.dead_node_ids) == 2

    def test_passthrough_output_flagged(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", x)
        b.output("z", b.inc(x, 1))
        report = validate(b.build())
        assert report.passthrough_outputs == ["y"]

    def test_unused_param_flagged(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.param("mu")
        b.output("y", b.inc(x, 1))
        report = validate(b.build())
        assert report.unused_params == ["mu"]

    def test_feedforward_check(self):
        assert check_feedforward(with_dead_branch())


class TestLiveness:
    def test_live_set(self):
        net = with_dead_branch()
        live = live_node_ids(net)
        assert net.outputs["out"] in live
        # inputs are reachable backwards from the output
        assert net.input_ids["x"] in live

    def test_strip_dead_nodes_preserves_semantics(self):
        net = with_dead_branch()
        stripped = strip_dead_nodes(net)
        assert stripped.size < net.size
        for vec in [(0, 1), (5, 2), (INF, 3), (INF, INF)]:
            assert (
                evaluate_vector(stripped, vec) == evaluate_vector(net, vec)
            ), vec

    def test_strip_keeps_interface(self):
        net = with_dead_branch()
        stripped = strip_dead_nodes(net)
        assert stripped.input_names == net.input_names
        assert stripped.output_names == net.output_names

    def test_strip_clean_network_is_noop(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.min(x, y))
        net = b.build()
        assert strip_dead_nodes(net).size == net.size
