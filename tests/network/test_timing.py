"""Tests for static timing analysis (interval abstraction)."""

import itertools
import random

import pytest

from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.graph import NetworkError
from repro.network.simulator import evaluate_all
from repro.network.timing import (
    TimeInterval,
    analyze,
    default_input_window,
    makespan_bound,
    output_intervals,
)


class TestInterval:
    def test_exactly(self):
        i = TimeInterval.exactly(4)
        assert i.contains(4)
        assert not i.contains(5)
        assert not i.contains(INF)
        assert i.certain

    def test_never(self):
        i = TimeInterval.never()
        assert i.contains(INF)
        assert not i.contains(0)
        assert not i.certain

    def test_window_with_absence(self):
        i = TimeInterval.window(2, 5, may_be_absent=True)
        assert i.contains(3)
        assert i.contains(INF)
        assert not i.certain

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(5, 2)

    def test_must_allow_something(self):
        with pytest.raises(ValueError):
            TimeInterval(0, 0, may_be_absent=False, may_spike=False)

    def test_str(self):
        assert "∞" in str(TimeInterval.window(0, 3, may_be_absent=True))
        assert "never" in str(TimeInterval.never())


class TestSoundness:
    """The abstraction must contain every concrete behaviour."""

    def _check_sound(self, network, input_windows, concrete_choices):
        intervals = analyze(network, input_windows)
        names = network.input_names
        for vec in concrete_choices:
            concrete = evaluate_all(network, dict(zip(names, vec)))
            for node_id, value in enumerate(concrete):
                assert intervals[node_id].contains(value), (
                    vec,
                    node_id,
                    value,
                    str(intervals[node_id]),
                )

    def test_sound_on_fig7_network(self):
        net = synthesize(FIG7_TABLE)
        window = TimeInterval.window(0, 3, may_be_absent=True)
        choices = list(
            itertools.product([0, 1, 2, 3, INF], repeat=3)
        )
        self._check_sound(net, dict.fromkeys(net.input_names, window), choices)

    @pytest.mark.parametrize("seed", range(3))
    def test_sound_on_random_networks(self, seed):
        rng = random.Random(seed)
        b = NetworkBuilder(f"t{seed}")
        pool = [b.input(f"x{i}") for i in range(3)]
        for _ in range(15):
            op = rng.choice(["inc", "min", "max", "lt"])
            if op == "inc":
                pool.append(b.inc(rng.choice(pool), rng.randint(1, 3)))
            elif op == "lt":
                pool.append(b.lt(rng.choice(pool), rng.choice(pool)))
            else:
                pool.append(getattr(b, op)(rng.choice(pool), rng.choice(pool)))
        b.output("y", pool[-1])
        net = b.build()
        window = TimeInterval.window(0, 2, may_be_absent=True)
        choices = list(itertools.product([0, 1, 2, INF], repeat=3))
        self._check_sound(net, dict.fromkeys(net.input_names, window), choices)

    def test_exact_inputs_give_exact_outputs_on_linear_chain(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(x, 5))
        net = b.build()
        out = output_intervals(net, {"x": TimeInterval.exactly(2)})["y"]
        assert out.lo == out.hi == 7
        assert out.certain


class TestTransferFunctions:
    def test_min_of_certain_tightens_upper(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.min(x, y))
        out = output_intervals(
            b.build(),
            {
                "x": TimeInterval.window(0, 10),  # certain
                "y": TimeInterval.window(3, 20, may_be_absent=True),
            },
        )["m"]
        assert out.hi == 10  # the certain input bounds the first arrival
        assert out.certain

    def test_max_absent_if_any_absent(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.max(x, y))
        out = output_intervals(
            b.build(),
            {
                "x": TimeInterval.window(0, 2),
                "y": TimeInterval.window(1, 3, may_be_absent=True),
            },
        )["m"]
        assert out.may_be_absent
        assert (out.lo, out.hi) == (1, 3)

    def test_lt_guaranteed_win(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("z", b.lt(x, y))
        out = output_intervals(
            b.build(),
            {
                "x": TimeInterval.window(0, 2),
                "y": TimeInterval.window(5, 9),
            },
        )["z"]
        assert out.certain
        assert (out.lo, out.hi) == (0, 2)

    def test_lt_guaranteed_loss(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("z", b.lt(x, y))
        out = output_intervals(
            b.build(),
            {
                "x": TimeInterval.window(5, 9),
                "y": TimeInterval.window(0, 2),
            },
        )["z"]
        assert not out.may_spike

    def test_unbound_inputs_rejected(self):
        net = synthesize(FIG7_TABLE)
        with pytest.raises(NetworkError, match="unbound"):
            analyze(net, {})


class TestMakespan:
    def test_bound_dominates_concrete_makespan(self):
        from repro.network.events import simulate

        net = synthesize(FIG7_TABLE)
        bound = makespan_bound(net, default_input_window(net, 3))
        for vec in itertools.product([0, 1, 2, 3, INF], repeat=3):
            result = simulate(net, dict(zip(net.input_names, vec)))
            # A silent run (makespan None) is trivially within the bound.
            assert (result.makespan or 0) <= bound, vec

    def test_bound_scales_with_window(self):
        net = synthesize(FIG7_TABLE)
        small = makespan_bound(net, default_input_window(net, 2))
        large = makespan_bound(net, default_input_window(net, 8))
        assert large > small

    def test_silent_network_bound(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.lt(x, x))
        net = b.build()
        windows = {"x": TimeInterval.window(0, 4)}
        # x itself can spike; the bound covers it.
        assert makespan_bound(net, windows) >= 4
