"""Tests for NetworkBuilder and Node construction."""

import pytest

from repro.network.blocks import Node
from repro.network.builder import NetworkBuilder
from repro.network.graph import Network, NetworkError
from repro.network.simulator import evaluate, evaluate_vector
from repro.core.value import INF


def build_fig6b():
    """The small example network of the paper's Fig. 6b shape."""
    b = NetworkBuilder("fig6b")
    x1, x2, x3 = b.inputs("x1", "x2", "x3")
    first = b.min(x1, x2)
    delayed = b.inc(first, 2)
    b.output("y", b.lt(delayed, x3))
    return b.build()


class TestBuilder:
    def test_basic_network(self):
        net = build_fig6b()
        assert net.input_names == ["x1", "x2", "x3"]
        assert net.output_names == ["y"]
        assert net.size == 3

    def test_evaluation(self):
        net = build_fig6b()
        assert evaluate_vector(net, (1, 4, 9))["y"] == 3
        assert evaluate_vector(net, (1, 4, 3))["y"] is INF

    def test_duplicate_input_name(self):
        b = NetworkBuilder()
        b.input("a")
        with pytest.raises(NetworkError, match="duplicate"):
            b.input("a")

    def test_param_and_input_share_namespace(self):
        b = NetworkBuilder()
        b.input("mu")
        with pytest.raises(NetworkError):
            b.param("mu")

    def test_duplicate_output_name(self):
        b = NetworkBuilder()
        a = b.input("a")
        b.output("y", a)
        with pytest.raises(NetworkError, match="duplicate"):
            b.output("y", a)

    def test_no_outputs_rejected(self):
        b = NetworkBuilder()
        b.input("a")
        with pytest.raises(NetworkError, match="no outputs"):
            b.build()

    def test_foreign_ref_rejected(self):
        b1, b2 = NetworkBuilder(), NetworkBuilder()
        a = b1.input("a")
        with pytest.raises(NetworkError, match="another builder"):
            b2.inc(a)

    def test_zero_inc_elided(self):
        b = NetworkBuilder()
        a = b.input("a")
        same = b.inc(a, 0)
        assert same.id == a.id

    def test_single_source_min_elided(self):
        b = NetworkBuilder()
        a = b.input("a")
        assert b.min(a).id == a.id
        assert b.max(a).id == a.id

    def test_comparator(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        lo, hi = b.comparator(x, y)
        b.output("lo", lo)
        b.output("hi", hi)
        net = b.build()
        out = evaluate_vector(net, (7, 3))
        assert out == {"lo": 3, "hi": 7}

    def test_gate_microweight(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        net = b.build()
        assert evaluate(net, {"x": 4}, params={"mu": INF})["z"] == 4
        assert evaluate(net, {"x": 4}, params={"mu": 0})["z"] is INF


class TestMerge:
    def test_merge_with_rename(self):
        inner_b = NetworkBuilder("inner")
        p, q = inner_b.inputs("p", "q")
        inner_b.output("m", inner_b.min(p, q))
        inner = inner_b.build()

        outer = NetworkBuilder("outer")
        a, b_in = outer.inputs("a", "b")
        refs = outer.merge(inner, rename={"p": a, "q": b_in})
        outer.output("y", outer.inc(refs["m"], 1))
        net = outer.build()
        assert net.input_names == ["a", "b"]
        assert evaluate_vector(net, (5, 2))["y"] == 3

    def test_merge_fresh_inputs_with_prefix(self):
        inner_b = NetworkBuilder("inner")
        p = inner_b.input("p")
        inner_b.output("o", inner_b.inc(p, 1))
        inner = inner_b.build()

        outer = NetworkBuilder("outer")
        refs = outer.merge(inner, prefix="sub_")
        outer.output("y", refs["o"])
        net = outer.build()
        assert net.input_names == ["sub_p"]

    def test_merge_imports_params(self):
        inner_b = NetworkBuilder("inner")
        x = inner_b.input("x")
        mu = inner_b.param("mu")
        inner_b.output("z", inner_b.gate(x, mu))
        inner = inner_b.build()

        outer = NetworkBuilder("outer")
        a = outer.input("a")
        refs = outer.merge(inner, rename={"x": a})
        outer.output("y", refs["z"])
        net = outer.build()
        assert net.param_names == ["mu"]
        assert evaluate(net, {"a": 2}, params={"mu": INF})["y"] == 2


class TestNode:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Node(0, "xor")

    def test_input_with_sources_rejected(self):
        with pytest.raises(ValueError):
            Node(1, "input", sources=(0,), name="a")

    def test_terminal_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            Node(0, "input")

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError, match="feedforward"):
            Node(1, "inc", sources=(2,))

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError, match="feedforward"):
            Node(1, "inc", sources=(1,))

    def test_lt_arity(self):
        with pytest.raises(ValueError, match="two sources"):
            Node(3, "lt", sources=(0, 1, 2))

    def test_inc_arity(self):
        with pytest.raises(ValueError, match="one source"):
            Node(2, "inc", sources=(0, 1))

    def test_zero_source_min_max_allowed(self):
        # The lattice identity constants: empty min = ∞, empty max = 0.
        assert Node(1, "min", sources=()).sources == ()
        assert Node(1, "max", sources=()).sources == ()

    def test_describe(self):
        assert "inc(+3)" in Node(1, "inc", sources=(0,), amount=3).describe()
        assert "input" in Node(0, "input", name="a").describe()


class TestNetworkContainer:
    def test_dense_ids_required(self):
        nodes = [Node(0, "input", name="a"), Node(2, "inc", sources=(0,))]
        with pytest.raises(NetworkError, match="dense"):
            Network(nodes, {"y": 0})

    def test_output_reference_checked(self):
        nodes = [Node(0, "input", name="a")]
        with pytest.raises(NetworkError, match="missing node"):
            Network(nodes, {"y": 5})

    def test_depth(self):
        net = build_fig6b()
        assert net.depth() == 3

    def test_consumers(self):
        net = build_fig6b()
        fanout = net.consumers()
        # x3 (id 2) feeds only the lt node.
        assert len(fanout[2]) == 1

    def test_as_function_requires_unique_output(self):
        b = NetworkBuilder()
        a, c = b.inputs("a", "c")
        b.output("p", b.min(a, c))
        b.output("q", b.max(a, c))
        net = b.build()
        with pytest.raises(NetworkError, match="output="):
            net.as_function()
        assert net.as_function(output="p")(3, 1) == 1

    def test_as_function_requires_bound_params(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("y", b.gate(x, mu))
        net = b.build()
        with pytest.raises(NetworkError, match="unbound"):
            net.as_function()
        f = net.as_function(params={"mu": INF})
        assert f(3) == 3

    def test_pretty_lists_nodes(self):
        text = build_fig6b().pretty()
        assert "input 'x1'" in text
        assert "output 'y'" in text
