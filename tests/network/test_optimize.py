"""Tests for semantics-preserving network optimization."""

import random

import pytest

from repro.core.function import enumerate_domain
from repro.core.synthesis import max_from_min_lt, synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.optimize import optimize
from repro.network.simulator import evaluate


def assert_equivalent(original, optimized, *, window=4, params=None):
    names = original.input_names
    assert optimized.input_names == names
    assert optimized.output_names == original.output_names
    for vec in enumerate_domain(len(names), window):
        bound = dict(zip(names, vec))
        assert evaluate(optimized, bound, params=params) == evaluate(
            original, bound, params=params
        ), vec


class TestRewrites:
    def test_cse_merges_duplicates(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("a", b.min(x, y))
        b.output("b", b.min(x, y))
        net = b.build()
        optimized, report = optimize(net)
        assert optimized.size == 1
        assert report.removed == 1
        assert_equivalent(net, optimized)

    def test_min_max_source_order_normalized(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("a", b.min(x, y))
        b.output("b", b.min(y, x))
        optimized, _ = optimize(b.build())
        assert optimized.size == 1

    def test_lt_not_commutative(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("a", b.lt(x, y))
        b.output("b", b.lt(y, x))
        net = b.build()
        optimized, _ = optimize(net)
        assert optimized.size == 2  # must NOT merge
        assert_equivalent(net, optimized)

    def test_inc_chain_fusion(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(b.inc(b.inc(x, 1), 2), 3))
        net = b.build()
        optimized, _ = optimize(net)
        assert optimized.size == 1
        assert optimized.nodes[1].amount == 6
        assert_equivalent(net, optimized)

    def test_duplicate_min_sources_deduplicated(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.min(x, x, y, y))
        net = b.build()
        optimized, _ = optimize(net)
        assert len(optimized.nodes[optimized.outputs["o"]].sources) == 2
        assert_equivalent(net, optimized)

    def test_lt_self_race_becomes_never(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        never = b.lt(x, x)
        b.output("o", b.min(never, y))  # min absorbs never -> just y
        net = b.build()
        optimized, _ = optimize(net)
        assert_equivalent(net, optimized)
        # o should collapse to the input wire y (passthrough).
        assert optimized.nodes[optimized.outputs["o"]].kind == "input"

    def test_max_with_never_is_never(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.max(b.lt(x, x), y))
        net = b.build()
        optimized, _ = optimize(net)
        assert_equivalent(net, optimized)
        bound = {"x": 0, "y": 0}
        assert evaluate(optimized, bound)["o"] is INF

    def test_lt_against_never_passes_through(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.lt(y, b.lt(x, x)))
        net = b.build()
        optimized, _ = optimize(net)
        assert_equivalent(net, optimized)

    def test_never_output_materialized(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("o", b.lt(x, x))
        net = b.build()
        optimized, _ = optimize(net)
        assert evaluate(optimized, {"x": 3})["o"] is INF
        assert evaluate(optimized, {"x": INF})["o"] is INF


class TestOnRealConstructions:
    def test_fig7_synthesis_shrinks_and_stays_exact(self):
        net = synthesize(FIG7_TABLE)
        optimized, report = optimize(net)
        assert report.after_blocks < report.before_blocks
        assert_equivalent(net, optimized, window=4)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_tables(self, seed):
        table = NormalizedTable.random(
            3, window=3, n_rows=6, rng=random.Random(seed)
        )
        net = synthesize(table)
        optimized, _ = optimize(net)
        assert_equivalent(net, optimized, window=table.max_entry() + 1)

    def test_lemma2_already_minimal(self):
        net = max_from_min_lt()
        optimized, report = optimize(net)
        assert report.after_blocks == net.size
        assert_equivalent(net, optimized, window=5)

    def test_srm0_network_optimizes(self):
        from repro.neuron.response import ResponseFunction
        from repro.neuron.srm0_network import build_srm0_from_weights

        base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)
        net = build_srm0_from_weights([2, 2], threshold=3, base_response=base)
        optimized, report = optimize(net)
        assert report.after_blocks <= report.before_blocks
        assert_equivalent(net, optimized, window=4)

    def test_params_preserved(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("o", b.gate(b.inc(b.inc(x, 1), 1), mu))
        net = b.build()
        optimized, _ = optimize(net)
        assert optimized.param_names == ["mu"]
        for value in (0, INF):
            for t in (0, 3, INF):
                assert evaluate(optimized, {"x": t}, params={"mu": value}) == evaluate(
                    net, {"x": t}, params={"mu": value}
                )

    def test_report_str(self):
        net = synthesize(FIG7_TABLE)
        _, report = optimize(net)
        assert "blocks" in str(report)
        assert 0.0 <= report.reduction <= 1.0
