"""Tests for structure and activity statistics."""

from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.stats import activity, structure


class TestStructure:
    def test_counts(self):
        net = synthesize(FIG7_TABLE)
        s = structure(net)
        assert s.n_inputs == 3
        assert s.n_outputs == 1
        assert s.n_blocks == net.size
        assert s.counts_by_kind["lt"] == 3  # one per table row

    def test_depth_and_fanout(self):
        b = NetworkBuilder()
        x = b.input("x")
        y = b.inc(x, 1)
        b.output("a", b.inc(y, 1))
        b.output("b", b.min(x, y))
        s = structure(b.build())
        assert s.depth == 2
        assert s.max_fanout == 2  # x and y each feed two consumers

    def test_total_delay_units(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(b.inc(x, 3), 4))
        assert structure(b.build()).total_delay_units == 7

    def test_str(self):
        text = str(structure(synthesize(FIG7_TABLE)))
        assert "blocks" in text
        assert "depth" in text


class TestActivity:
    def test_single_spike_bound(self):
        net = synthesize(FIG7_TABLE)
        inputs = [
            dict(zip(net.input_names, vec))
            for vec in [(0, 1, 2), (1, 0, INF), (2, 2, 0), (0, 0, 0)]
        ]
        a = activity(net, inputs)
        assert a.runs == 4
        assert a.total_spikes <= a.runs * a.total_wires

    def test_sparse_inputs_mean_fewer_spikes(self):
        net = synthesize(FIG7_TABLE)
        names = net.input_names
        dense = activity(net, [dict(zip(names, (0, 1, 2)))])
        sparse = activity(net, [dict(zip(names, (0, INF, INF)))])
        assert sparse.total_spikes < dense.total_spikes
        assert sparse.silent_wire_fraction > dense.silent_wire_fraction

    def test_empty_run_list(self):
        net = synthesize(FIG7_TABLE)
        a = activity(net, [])
        assert a.runs == 0
        assert a.spikes_per_run == 0.0

    def test_str(self):
        net = synthesize(FIG7_TABLE)
        a = activity(net, [dict(zip(net.input_names, (0, 1, 2)))])
        assert "spikes/run" in str(a)
