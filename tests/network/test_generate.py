"""Tests for the random network/workload generators."""

import random

import pytest

from repro.core.value import INF, Infinity
from repro.network.generate import (
    input_batch,
    random_inputs,
    random_network,
    random_volley,
)
from repro.network.simulator import evaluate
from repro.network.validate import check_feedforward, validate


class TestRandomNetwork:
    def test_structure(self):
        net = random_network(n_inputs=4, n_blocks=25, n_outputs=2, seed=1)
        assert len(net.input_names) == 4
        assert len(net.output_names) == 2
        assert net.size == 25
        assert check_feedforward(net)

    def test_deterministic(self):
        a = random_network(seed=9)
        b = random_network(seed=9)
        assert a.pretty() == b.pretty()

    def test_different_seeds_differ(self):
        a = random_network(seed=1)
        b = random_network(seed=2)
        assert a.pretty() != b.pretty()

    def test_evaluable(self):
        net = random_network(n_blocks=40, seed=3)
        out = evaluate(net, random_inputs(net, rng=random.Random(0)))
        assert set(out) == set(net.output_names)

    def test_restricted_operations(self):
        net = random_network(operations=("min", "inc"), n_blocks=15, seed=2)
        kinds = set(net.counts_by_kind())
        assert kinds <= {"input", "min", "inc"}

    def test_validation(self):
        with pytest.raises(ValueError):
            random_network(n_inputs=0)
        with pytest.raises(ValueError):
            random_network(operations=("xor",))
        with pytest.raises(ValueError):
            random_network(n_blocks=1, n_inputs=1, n_outputs=5)


class TestRandomInputs:
    def test_volley_bounds(self):
        rng = random.Random(0)
        volley = random_volley(50, max_time=5, rng=rng)
        for t in volley:
            assert t is INF or 0 <= t <= 5

    def test_silence_probability_extremes(self):
        rng = random.Random(0)
        silent = random_volley(20, silence_probability=1.0, rng=rng)
        assert all(isinstance(t, Infinity) for t in silent)
        dense = random_volley(20, silence_probability=0.0, rng=rng)
        assert all(not isinstance(t, Infinity) for t in dense)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            random_volley(5, silence_probability=2.0)

    def test_inputs_cover_all_names(self):
        net = random_network(n_inputs=6, seed=4)
        bound = random_inputs(net, rng=random.Random(1))
        assert set(bound) == set(net.input_names)

    def test_batch_reproducible(self):
        net = random_network(seed=5)
        assert input_batch(net, 10, seed=7) == input_batch(net, 10, seed=7)
        assert input_batch(net, 10, seed=7) != input_batch(net, 10, seed=8)
