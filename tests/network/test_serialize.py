"""Tests for network JSON serialization."""

import json

import pytest

from repro.core.function import enumerate_domain
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.graph import NetworkError
from repro.network.serialize import (
    dumps,
    load,
    loads,
    network_from_dict,
    network_to_dict,
    save,
)
from repro.network.simulator import evaluate, evaluate_vector


def gated_network():
    b = NetworkBuilder("gated")
    x, y = b.inputs("x", "y")
    mu = b.param("mu")
    b.output("o", b.gate(b.inc(b.min(x, y), 3), mu))
    return b.build()


class TestRoundtrip:
    def test_simple_network(self):
        net = gated_network()
        back = loads(dumps(net))
        assert back.name == net.name
        assert back.input_names == net.input_names
        assert back.param_names == net.param_names
        assert back.output_names == net.output_names
        for vec in [(0, 4), (2, 2), (INF, 1)]:
            bound = dict(zip(net.input_names, vec))
            assert evaluate(back, bound, params={"mu": INF}) == evaluate(
                net, bound, params={"mu": INF}
            )

    def test_synthesized_network_semantics_preserved(self):
        net = synthesize(FIG7_TABLE)
        back = loads(dumps(net))
        f, g = net.as_function(), back.as_function()
        for vec in enumerate_domain(3, 3):
            assert f(*vec) == g(*vec), vec

    def test_file_roundtrip(self, tmp_path):
        net = synthesize(FIG7_TABLE)
        path = tmp_path / "net.json"
        save(net, path)
        back = load(path)
        assert evaluate_vector(back, (3, 4, 5))["y"] == 6

    def test_tags_preserved(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(x, 1, tag="special"))
        back = loads(dumps(b.build()))
        assert back.nodes[1].tags == ("special",)

    def test_compact_form(self):
        net = gated_network()
        text = dumps(net, indent=None)
        assert "\n" not in text
        assert loads(text).size == net.size


class TestValidationOnLoad:
    def test_wrong_format(self):
        with pytest.raises(NetworkError, match="format"):
            network_from_dict({"format": "other", "nodes": [], "outputs": {}})

    def test_invalid_json(self):
        with pytest.raises(NetworkError, match="JSON"):
            loads("{not json")

    def test_cycle_rejected(self):
        data = {
            "format": "repro.network/1",
            "nodes": [
                {"kind": "input", "name": "x"},
                {"kind": "inc", "sources": [1]},
            ],
            "outputs": {"y": 1},
        }
        with pytest.raises(NetworkError, match="invalid"):
            network_from_dict(data)

    def test_bad_output_reference(self):
        data = {
            "format": "repro.network/1",
            "nodes": [{"kind": "input", "name": "x"}],
            "outputs": {"y": 7},
        }
        with pytest.raises(NetworkError):
            network_from_dict(data)

    def test_malformed_node(self):
        data = {
            "format": "repro.network/1",
            "nodes": ["nope"],
            "outputs": {},
        }
        with pytest.raises(NetworkError, match="malformed"):
            network_from_dict(data)

    def test_nodes_must_be_list(self):
        with pytest.raises(NetworkError, match="list"):
            network_from_dict(
                {"format": "repro.network/1", "nodes": {}, "outputs": {}}
            )

    def test_outputs_must_be_mapping(self):
        with pytest.raises(NetworkError, match="mapping"):
            network_from_dict(
                {
                    "format": "repro.network/1",
                    "nodes": [{"kind": "input", "name": "x"}],
                    "outputs": [],
                }
            )


class TestFingerprint:
    """Round-trips must preserve ``Network.fingerprint()`` bit-for-bit.

    The serving model registry keys on the fingerprint and worker
    processes verify it after rebuilding from the shipped document — a
    drift here would make every served model unloadable.
    """

    def test_dict_embeds_fingerprint(self):
        net = gated_network()
        assert network_to_dict(net)["fingerprint"] == net.fingerprint()

    @pytest.mark.parametrize("seed", range(10))
    def test_roundtrip_preserves_fingerprint_across_families(self, seed):
        from repro.testing.generators import generate_case

        net = generate_case(seed, smoke=True).network
        assert loads(dumps(net)).fingerprint() == net.fingerprint()

    def test_double_roundtrip_is_stable(self):
        net = synthesize(FIG7_TABLE)
        once = loads(dumps(net))
        twice = loads(dumps(once))
        assert (
            net.fingerprint() == once.fingerprint() == twice.fingerprint()
        )

    def test_compact_and_indented_agree(self):
        net = gated_network()
        assert (
            loads(dumps(net, indent=None)).fingerprint()
            == loads(dumps(net)).fingerprint()
        )

    def test_tampered_document_rejected(self):
        data = network_to_dict(gated_network())
        for entry in data["nodes"]:
            if entry["kind"] == "inc":
                entry["amount"] += 1
                break
        with pytest.raises(NetworkError, match="fingerprint mismatch"):
            network_from_dict(data)

    def test_tampered_output_name_rejected(self):
        data = network_to_dict(gated_network())
        data["outputs"] = {"renamed": next(iter(data["outputs"].values()))}
        with pytest.raises(NetworkError, match="fingerprint mismatch"):
            network_from_dict(data)

    def test_document_without_fingerprint_still_loads(self):
        data = network_to_dict(gated_network())
        del data["fingerprint"]
        assert network_from_dict(data).fingerprint() == gated_network().fingerprint()


class TestDictForm:
    def test_ids_are_implicit(self):
        data = network_to_dict(gated_network())
        assert all("id" not in entry for entry in data["nodes"])
        # Valid JSON document end-to-end.
        json.dumps(data)

    def test_amount_only_on_inc(self):
        data = network_to_dict(gated_network())
        for entry in data["nodes"]:
            if entry["kind"] != "inc":
                assert "amount" not in entry
