"""Tests for functional network evaluation."""

import pytest

from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.graph import NetworkError
from repro.network.simulator import evaluate, evaluate_all, evaluate_vector


def diamond():
    """min and max of two inputs raced by an lt."""
    b = NetworkBuilder("diamond")
    x, y = b.inputs("x", "y")
    lo = b.min(x, y)
    hi = b.max(x, y)
    b.output("z", b.lt(lo, hi))
    return b.build()


class TestEvaluate:
    def test_diamond_distinct(self):
        # min < max whenever inputs differ: z = min.
        assert evaluate_vector(diamond(), (2, 7))["z"] == 2

    def test_diamond_tie(self):
        assert evaluate_vector(diamond(), (4, 4))["z"] is INF

    def test_missing_input_rejected(self):
        with pytest.raises(NetworkError, match="unbound inputs"):
            evaluate(diamond(), {"x": 1})

    def test_extra_input_names_are_ignored(self):
        out = evaluate(diamond(), {"x": 1, "y": 2, "w": 9})
        assert out["z"] == 1

    def test_wrong_vector_length(self):
        with pytest.raises(NetworkError, match="expected 2"):
            evaluate_vector(diamond(), (1, 2, 3))

    def test_inf_propagation(self):
        out = evaluate_vector(diamond(), (INF, INF))
        assert out["z"] is INF

    def test_evaluate_all_exposes_internals(self):
        net = diamond()
        values = evaluate_all(net, {"x": 2, "y": 7})
        assert values[net.input_ids["x"]] == 2
        assert len(values) == len(net.nodes)


class TestParams:
    def make_gated(self):
        b = NetworkBuilder("gated")
        x = b.input("x")
        mu = b.param("mu")
        b.output("y", b.gate(x, mu))
        return b.build()

    def test_param_must_be_bound(self):
        net = self.make_gated()
        with pytest.raises(NetworkError, match="unbound params"):
            evaluate(net, {"x": 3})

    def test_param_values_restricted(self):
        # Micro-weights are enable/disable switches: only 0 or ∞.
        net = self.make_gated()
        with pytest.raises(NetworkError, match="0 or INF"):
            evaluate(net, {"x": 3}, params={"mu": 5})

    def test_enabled(self):
        net = self.make_gated()
        assert evaluate(net, {"x": 3}, params={"mu": INF})["y"] == 3

    def test_disabled(self):
        net = self.make_gated()
        assert evaluate(net, {"x": 3}, params={"mu": 0})["y"] is INF


class TestChains:
    def test_inc_chain_accumulates(self):
        b = NetworkBuilder()
        x = b.input("x")
        cur = x
        for _ in range(5):
            cur = b.inc(cur, 1)
        b.output("y", cur)
        assert evaluate_vector(b.build(), (3,))["y"] == 8

    def test_wide_min(self):
        b = NetworkBuilder()
        xs = [b.input(f"x{i}") for i in range(10)]
        b.output("y", b.min(*xs))
        vec = tuple([INF] * 9 + [4])
        assert evaluate_vector(b.build(), vec)["y"] == 4

    def test_wide_max_with_absent(self):
        b = NetworkBuilder()
        xs = [b.input(f"x{i}") for i in range(10)]
        b.output("y", b.max(*xs))
        vec = tuple([1] * 9 + [INF])
        assert evaluate_vector(b.build(), vec)["y"] is INF


class TestZeroSourceReductions:
    """Regression: empty min/max are the lattice identity constants.

    An empty min has no spike to pass, so it never fires (∞ — the top of
    the lattice); an empty max has no spike to wait for, so it fires
    immediately (0 — the bottom).  All evaluation paths must agree.
    """

    def build(self):
        from repro.network.graph import Network
        from repro.network.blocks import Node

        nodes = (
            Node(0, "input", name="x"),
            Node(1, "min", sources=()),
            Node(2, "max", sources=()),
        )
        return Network(nodes, {"never": 1, "origin": 2, "echo": 0})

    def test_functional_semantics(self):
        out = evaluate(self.build(), {"x": 5})
        assert out["never"] is INF
        assert out["origin"] == 0
        assert out["echo"] == 5

    def test_interpreted_semantics(self):
        from repro.network.simulator import evaluate_all_interpreted

        values = evaluate_all_interpreted(self.build(), {"x": 5})
        assert values[1] is INF and values[2] == 0

    def test_event_semantics(self):
        from repro.network.events import EventSimulator

        result = EventSimulator(self.build()).run({"x": 5})
        assert result.outputs["never"] is INF
        assert result.outputs["origin"] == 0
