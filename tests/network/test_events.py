"""Tests for the operational event-driven simulator.

The key theorem exercised here: the event-driven (local-information)
semantics agrees with the denotational evaluation on every network and
every input — including same-timestamp races through zero-delay blocks,
which is where naive event ordering goes wrong.
"""

import random

import pytest

from repro.core.function import enumerate_domain
from repro.core.synthesis import max_from_min_lt, synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.events import EventSimulator, simulate
from repro.network.graph import NetworkError
from repro.network.simulator import evaluate


class TestBasicSemantics:
    def test_min_fires_on_first_arrival(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.min(x, y))
        result = simulate(b.build(), {"x": 5, "y": 2})
        assert result.outputs["m"] == 2

    def test_max_waits_for_all(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.max(x, y))
        net = b.build()
        assert simulate(net, {"x": 5, "y": 2}).outputs["m"] == 5
        assert simulate(net, {"x": 5, "y": INF}).outputs["m"] is INF

    def test_lt_tie_produces_no_spike(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("z", b.lt(x, y))
        net = b.build()
        assert simulate(net, {"x": 3, "y": 3}).outputs["z"] is INF

    def test_lt_zero_delay_tie_through_chain(self):
        # a reaches the lt both directly (port a) and through a zero-delay
        # min (port b): a tie created *inside* the network at the same
        # timestamp. The lt must not fire.
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        routed = b.min(x, y)
        b.output("z", b.lt(x, routed))
        net = b.build()
        assert simulate(net, {"x": 3, "y": 9}).outputs["z"] is INF
        # but if y is earlier, routed fires earlier and x never passes
        assert simulate(net, {"x": 3, "y": 1}).outputs["z"] is INF
        # lt(x, min(x, y)) can never pass: min <= x always.

    def test_inc_delays(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(x, 4))
        assert simulate(b.build(), {"x": 2}).outputs["y"] == 6

    def test_param_spikes_at_zero_when_enabled_low(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        net = b.build()
        assert simulate(net, {"x": 4}, params={"mu": 0}).outputs["z"] is INF
        assert simulate(net, {"x": 4}, params={"mu": INF}).outputs["z"] == 4

    def test_bad_param_value(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        with pytest.raises(NetworkError, match="0 or INF"):
            simulate(b.build(), {"x": 1}, params={"mu": 3})

    def test_unbound_input(self):
        b = NetworkBuilder()
        b.inputs("x", "y")
        b.output("z", 0)
        with pytest.raises(NetworkError, match="unbound"):
            simulate(b.build(), {"x": 1})


class TestTrace:
    def test_trace_sorted_and_counted(self):
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
        times = [e.time for e in result.trace]
        assert times == sorted(times)
        assert result.total_spikes == len(result.trace)

    def test_single_spike_per_wire(self):
        # The defining TNN property: each line carries at most one spike.
        net = synthesize(FIG7_TABLE)
        result = simulate(net, dict(zip(net.input_names, (1, 0, 3))))
        nodes_fired = [e.node_id for e in result.trace]
        assert len(nodes_fired) == len(set(nodes_fired))

    def test_makespan(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(x, 7))
        result = simulate(b.build(), {"x": 3})
        assert result.makespan == 10

    def test_spikes_at(self):
        b = NetworkBuilder()
        x = b.input("x")
        b.output("y", b.inc(x, 2))
        result = simulate(b.build(), {"x": 1})
        assert len(result.spikes_at(1)) == 1
        assert len(result.spikes_at(3)) == 1
        assert result.spikes_at(2) == []

    def test_silent_network(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("z", b.lt(x, y))
        result = simulate(b.build(), {"x": INF, "y": INF})
        assert result.total_spikes == 0
        assert result.makespan is None

    def test_all_inf_run_distinct_from_spike_at_zero(self):
        # Regression: a silent (all-∞) run used to report makespan 0,
        # indistinguishable from a computation whose last spike was at
        # t=0.  Silence is None; a real t=0 spike is 0.
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("z", b.min(x, y))
        net = b.build()
        silent = simulate(net, {"x": INF, "y": INF})
        assert silent.makespan is None
        assert silent.total_spikes == 0
        at_zero = simulate(net, {"x": 0, "y": INF})
        assert at_zero.makespan == 0
        assert at_zero.total_spikes == 2  # the input spike and the min


class TestAgreementWithDenotational:
    """Event-driven == functional on exhaustive and random networks."""

    def test_fig7_table_exhaustive(self):
        net = synthesize(FIG7_TABLE)
        sim = EventSimulator(net)
        for vec in enumerate_domain(3, 4):
            bound = dict(zip(net.input_names, vec))
            assert sim.run(bound).outputs == evaluate(net, bound), vec

    def test_lemma2_exhaustive(self):
        net = max_from_min_lt()
        sim = EventSimulator(net)
        for vec in enumerate_domain(2, 5):
            bound = dict(zip(net.input_names, vec))
            assert sim.run(bound).outputs == evaluate(net, bound), vec

    @pytest.mark.parametrize("seed", range(4))
    def test_random_synthesized_networks(self, seed):
        rng = random.Random(seed)
        table = NormalizedTable.random(3, window=3, n_rows=4, rng=rng)
        net = synthesize(table)
        sim = EventSimulator(net)
        for _ in range(120):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 6)
                for _ in range(3)
            )
            bound = dict(zip(net.input_names, vec))
            assert sim.run(bound).outputs == evaluate(net, bound), (seed, vec)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_adhoc_networks(self, seed):
        """Random DAGs of primitives, not just synthesized shapes."""
        rng = random.Random(100 + seed)
        b = NetworkBuilder(f"random{seed}")
        pool = [b.input(f"x{i}") for i in range(4)]
        for _ in range(25):
            op = rng.choice(["inc", "min", "max", "lt"])
            if op == "inc":
                pool.append(b.inc(rng.choice(pool), rng.randint(1, 3)))
            elif op == "lt":
                pool.append(b.lt(rng.choice(pool), rng.choice(pool)))
            else:
                k = rng.randint(2, 3)
                srcs = [rng.choice(pool) for _ in range(k)]
                pool.append(getattr(b, op)(*srcs))
        b.output("y", pool[-1])
        b.output("z", pool[-2])
        net = b.build()
        sim = EventSimulator(net)
        for _ in range(100):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 8)
                for _ in range(4)
            )
            bound = dict(zip(net.input_names, vec))
            assert sim.run(bound).outputs == evaluate(net, bound), (seed, vec)
