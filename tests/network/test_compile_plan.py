"""Tests for the compiled batched evaluation engine.

The batched engine is specified by the interpreted evaluator
(:func:`repro.network.simulator.evaluate_all_interpreted`): on every
network and every volley matrix the two must agree exactly, including
∞-heavy inputs and ``inc`` chains that saturate against the int64
sentinel.  The property tests here state that agreement over random
structures; the unit tests pin the encoding, the plan cache, and the
error-message parity of the thin scalar wrappers.
"""

import importlib
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.value import INF, Infinity
from repro.network.builder import NetworkBuilder
from repro.network.compile_plan import (
    INF_I64,
    MAX_FINITE,
    CompiledPlan,
    clear_plan_cache,
    compile_plan,
    decode_matrix,
    decode_time,
    encode_time,
    encode_volleys,
    evaluate_batch,
    evaluate_batch_all,
    evaluate_batch_dicts,
    plan_cache_info,
)
from repro.network.generate import random_network, random_volley
from repro.network.graph import NetworkError
from repro.network.serialize import dumps, loads
from repro.network.simulator import (
    evaluate,
    evaluate_all,
    evaluate_all_interpreted,
    evaluate_vector,
)

times = st.one_of(st.integers(min_value=0, max_value=30), st.just(INF))


def interpreted_outputs(network, volley):
    values = evaluate_all_interpreted(
        network, dict(zip(network.input_names, volley))
    )
    return tuple(values[node_id] for node_id in network.outputs.values())


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

class TestEncoding:
    def test_encode_decode_roundtrip(self):
        for value in (0, 1, 17, MAX_FINITE, INF):
            assert decode_time(encode_time(value)) == value

    def test_inf_is_sentinel(self):
        assert encode_time(INF) == INF_I64
        assert decode_time(INF_I64) is INF

    def test_finite_time_above_limit_rejected(self):
        with pytest.raises(NetworkError, match="exceeds the batched engine"):
            encode_time(INF_I64)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            encode_time(-1)

    def test_encode_volleys_from_tuples(self):
        matrix = encode_volleys([(0, INF), (3, 4)])
        assert matrix.dtype == np.int64
        assert matrix.shape == (2, 2)
        assert matrix[0, 1] == INF_I64

    def test_encode_volleys_passes_ndarray_through(self):
        raw = np.array([[1, 2], [3, INF_I64]], dtype=np.int64)
        assert encode_volleys(raw) is not None
        np.testing.assert_array_equal(encode_volleys(raw), raw)

    def test_encode_volleys_rejects_ragged(self):
        with pytest.raises(NetworkError, match="ragged"):
            encode_volleys([(1, 2), (1, 2, 3)])

    def test_encode_volleys_rejects_wrong_arity(self):
        with pytest.raises(NetworkError, match="expected volleys of 3"):
            encode_volleys([(1, 2)], arity=3)

    def test_encode_volleys_rejects_negative_matrix(self):
        with pytest.raises(NetworkError, match="negative"):
            encode_volleys(np.array([[-1, 0]], dtype=np.int64))

    def test_encode_volleys_rejects_float_matrix(self):
        with pytest.raises(NetworkError, match="integer dtype"):
            encode_volleys(np.array([[1.0, 2.0]]))

    def test_decode_matrix(self):
        matrix = np.array([[0, INF_I64]], dtype=np.int64)
        assert decode_matrix(matrix) == [(0, INF)]


# ---------------------------------------------------------------------------
# The batch API against hand-computed semantics
# ---------------------------------------------------------------------------

def diamond():
    b = NetworkBuilder("diamond")
    x, y = b.inputs("x", "y")
    b.output("z", b.lt(b.min(x, y), b.max(x, y)))
    return b.build()


class TestEvaluateBatch:
    def test_diamond_batch(self):
        out = evaluate_batch(diamond(), [(2, 7), (4, 4), (INF, 1)])
        assert decode_matrix(out) == [(2,), (INF,), (1,)]

    def test_output_column_order_matches_declaration(self):
        b = NetworkBuilder("two-out")
        x, y = b.inputs("x", "y")
        b.output("hi", b.max(x, y))
        b.output("lo", b.min(x, y))
        net = b.build()
        assert decode_matrix(evaluate_batch(net, [(2, 7)])) == [(7, 2)]

    def test_batch_all_exposes_every_node(self):
        net = diamond()
        matrix = evaluate_batch_all(net, [(2, 7)])
        assert matrix.shape == (1, len(net.nodes))
        assert matrix[0, net.input_ids["x"]] == 2

    def test_batch_dicts(self):
        rows = evaluate_batch_dicts(diamond(), [(2, 7), (4, 4)])
        assert rows == [{"z": 2}, {"z": INF}]

    def test_params_batched(self):
        b = NetworkBuilder("gated")
        x = b.input("x")
        mu = b.param("mu")
        b.output("y", b.gate(x, mu))
        net = b.build()
        enabled = evaluate_batch(net, [(3,), (5,)], params={"mu": INF})
        disabled = evaluate_batch(net, [(3,), (5,)], params={"mu": 0})
        assert decode_matrix(enabled) == [(3,), (5,)]
        assert decode_matrix(disabled) == [(INF,), (INF,)]

    def test_unbound_params_rejected(self):
        b = NetworkBuilder("gated")
        b.output("y", b.gate(b.input("x"), b.param("mu")))
        with pytest.raises(NetworkError, match="unbound params"):
            evaluate_batch(b.build(), [(3,)])

    def test_bad_param_value_rejected(self):
        b = NetworkBuilder("gated")
        b.output("y", b.gate(b.input("x"), b.param("mu")))
        with pytest.raises(NetworkError, match="must be 0 or INF"):
            evaluate_batch(b.build(), [(3,)], params={"mu": 5})

    def test_empty_batch(self):
        out = evaluate_batch(diamond(), np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0, 1)


# ---------------------------------------------------------------------------
# inc saturation against the sentinel
# ---------------------------------------------------------------------------

class TestIncSaturation:
    def chain(self, amounts):
        b = NetworkBuilder("chain")
        wire = b.input("x")
        for amount in amounts:
            wire = b.inc(wire, amount)
        b.output("y", wire)
        return b.build()

    def test_inf_stays_inf(self):
        out = evaluate_batch(self.chain([3, 5]), [(INF,)])
        assert out[0, 0] == INF_I64

    def test_near_sentinel_saturates_to_inf(self):
        # MAX_FINITE + 3 would pass the sentinel: the engine saturates to
        # ∞ rather than wrapping (the scalar wrapper would instead fall
        # back to the interpreted big-int path for such inputs).
        out = evaluate_batch(self.chain([3]), np.array([[MAX_FINITE]], dtype=np.int64))
        assert out[0, 0] == INF_I64

    def test_exactly_reaching_sentinel_saturates(self):
        out = evaluate_batch(
            self.chain([1]), np.array([[MAX_FINITE]], dtype=np.int64)
        )
        assert out[0, 0] == INF_I64

    def test_just_below_sentinel_stays_finite(self):
        out = evaluate_batch(
            self.chain([3]), np.array([[MAX_FINITE - 3]], dtype=np.int64)
        )
        assert out[0, 0] == MAX_FINITE

    def test_no_overflow_on_stacked_incs(self):
        out = evaluate_batch(
            self.chain([7, 11, 13]), np.array([[MAX_FINITE]], dtype=np.int64)
        )
        assert out[0, 0] == INF_I64


# ---------------------------------------------------------------------------
# Property: batch == interpreted scalar semantics
# ---------------------------------------------------------------------------

class TestBatchMatchesInterpreted:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        volley_seed=st.integers(min_value=0, max_value=10_000),
        silence=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_networks_random_volleys(self, seed, volley_seed, silence):
        network = random_network(
            n_inputs=3, n_blocks=15, n_outputs=2, seed=seed
        )
        rng = random.Random(volley_seed)
        volleys = [
            random_volley(3, rng=rng, silence_probability=silence)
            for _ in range(5)
        ]
        got = decode_matrix(evaluate_batch(network, volleys))
        want = [interpreted_outputs(network, v) for v in volleys]
        assert got == want

    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_inf_heavy_and_structured_volleys(self, data, seed):
        network = random_network(
            n_inputs=4, n_blocks=25, n_outputs=3, seed=seed
        )
        volley = tuple(data.draw(times) for _ in range(4))
        got = decode_matrix(evaluate_batch(network, [volley]))[0]
        assert got == interpreted_outputs(network, volley)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_scalar_wrapper_matches_batch(self, seed):
        # evaluate/evaluate_all are B=1 wrappers: same numbers, same net.
        network = random_network(n_inputs=3, n_blocks=12, seed=seed)
        volley = random_volley(3, rng=random.Random(seed))
        bound = dict(zip(network.input_names, volley))
        scalar = evaluate(network, bound)
        batch = evaluate_batch_dicts(network, [volley])[0]
        assert scalar == batch

    def test_scalar_wrapper_big_int_fallback(self):
        # Finite times beyond the engine's int64 range route through the
        # interpreted evaluator transparently.
        b = NetworkBuilder("big")
        b.output("y", b.inc(b.input("x"), 5))
        net = b.build()
        huge = INF_I64  # too large for the batched path
        assert evaluate(net, {"x": huge})["y"] == huge + 5
        assert evaluate(net, {"x": INF})["y"] is INF


# ---------------------------------------------------------------------------
# Plan structure and fusion
# ---------------------------------------------------------------------------

class TestPlanStructure:
    def test_same_level_same_kind_fuses(self):
        # Four independent incs at level 1 become one instruction.
        b = NetworkBuilder("wide")
        xs = [b.input(f"x{i}") for i in range(4)]
        b.output("y", b.min(*[b.inc(x, i + 1) for i, x in enumerate(xs)]))
        plan = compile_plan(b.build())
        assert plan.n_instructions == 2  # fused incs + the min

    def test_describe_mentions_each_group(self):
        plan = compile_plan(diamond())
        text = plan.describe()
        assert "min" in text and "max" in text and "lt" in text

    def test_describe_golden(self):
        # The exact rendering is a debugging/reporting surface other
        # tooling greps; lock it down so format drift is a conscious act.
        b = NetworkBuilder("golden")
        x, y = b.inputs("x", "y")
        always = b.max()
        b.min()  # the constant ∞
        m = b.min(b.inc(x, 3), y)
        top = b.max(m, always)
        b.output("race", b.lt(m, top))
        b.output("m", top)
        plan = compile_plan(b.build())
        assert plan.describe() == (
            "plan: 8 nodes -> 6 instructions\n"
            "  const(0)  x1\n"
            "  const(∞)  x1\n"
            "  inc       x1\n"
            "  min       x1 (arity<=2)\n"
            "  max       x1 (arity<=2)\n"
            "  lt        x1"
        )

    def test_run_requires_params_when_declared(self):
        b = NetworkBuilder("gated")
        b.output("y", b.gate(b.input("x"), b.param("mu")))
        plan = compile_plan(b.build())
        with pytest.raises(NetworkError, match="none bound"):
            plan.run(np.zeros((1, 1), dtype=np.int64))


# ---------------------------------------------------------------------------
# Batch blocking
# ---------------------------------------------------------------------------

class TestRunBlocking:
    """`run` chunks the batch dimension; results must not depend on it."""

    def test_wide_batch_matches_monolithic(self, monkeypatch):
        cp = importlib.import_module("repro.network.compile_plan")
        net = random_network(seed=5, n_inputs=4, n_blocks=30)
        plan = compile_plan(net)
        rng = np.random.default_rng(5)
        matrix = rng.integers(0, 40, size=(1300, 4)).astype(np.int64)
        matrix[rng.random(matrix.shape) < 0.2] = INF_I64
        blocked = plan.run(matrix)
        monkeypatch.setattr(cp, "_RUN_BLOCK", 10**9)
        np.testing.assert_array_equal(blocked, plan.run(matrix))

    def test_block_boundary_batches(self, monkeypatch):
        cp = importlib.import_module("repro.network.compile_plan")
        net = random_network(seed=6, n_inputs=3, n_blocks=20)
        plan = compile_plan(net)
        monkeypatch.setattr(cp, "_RUN_BLOCK", 8)
        rng = np.random.default_rng(6)
        for batch in (0, 1, 7, 8, 9, 16, 17):
            matrix = rng.integers(0, 20, size=(batch, 3)).astype(np.int64)
            blocked = plan.run(matrix)
            monkeypatch.setattr(cp, "_RUN_BLOCK", 10**9)
            np.testing.assert_array_equal(blocked, plan.run(matrix))
            monkeypatch.setattr(cp, "_RUN_BLOCK", 8)

    def test_tracing_still_single_chunk(self, monkeypatch):
        from repro.obs.trace import RecordingSink

        cp = importlib.import_module("repro.network.compile_plan")
        monkeypatch.setattr(cp, "_RUN_BLOCK", 2)
        net = diamond()
        matrix = encode_volleys([(0, 1)] * 5, arity=2)
        sink = RecordingSink()
        plan = compile_plan(net)
        plan.run(matrix, sink=sink, trace_row=3)
        reference = RecordingSink()
        plan.run(matrix[3:4], sink=reference, trace_row=0)
        assert sink.canonical() == reference.canonical()


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def teardown_method(self):
        clear_plan_cache()

    def test_identity_memoized(self):
        net = diamond()
        assert compile_plan(net) is compile_plan(net)

    def test_structural_twins_share_one_plan(self):
        # A serialization round-trip is a different object with the same
        # structure: the fingerprint layer must hand back the same plan.
        net = diamond()
        twin = loads(dumps(net))
        assert twin is not net
        assert compile_plan(twin) is compile_plan(net)

    def test_cache_info_counts(self):
        info = plan_cache_info()
        assert info["identity"] == 0 and info["structural"] == 0
        net = diamond()
        compile_plan(net)
        info = plan_cache_info()
        assert info["identity"] == 1 and info["structural"] == 1

    def test_cache_info_hit_miss_counters(self):
        from repro.obs import reset_metrics

        reset_metrics()
        net = diamond()
        compile_plan(net)          # miss
        compile_plan(net)          # identity hit
        twin = loads(dumps(net))
        compile_plan(twin)         # structural hit (fingerprint twin)
        info = plan_cache_info()
        assert info["misses"] == 1
        assert info["hits_identity"] == 1
        assert info["hits_structural"] == 1

    def test_clear_plan_cache(self):
        compile_plan(diamond())
        clear_plan_cache()
        info = plan_cache_info()
        assert info["identity"] == 0 and info["structural"] == 0

    def test_different_structures_get_different_plans(self):
        b = NetworkBuilder("other")
        x, y = b.inputs("x", "y")
        b.output("z", b.min(x, y))
        assert compile_plan(diamond()) is not compile_plan(b.build())


# ---------------------------------------------------------------------------
# Fingerprint (the plan-cache key)
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_calls(self):
        net = diamond()
        assert net.fingerprint() == net.fingerprint()

    def test_serialization_roundtrip_preserves_fingerprint(self):
        net = random_network(n_inputs=3, n_blocks=20, n_outputs=2, seed=7)
        assert loads(dumps(net)).fingerprint() == net.fingerprint()

    def test_structural_change_changes_fingerprint(self):
        def build(amount):
            b = NetworkBuilder("n")
            b.output("y", b.inc(b.input("x"), amount))
            return b.build()

        assert build(1).fingerprint() != build(2).fingerprint()

    def test_terminal_names_matter(self):
        def build(name):
            b = NetworkBuilder("n")
            b.output("y", b.inc(b.input(name), 1))
            return b.build()

        assert build("x").fingerprint() != build("w").fingerprint()

    def test_output_declaration_order_matters(self):
        # Plans gather output columns in declaration order, so two nets
        # with the same outputs in different order must not share a plan.
        def build(flip):
            b = NetworkBuilder("n")
            x, y = b.inputs("x", "y")
            lo, hi = b.min(x, y), b.max(x, y)
            pairs = [("lo", lo), ("hi", hi)]
            for name, wire in reversed(pairs) if flip else pairs:
                b.output(name, wire)
            return b.build()

        assert build(False).fingerprint() != build(True).fingerprint()

    def test_network_name_does_not_matter(self):
        def build(name):
            b = NetworkBuilder(name)
            b.output("y", b.inc(b.input("x"), 1))
            return b.build()

        assert build("a").fingerprint() == build("b").fingerprint()

    def test_tags_do_not_matter(self):
        def build(tag):
            b = NetworkBuilder("n")
            b.output("y", b.inc(b.input("x"), 1, tag=tag))
            return b.build()

        assert build("early").fingerprint() == build("late").fingerprint()


# ---------------------------------------------------------------------------
# Zero-source min/max (the lattice identity constants)
# ---------------------------------------------------------------------------

class TestZeroSourceReductions:
    def build(self):
        from repro.network.graph import Network, Node

        nodes = (
            Node(0, "input", name="x"),
            Node(1, "min", sources=()),
            Node(2, "max", sources=()),
        )
        return Network(
            name="empties",
            nodes=nodes,
            outputs={"never": 1, "origin": 2, "echo": 0},
        )

    def test_batched_identities(self):
        out = evaluate_batch(self.build(), [(5,)])
        assert decode_matrix(out) == [(INF, 0, 5)]

    def test_scalar_wrapper_identities(self):
        out = evaluate_vector(self.build(), (5,))
        assert out["never"] is INF and out["origin"] == 0 and out["echo"] == 5

    def test_interpreted_identities(self):
        values = evaluate_all_interpreted(self.build(), {"x": 5})
        assert values[1] is INF and values[2] == 0
