"""Tests for RBF-like temporal clustering with compound synapses."""

import numpy as np
import pytest

from repro.apps.clustering import (
    CompoundSynapseNeuron,
    TemporalClusterer,
    purity,
)
from repro.apps.datasets import latency_clusters
from repro.core.value import INF, Infinity


class TestCompoundSynapseNeuron:
    def test_center_neuron_fires_fastest_on_its_center(self):
        center = (0, 3, 1)
        neuron = CompoundSynapseNeuron.for_center(center, n_delays=6)
        t_match = neuron.fire_time(center)
        t_off = neuron.fire_time((3, 0, 1))
        assert not isinstance(t_match, Infinity)
        assert isinstance(t_off, Infinity) or t_match < t_off

    def test_shifted_center_fires_at_shifted_time(self):
        # RBF response is invariant: the match is about relative latencies.
        center = (0, 2, 1)
        neuron = CompoundSynapseNeuron.for_center(center, n_delays=6)
        t0 = neuron.fire_time(center)
        t5 = neuron.fire_time(tuple(c + 5 for c in center))
        assert t5 == t0 + 5

    def test_center_span_validation(self):
        with pytest.raises(ValueError, match="span"):
            CompoundSynapseNeuron.for_center((0, 9), n_delays=4)

    def test_weight_shape_validation(self):
        with pytest.raises(ValueError):
            CompoundSynapseNeuron(np.zeros(4), threshold=1)
        neuron = CompoundSynapseNeuron(np.zeros((2, 3)), threshold=1)
        with pytest.raises(ValueError):
            neuron.set_weights(np.zeros((3, 3)))

    def test_zero_weights_never_fire(self):
        neuron = CompoundSynapseNeuron(np.zeros((2, 4)), threshold=1)
        assert neuron.fire_time((0, 0)) is INF


class TestClusterer:
    @pytest.fixture(scope="class")
    def problem(self):
        centers, data = latency_clusters(
            n_lines=6, n_clusters=3, presentations=60, window=6, jitter=1, seed=3
        )
        clusterer = TemporalClusterer(6, 3, n_delays=8, seed=3)
        clusterer.train([item.volley for item in data], epochs=3)
        return centers, data, clusterer

    def test_assignments_beat_chance(self, problem):
        _, data, clusterer = problem
        assignments = [clusterer.assign(item.volley) for item in data]
        labels = [item.label for item in data]
        assert purity(assignments, labels) > 0.55  # chance is 1/3

    def test_assign_returns_valid_index_or_none(self, problem):
        _, data, clusterer = problem
        for item in data[:10]:
            got = clusterer.assign(item.volley)
            assert got is None or 0 <= got < clusterer.n_clusters

    def test_training_is_deterministic_given_seed(self):
        _, data = latency_clusters(presentations=20, seed=9)
        volleys = [item.volley for item in data]
        a = TemporalClusterer(8, 3, seed=1)
        b = TemporalClusterer(8, 3, seed=1)
        a.train(volleys, epochs=1)
        b.train(volleys, epochs=1)
        for na, nb in zip(a.neurons, b.neurons):
            assert (na.weights == nb.weights).all()


class TestPurity:
    def test_perfect(self):
        assert purity([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_mixed(self):
        assert purity([0, 0, 0, 0], [1, 1, 2, 2]) == 0.5

    def test_ignores_undecided(self):
        assert purity([0, None, 0], [1, 2, 1]) == 1.0

    def test_all_undecided(self):
        assert purity([None, None], [0, 1]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            purity([0], [0, 1])
