"""Tests for emergent orientation selectivity."""

import numpy as np
import pytest

from repro.apps.vision import (
    ORIENTATIONS,
    OrientationExperiment,
    bar_dataset,
    oriented_bar,
    run_orientation_experiment,
)


class TestOrientedBar:
    def test_all_orientations_render(self):
        for orientation in ORIENTATIONS:
            image = oriented_bar(7, orientation)
            assert image.sum() >= 7  # at least a full bar of pixels

    def test_invalid_orientation(self):
        with pytest.raises(ValueError):
            oriented_bar(7, 30)

    def test_horizontal_is_a_row(self):
        image = oriented_bar(5, 0)
        assert image[2].sum() == 5
        assert image.sum() == 5

    def test_vertical_is_a_column(self):
        image = oriented_bar(5, 90)
        assert image[:, 2].sum() == 5

    def test_diagonals_are_transposes(self):
        assert (oriented_bar(5, 45) == np.fliplr(oriented_bar(5, 135))).all()

    def test_offset_moves_bar(self):
        assert (oriented_bar(5, 0, offset=1) != oriented_bar(5, 0)).any()

    def test_thickness(self):
        thin = oriented_bar(7, 0, thickness=1).sum()
        thick = oriented_bar(7, 0, thickness=2).sum()
        assert thick > thin

    def test_orientations_differ(self):
        images = [oriented_bar(7, o) for o in ORIENTATIONS]
        for i in range(len(images)):
            for j in range(i + 1, len(images)):
                assert (images[i] != images[j]).any()


class TestDataset:
    def test_shapes_and_labels(self):
        samples = bar_dataset(size=7, presentations=20, seed=0)
        assert len(samples) == 20
        for sample in samples:
            assert len(sample.volley) == 49
            assert sample.orientation in ORIENTATIONS

    def test_bar_pixels_spike(self):
        samples = bar_dataset(size=7, presentations=5, noise=0.0, seed=1)
        for sample in samples:
            assert sample.volley.spike_count >= 6

    def test_deterministic(self):
        a = bar_dataset(presentations=10, seed=4)
        b = bar_dataset(presentations=10, seed=4)
        assert [s.volley for s in a] == [s.volley for s in b]


class TestExperiment:
    @pytest.fixture(scope="class")
    def trained(self):
        samples = bar_dataset(presentations=80, seed=0)
        experiment = OrientationExperiment(seed=0)
        experiment.train(samples, epochs=3)
        return experiment

    def test_all_orientations_claimed(self, trained):
        fresh = bar_dataset(presentations=40, seed=999)
        purity, claimed = trained.selectivity_report(fresh)
        assert claimed == len(ORIENTATIONS)
        assert purity > 0.4  # chance is 0.25

    def test_receptive_fields_look_like_bars(self, trained):
        # The classic emergent result: weight vectors become oriented
        # filters. Most neurons' fields should best-match an orientation
        # consistent with their preferred stimulus.
        preferences = trained.preferred_orientations()
        matches = sum(
            1
            for neuron, preferred in preferences.items()
            if trained.field_orientation_match(neuron) == preferred
        )
        assert matches >= len(preferences) * 0.6

    def test_receptive_field_shape(self, trained):
        field = trained.receptive_field(0)
        assert field.shape == (7, 7)

    def test_untrained_field_match_handles_flat(self):
        experiment = OrientationExperiment(seed=1)
        experiment.column.set_weights(
            np.zeros_like(experiment.column.weights)
        )
        assert experiment.field_orientation_match(0) is None

    def test_end_to_end(self):
        purity, claimed = run_orientation_experiment(
            seed=3, presentations=60, epochs=3
        )
        assert purity > 0.4
        assert claimed >= 3
