"""Tests for synthetic workload generators."""

import random

import pytest

from repro.apps.datasets import (
    embedded_patterns,
    latency_clusters,
    random_pattern,
    two_class_latency,
)
from repro.core.value import INF, Infinity


class TestRandomPattern:
    def test_active_line_count(self):
        rng = random.Random(0)
        pattern = random_pattern(20, active_lines=7, window=8, rng=rng)
        active = sum(1 for t in pattern if not isinstance(t, Infinity))
        assert active == 7

    def test_times_in_window(self):
        rng = random.Random(1)
        pattern = random_pattern(20, active_lines=10, window=4, rng=rng)
        for t in pattern:
            assert t is INF or 0 <= t < 4

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pattern(5, active_lines=9, window=4, rng=random.Random(0))


class TestEmbeddedPatterns:
    def test_shapes_and_labels(self):
        bases, data = embedded_patterns(
            n_lines=16, n_patterns=3, presentations=20, seed=0
        )
        assert len(bases) == 3
        assert len(data) == 20
        for item in data:
            assert 0 <= item.label < 3
            assert len(item.volley) == 16

    def test_deterministic(self):
        a = embedded_patterns(seed=5)
        b = embedded_patterns(seed=5)
        assert [d.volley for d in a[1]] == [d.volley for d in b[1]]

    def test_zero_noise_preserves_active_lines(self):
        bases, data = embedded_patterns(
            n_lines=16,
            n_patterns=1,
            presentations=5,
            active_lines=6,
            jitter=0,
            dropout=0.0,
            noise_lines=0,
            seed=2,
        )
        base_active = {
            i for i, t in enumerate(bases[0]) if not isinstance(t, Infinity)
        }
        for item in data:
            active = {
                i
                for i, t in enumerate(item.volley)
                if not isinstance(t, Infinity)
            }
            assert active == base_active

    def test_noise_adds_spikes(self):
        _, clean = embedded_patterns(
            presentations=10, noise_lines=0, dropout=0.0, seed=3
        )
        _, noisy = embedded_patterns(
            presentations=10, noise_lines=5, dropout=0.0, seed=3
        )
        assert sum(v.volley.spike_count for v in noisy) > sum(
            v.volley.spike_count for v in clean
        )


class TestLatencyClusters:
    def test_all_lines_spike(self):
        _, data = latency_clusters(n_lines=6, presentations=10, seed=0)
        for item in data:
            assert item.volley.spike_count == 6

    def test_jitter_bounded(self):
        centers, data = latency_clusters(
            n_lines=6, n_clusters=2, presentations=30, jitter=1, seed=1
        )
        for item in data:
            center = centers[item.label]
            for t, c in zip(item.volley, center):
                assert abs(int(t) - c) <= 1 or int(t) in (0,)


class TestTwoClassLatency:
    def test_balanced(self):
        volleys, labels = two_class_latency(per_class=10, seed=0)
        assert len(volleys) == 20
        assert sum(labels) == 10

    def test_classes_differ(self):
        volleys, labels = two_class_latency(per_class=1, jitter=0, seed=1)
        positive = volleys[labels.index(True)]
        negative = volleys[labels.index(False)]
        assert positive != negative
