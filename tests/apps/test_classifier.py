"""Integration tests for the STDP/WTA pattern classifier."""

import pytest

from repro.apps.classifier import ClassifierConfig, TNNClassifier
from repro.apps.datasets import LabeledVolley, embedded_patterns
from repro.coding.volley import Volley


@pytest.fixture(scope="module")
def trained():
    bases, data = embedded_patterns(
        n_lines=24,
        n_patterns=3,
        presentations=60,
        active_lines=10,
        jitter=1,
        dropout=0.05,
        noise_lines=1,
        seed=2,
    )
    clf = TNNClassifier(24, config=ClassifierConfig(n_neurons=6, epochs=3, seed=2))
    clf.fit(data)
    return bases, data, clf


class TestTraining:
    def test_accuracy_beats_chance(self, trained):
        _, data, clf = trained
        # 3 classes: chance is 1/3; a working TNN does far better.
        assert clf.accuracy(data) > 0.7

    def test_coverage(self, trained):
        _, data, clf = trained
        assert clf.coverage(data) > 0.8

    def test_generalizes_to_fresh_presentations(self, trained):
        bases, _, clf = trained
        _, fresh = embedded_patterns(
            n_lines=24,
            n_patterns=3,
            presentations=30,
            active_lines=10,
            jitter=1,
            dropout=0.05,
            noise_lines=1,
            seed=77,
        )
        # Fresh data comes from *different* base patterns (different seed),
        # so evaluate on jittered copies of the *training* bases instead.
        from repro.apps.datasets import LabeledVolley

        replay = [
            LabeledVolley(Volley(base), label)
            for label, base in enumerate(bases)
        ]
        assert clf.accuracy(replay) >= 2 / 3

    def test_classes_map_to_distinct_neurons(self, trained):
        bases, _, clf = trained
        predictions = {clf.predict(Volley(base)) for base in bases}
        predictions.discard(None)
        assert len(predictions) >= 2


class TestEdgeBehaviour:
    def test_silent_volley_predicts_none(self, trained):
        _, _, clf = trained
        assert clf.predict(Volley.silent(24)) is None

    def test_empty_dataset_accuracy(self):
        clf = TNNClassifier(8)
        assert clf.accuracy([]) == 1.0
        assert clf.coverage([]) == 1.0

    def test_calibration_without_training(self):
        _, data = embedded_patterns(
            n_lines=8, n_patterns=2, presentations=10, active_lines=4, seed=0
        )
        clf = TNNClassifier(8, config=ClassifierConfig(n_neurons=2, seed=0))
        clf.calibrate(data)  # must not crash on an untrained column
        assert isinstance(clf.neuron_labels, dict)
