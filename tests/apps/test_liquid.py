"""Tests for the liquid state machine extension."""

import numpy as np
import pytest

from repro.apps.liquid import (
    LiquidStateMachine,
    Readout,
    sequence_classification_experiment,
)
from repro.coding.volley import Volley
from repro.core.value import INF, Infinity


class TestLiquid:
    def test_validation(self):
        with pytest.raises(ValueError):
            LiquidStateMachine(0, 4)
        with pytest.raises(ValueError):
            LiquidStateMachine(4, 4, feedback_fraction=1.5)

    def test_trace_length_matches_stream(self):
        lsm = LiquidStateMachine(4, 8, seed=0)
        stream = [Volley([0, 1, 2, 3]), Volley([3, 2, 1, 0])]
        trace = lsm.run(stream)
        assert len(trace) == 2
        assert all(len(state) == 8 for state in trace)

    def test_wrong_volley_width(self):
        lsm = LiquidStateMachine(4, 8, seed=0)
        with pytest.raises(ValueError, match="4-line"):
            lsm.run([Volley([0, 1])])

    def test_state_depends_on_history(self):
        # The LSM's defining property: identical present input, different
        # past -> different state. A feedforward TNN cannot do this.
        lsm = LiquidStateMachine(4, 16, seed=1)
        common = Volley([0, 2, 1, 3])
        past_a = Volley([0, 0, 0, 0])
        past_b = Volley([5, INF, 5, INF])
        state_a = lsm.run([past_a, common])[-1]
        state_b = lsm.run([past_b, common])[-1]
        assert state_a != state_b

    def test_runs_are_independent(self):
        lsm = LiquidStateMachine(4, 8, seed=2)
        stream = [Volley([0, 1, 2, 3])]
        assert lsm.run(stream) == lsm.run(stream)

    def test_features_shape_and_range(self):
        lsm = LiquidStateMachine(4, 8, seed=0)
        stream = [Volley([0, 1, 2, 3]), Volley([1, 1, 1, 1])]
        features = lsm.features(stream)
        assert features.shape == (16,)  # reservoir x rounds
        assert ((features >= 0.0) & (features <= 1.0)).all()

    def test_silent_stream_features(self):
        lsm = LiquidStateMachine(4, 8, seed=0)
        features = lsm.features([Volley.silent(4)])
        assert (features == 0.0).all()


class TestReadout:
    def test_delta_rule_learns_separable(self):
        rng = np.random.default_rng(0)
        class0 = [rng.normal(0.0, 0.1, 8) + np.array([1] * 4 + [0] * 4) for _ in range(10)]
        class1 = [rng.normal(0.0, 0.1, 8) + np.array([0] * 4 + [1] * 4) for _ in range(10)]
        readout = Readout(8, 2, seed=0)
        history = readout.train(
            class0 + class1, [0] * 10 + [1] * 10, epochs=50
        )
        assert history[-1] == 1.0

    def test_label_count_checked(self):
        readout = Readout(4, 2)
        with pytest.raises(ValueError):
            readout.train([np.zeros(4)], [0, 1])

    def test_predict_returns_class_index(self):
        readout = Readout(4, 3)
        assert readout.predict(np.zeros(4)) in (0, 1, 2)


class TestEndToEnd:
    def test_sequence_classification_beats_chance(self):
        train, test = sequence_classification_experiment(seed=5)
        assert train >= 0.8
        assert test > 0.55  # chance = 1/3

    def test_deterministic(self):
        a = sequence_classification_experiment(seed=3)
        b = sequence_classification_experiment(seed=3)
        assert a == b
