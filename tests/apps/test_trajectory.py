"""Integration tests for the Fig. 4 trajectory-tracking reproduction."""

import pytest

from repro.apps.trajectory import (
    TrafficConfig,
    TrajectoryTracker,
    run_experiment,
    synthesize_traffic,
    windows_with_labels,
)


class TestSyntheticTraffic:
    def test_stream_has_events(self):
        stream, schedule = synthesize_traffic(TrafficConfig(seed=0), 3)
        assert len(stream) > 0
        assert len(schedule) == 3

    def test_schedule_covers_vehicles(self):
        _, schedule = synthesize_traffic(TrafficConfig(seed=0), 4)
        for start, end, lane in schedule:
            assert start < end
            assert 0 <= lane < 2

    def test_lane_rows_disjoint(self):
        config = TrafficConfig(height=8, n_lanes=2, blob_size=2)
        rows0 = set(config.lane_rows(0))
        rows1 = set(config.lane_rows(1))
        assert not rows0 & rows1

    def test_windows_labeled(self):
        config = TrafficConfig(seed=1)
        stream, schedule = synthesize_traffic(config, 4)
        data = windows_with_labels(stream, schedule, window=4)
        assert data
        for item in data:
            assert 0 <= item.label < config.n_lanes
            assert not item.volley.is_silent

    def test_deterministic(self):
        a, _ = synthesize_traffic(TrafficConfig(seed=7), 2)
        b, _ = synthesize_traffic(TrafficConfig(seed=7), 2)
        assert [e for e in a] == [e for e in b]


class TestTracker:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            n_lanes=2, n_vehicles_train=10, n_vehicles_test=6, seed=1
        )

    def test_lane_purity(self, result):
        # The Bichler result's shape: after unsupervised STDP, neurons
        # specialize to lanes — purity well above the 50% chance level.
        assert result.lane_purity > 0.8

    def test_both_lanes_claimed(self, result):
        assert result.distinct_lanes_claimed == 2

    def test_coverage(self, result):
        assert result.coverage > 0.5

    def test_untrained_tracker_runs(self):
        config = TrafficConfig(seed=3)
        stream, schedule = synthesize_traffic(config, 2)
        data = windows_with_labels(stream, schedule, window=4)
        tracker = TrajectoryTracker(config, seed=3)
        evaluation = tracker.evaluate(data)  # no training: still well-formed
        assert 0.0 <= evaluation.lane_purity <= 1.0
