"""The classifier and clusterer e2e paths under ``python -O``.

The training plane leans on both apps (the scenario trains a
``TNNClassifier`` column online), and production servers routinely run
optimized — so neither pipeline may depend on ``assert`` statements for
control flow.  Each pipeline is executed in two subprocesses, one plain
and one with ``-O`` (asserts stripped), and the runs must be
*bit-identical*: same learned weights, same label assignments, same
accuracy — not merely both above chance.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

SCRIPT = """
import hashlib
import json

from repro.apps.classifier import ClassifierConfig, TNNClassifier
from repro.apps.clustering import TemporalClusterer, purity
from repro.apps.datasets import embedded_patterns, latency_clusters

_bases, data = embedded_patterns(
    n_lines=16, n_patterns=3, presentations=48, active_lines=8,
    window=8, jitter=1, dropout=0.05, noise_lines=1, seed=5,
)
clf = TNNClassifier(16, config=ClassifierConfig(n_neurons=6, epochs=3, seed=5))
clf.fit(data)

centers, cdata = latency_clusters(
    n_lines=6, n_clusters=3, presentations=40, window=6, jitter=1, seed=3
)
clusterer = TemporalClusterer(6, 3, n_delays=8, seed=3)
volleys = [item.volley for item in cdata]
clusterer.train(volleys, epochs=2)
assignments = [clusterer.assign(v) for v in volleys]

print(json.dumps({
    "clf_accuracy": clf.accuracy(data),
    "clf_coverage": clf.coverage(data),
    "clf_labels": {str(k): v for k, v in sorted(clf.neuron_labels.items())},
    "clf_weights": hashlib.sha256(clf.column.weights.tobytes()).hexdigest(),
    "cluster_purity": purity(assignments, [item.label for item in cdata]),
    "cluster_weights": hashlib.sha256(
        b"".join(n.weights.tobytes() for n in clusterer.neurons)
    ).hexdigest(),
}, sort_keys=True))
"""


def run_pipelines(optimize):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    flags = ["-O"] if optimize else []
    proc = subprocess.run(
        [sys.executable, *flags, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestOptimizeStability:
    def test_pipelines_identical_with_and_without_O(self):
        plain = run_pipelines(optimize=False)
        optimized = run_pipelines(optimize=True)
        assert plain == optimized

    def test_accuracy_above_chance_under_O(self):
        report = run_pipelines(optimize=True)
        # Both problems have 3 classes: chance is 1/3.
        assert report["clf_accuracy"] > 0.5
        assert report["clf_coverage"] > 0.6
        assert report["cluster_purity"] > 0.5
