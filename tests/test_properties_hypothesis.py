"""Property-based tests (hypothesis) for cross-cutting invariants.

Each property here is one of the paper's claims stated over *arbitrary*
values or structures: the algebra's laws, causality/invariance of every
construction, agreement of the four execution semantics, and roundtrip
properties of tables, volleys, and serialization.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.volley import Volley
from repro.core.algebra import inc, lt, maximum, minimum
from repro.core.minimize import minimize
from repro.core.synthesis import max_from_min_lt, synthesize
from repro.core.table import NormalizedTable
from repro.core.value import INF, Infinity, normalize, shift
from repro.network.builder import NetworkBuilder
from repro.network.events import EventSimulator
from repro.network.optimize import optimize
from repro.network.serialize import dumps, loads
from repro.network.simulator import evaluate
from repro.racelogic.compile import GRLExecutor

times = st.one_of(st.integers(min_value=0, max_value=30), st.just(INF))
small_times = st.one_of(st.integers(min_value=0, max_value=6), st.just(INF))


def plus(t, c):
    return INF if isinstance(t, Infinity) else t + c


# ---------------------------------------------------------------------------
# Algebra laws over arbitrary values
# ---------------------------------------------------------------------------

class TestAlgebraProperties:
    @given(times, times, st.integers(min_value=0, max_value=10))
    def test_primitives_are_invariant(self, a, b, c):
        assert minimum(plus(a, c), plus(b, c)) == plus(minimum(a, b), c)
        assert maximum(plus(a, c), plus(b, c)) == plus(maximum(a, b), c)
        assert lt(plus(a, c), plus(b, c)) == plus(lt(a, b), c)
        assert inc(plus(a, c)) == plus(inc(a), c)

    @given(times, times)
    def test_lt_never_precedes_its_first_argument(self, a, b):
        out = lt(a, b)
        assert isinstance(out, Infinity) or out == a

    @given(times, times)
    def test_min_max_bracket_inputs(self, a, b):
        assert minimum(a, b) <= a and minimum(a, b) <= b
        assert maximum(a, b) >= a and maximum(a, b) >= b

    @given(times, times)
    def test_lemma2_construction_pointwise(self, a, b):
        # max(a,b) == min(lt(b, lt(b,a)), lt(a, lt(a,b))) for ALL values.
        built = minimum(lt(b, lt(b, a)), lt(a, lt(a, b)))
        assert built == maximum(a, b)

    @given(st.lists(times, min_size=1, max_size=8), st.integers(min_value=0, max_value=5))
    def test_normalize_shift_roundtrip(self, vec, c):
        vec = tuple(vec)
        normalized, lo = normalize(vec)
        if not isinstance(lo, Infinity):
            assert shift(normalized, lo) == vec
        shifted = tuple(plus(v, c) for v in vec)
        renorm, _ = normalize(shifted)
        assert renorm == normalized


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

table_seeds = st.integers(min_value=0, max_value=10**6)


def random_table(seed, arity=3):
    return NormalizedTable.random(
        arity, window=3, n_rows=5, rng=random.Random(seed)
    )


class TestTableProperties:
    @settings(max_examples=25, deadline=None)
    @given(table_seeds, st.lists(small_times, min_size=3, max_size=3), st.integers(min_value=1, max_value=5))
    def test_causal_evaluation_is_invariant(self, seed, vec, c):
        table = random_table(seed)
        vec = tuple(vec)
        out = table.evaluate_causal(vec)
        shifted = tuple(plus(v, c) for v in vec)
        assert table.evaluate_causal(shifted) == plus(out, c)

    @settings(max_examples=25, deadline=None)
    @given(table_seeds, st.lists(small_times, min_size=3, max_size=3))
    def test_synthesis_matches_causal_semantics(self, seed, vec):
        table = random_table(seed)
        f = synthesize(table).as_function()
        vec = tuple(vec)
        assert f(*vec) == table.evaluate_causal(vec)

    @settings(max_examples=25, deadline=None)
    @given(table_seeds, st.lists(small_times, min_size=3, max_size=3))
    def test_minimize_preserves_causal_semantics(self, seed, vec):
        table = random_table(seed)
        minimal = minimize(table)
        vec = tuple(vec)
        assert minimal.evaluate_causal(vec) == table.evaluate_causal(vec)

    @settings(max_examples=25, deadline=None)
    @given(table_seeds)
    def test_causal_output_never_earlier_than_first_spike(self, seed):
        table = random_table(seed)
        for vec, y in table:
            finite = [v for v in vec if not isinstance(v, Infinity)]
            assert y >= min(finite)


# ---------------------------------------------------------------------------
# Random networks: four semantics agree; rewrites preserve meaning
# ---------------------------------------------------------------------------

def build_random_network(seed, n_inputs=3, n_blocks=12):
    rng = random.Random(seed)
    builder = NetworkBuilder(f"hyp{seed}")
    pool = [builder.input(f"x{i}") for i in range(n_inputs)]
    for _ in range(n_blocks):
        op = rng.choice(["inc", "min", "max", "lt"])
        if op == "inc":
            pool.append(builder.inc(rng.choice(pool), rng.randint(1, 3)))
        elif op == "lt":
            pool.append(builder.lt(rng.choice(pool), rng.choice(pool)))
        else:
            srcs = [rng.choice(pool) for _ in range(rng.randint(2, 3))]
            pool.append(getattr(builder, op)(*srcs))
    builder.output("y", pool[-1])
    return builder.build()


class TestNetworkProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
    )
    def test_three_semantics_agree(self, seed, vec):
        net = build_random_network(seed)
        bound = dict(zip(net.input_names, vec))
        denotational = evaluate(net, bound)
        event = EventSimulator(net).run(bound).outputs
        silicon = GRLExecutor(net).outputs(bound)
        assert denotational == event == silicon

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
    )
    def test_optimize_preserves_semantics(self, seed, vec):
        net = build_random_network(seed)
        optimized, _ = optimize(net)
        bound = dict(zip(net.input_names, vec))
        assert evaluate(optimized, bound) == evaluate(net, bound)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
    )
    def test_serialization_roundtrip(self, seed, vec):
        net = build_random_network(seed)
        back = loads(dumps(net))
        bound = dict(zip(net.input_names, vec))
        assert evaluate(back, bound) == evaluate(net, bound)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
        st.integers(min_value=1, max_value=4),
    )
    def test_networks_are_invariant(self, seed, vec, c):
        net = build_random_network(seed)
        bound = dict(zip(net.input_names, vec))
        shifted = {k: plus(v, c) for k, v in bound.items()}
        base = evaluate(net, bound)["y"]
        assert evaluate(net, shifted)["y"] == plus(base, c)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6), st.lists(small_times, min_size=3, max_size=3))
    def test_single_spike_per_wire(self, seed, vec):
        net = build_random_network(seed)
        result = EventSimulator(net).run(dict(zip(net.input_names, vec)))
        nodes_fired = [e.node_id for e in result.trace]
        assert len(nodes_fired) == len(set(nodes_fired))


# ---------------------------------------------------------------------------
# Hardware semantics and static timing
# ---------------------------------------------------------------------------

class TestHardwareProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
    )
    def test_async_equals_denotational_at_zero_latency(self, seed, vec):
        from repro.racelogic.asynchronous import compile_async, run_async

        net = build_random_network(seed)
        circuit = compile_async(net)
        bound = dict(zip(net.input_names, vec))
        assert run_async(circuit, bound).outputs == evaluate(net, bound)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
    )
    def test_grl_single_transition_per_data_wire(self, seed, vec):
        # §VI's minimal-transition property: over a whole computation the
        # transition count never exceeds ~1 per gate plus latch internals
        # (each latch hides one NOT that can also toggle once).
        net = build_random_network(seed)
        executor = GRLExecutor(net)
        result = executor.run(dict(zip(net.input_names, vec)))
        kinds = executor.circuit.counts_by_kind()
        budget = len(executor.circuit) + kinds.get("lt", 0)
        assert result.transition_count <= budget

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(small_times, min_size=3, max_size=3),
    )
    def test_timing_intervals_contain_outputs(self, seed, vec):
        from repro.network.timing import default_input_window, output_intervals

        net = build_random_network(seed)
        windows = default_input_window(net, 6)
        intervals = output_intervals(net, windows)
        bound = dict(zip(net.input_names, vec))
        for name, value in evaluate(net, bound).items():
            assert intervals[name].contains(value), (name, value)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_verilog_always_well_formed(self, seed):
        from repro.racelogic.compile import compile_network
        from repro.racelogic.export import to_verilog

        net = build_random_network(seed)
        text = to_verilog(compile_network(net))
        assert text.count("module") == text.count("endmodule") * 1 or True
        assert text.rstrip().endswith("endmodule")
        # Balanced instantiations: one grl_lt instance per lt gate.
        circuit = compile_network(net)
        assert text.count("grl_lt lt") == circuit.counts_by_kind().get("lt", 0)


# ---------------------------------------------------------------------------
# Volleys
# ---------------------------------------------------------------------------

class TestVolleyProperties:
    @given(st.lists(times, min_size=1, max_size=10))
    def test_normalized_is_idempotent(self, raw):
        v = Volley(raw).normalized()
        assert v.normalized() == v

    @given(st.lists(times, min_size=1, max_size=10), st.integers(min_value=0, max_value=9))
    def test_decode_is_shift_invariant(self, raw, c):
        v = Volley(raw)
        assert v.shifted(c).decode() == v.decode()

    @given(st.lists(st.one_of(st.integers(min_value=0, max_value=20), st.none()), min_size=1, max_size=10))
    def test_values_roundtrip(self, values):
        # Fig. 5 values are relative to the first spike, so decoding
        # recovers the *normalized* value vector exactly; when the input
        # already contains a 0 (or is all-silent) the roundtrip is exact.
        decoded = Volley.from_values(values).decode()
        finite = [v for v in values if v is not None]
        if not finite or min(finite) == 0:
            assert decoded == values
        else:
            lo = min(finite)
            assert decoded == [
                None if v is None else v - lo for v in values
            ]

    @given(st.lists(times, min_size=1, max_size=10))
    def test_sparsity_and_count_consistent(self, raw):
        v = Volley(raw)
        assert v.spike_count + round(v.sparsity * len(v)) == len(v)
