"""End-to-end integration journeys across the whole library.

Each test walks a realistic multi-stage pipeline and checks exact
semantic agreement at *every* stage — the repository's strongest
regression net, since a bug anywhere in the stack surfaces as a stage
disagreement here.
"""

import random

import pytest

from repro.analysis.equivalence import check_network
from repro.core.function import enumerate_domain
from repro.core.minimize import minimize
from repro.core.synthesis import synthesize
from repro.core.table import NormalizedTable
from repro.core.value import INF, Infinity
from repro.network.events import EventSimulator
from repro.network.generate import input_batch, random_network
from repro.network.optimize import optimize
from repro.network.serialize import dumps, loads
from repro.network.simulator import evaluate
from repro.network.timing import analyze, default_input_window
from repro.racelogic.asynchronous import compile_async, run_async
from repro.racelogic.compile import GRLExecutor, compile_network
from repro.racelogic.digital import run_circuit
from repro.racelogic.export import circuit_dumps, circuit_loads, to_verilog


@pytest.mark.parametrize("seed", range(4))
class TestTableToSiliconPipeline:
    """table → minimize → synthesize → optimize → serialize → compile."""

    def _table(self, seed):
        return NormalizedTable.random(
            3, window=3, n_rows=8, rng=random.Random(seed)
        )

    def test_every_stage_preserves_semantics(self, seed):
        table = self._table(seed)
        reference = table.as_causal_function()
        window = table.max_entry() + 1
        domain = list(enumerate_domain(3, window))

        minimal = minimize(table)
        synthesized = synthesize(minimal)
        optimized, _ = optimize(synthesized)
        reloaded = loads(dumps(optimized))

        stages = {
            "minimized-table": minimal.as_causal_function(),
            "synthesized": synthesized.as_function(),
            "optimized": optimized.as_function(),
            "reloaded": reloaded.as_function(),
        }
        for stage_name, func in stages.items():
            for vec in domain:
                assert func(*vec) == reference(*vec), (seed, stage_name, vec)

    def test_hardware_stages_agree(self, seed):
        table = self._table(seed)
        net, _ = optimize(synthesize(minimize(table)))
        clocked = GRLExecutor(net)
        asynchronous = compile_async(net)
        sim = EventSimulator(net)
        rng = random.Random(seed + 100)
        for _ in range(30):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 5)
                for _ in range(3)
            )
            bound = dict(zip(net.input_names, vec))
            want = evaluate(net, bound)
            assert sim.run(bound).outputs == want, (seed, vec, "events")
            assert clocked.outputs(bound) == want, (seed, vec, "clocked")
            assert run_async(asynchronous, bound).outputs == want, (
                seed,
                vec,
                "async",
            )

    def test_netlist_roundtrip_then_simulate(self, seed):
        table = self._table(seed)
        net = synthesize(table)
        circuit = compile_network(net)
        reloaded = circuit_loads(circuit_dumps(circuit))
        bound = dict(zip(net.input_names, (0, 2, 1)))
        assert (
            run_circuit(reloaded, bound).outputs
            == run_circuit(circuit, bound).outputs
            == evaluate(net, bound)
        )

    def test_verilog_exports_for_every_table(self, seed):
        table = self._table(seed)
        circuit = compile_network(synthesize(table))
        text = to_verilog(circuit)
        assert text.count("endmodule") >= 1
        assert "assign y =" in text or "assign out_y =" in text


class TestTimingCoversExecution:
    """Static analysis bounds must contain every concrete execution."""

    @pytest.mark.parametrize("seed", range(3))
    def test_intervals_contain_all_runs(self, seed):
        net = random_network(n_inputs=3, n_blocks=20, seed=seed)
        windows = default_input_window(net, 4)
        intervals = analyze(net, windows)
        for bound in input_batch(net, 40, max_time=4, seed=seed + 1):
            from repro.network.simulator import evaluate_all

            concrete = evaluate_all(net, bound)
            for node_id, value in enumerate(concrete):
                assert intervals[node_id].contains(value), (
                    seed,
                    bound,
                    node_id,
                )


class TestOptimizedNetworksStayEquivalentEverywhere:
    @pytest.mark.parametrize("seed", range(3))
    def test_full_equivalence_harness_after_optimization(self, seed):
        net = random_network(n_inputs=3, n_blocks=25, seed=seed + 40)
        optimized, _ = optimize(net)
        report = check_network(optimized, window=3, sample=40)
        assert report.ok, str(report)


class TestNeuronPipeline:
    """behavioral neuron → Fig. 12 net → optimize → GRL → Verilog."""

    def test_neuron_to_silicon(self):
        from repro.neuron.response import ResponseFunction
        from repro.neuron.srm0 import SRM0Neuron
        from repro.neuron.srm0_network import build_srm0_network

        base = ResponseFunction.biexponential(amplitude=3, t_max=8)
        neuron = SRM0Neuron.homogeneous(
            3, [2, 3, 1], base_response=base, threshold=6
        )
        net, report = optimize(build_srm0_network(neuron))
        assert report.after_blocks <= report.before_blocks
        executor = GRLExecutor(net)
        rng = random.Random(0)
        for _ in range(25):
            vec = tuple(
                INF if rng.random() < 0.3 else rng.randint(0, 6)
                for _ in range(3)
            )
            want = neuron.fire_time(vec)
            got = executor.outputs(dict(zip(net.input_names, vec)))["y"]
            assert want == got, vec
        text = to_verilog(executor.circuit)
        assert "module" in text

    def test_trained_classifier_compiles(self):
        """Train a column with STDP, then run one neuron in silicon."""
        import numpy as np

        from repro.apps.datasets import embedded_patterns
        from repro.learning.stdp import STDPRule, STDPTrainer
        from repro.neuron.column import Column
        from repro.neuron.response import ResponseFunction
        from repro.neuron.srm0_network import build_srm0_network

        base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=4)
        _, data = embedded_patterns(
            n_lines=8, n_patterns=2, presentations=20, active_lines=4, seed=3
        )
        column = Column(
            np.full((2, 8), 2), threshold=5, base_response=base
        )
        trainer = STDPTrainer(column, STDPRule(), rng=random.Random(3))
        trainer.train([item.volley for item in data], epochs=2)

        net = build_srm0_network(column.neurons[0])
        executor = GRLExecutor(net)
        for item in data[:8]:
            vec = tuple(item.volley)
            want = column.neurons[0].fire_time(vec)
            got = executor.outputs(dict(zip(net.input_names, vec)))["y"]
            assert want == got
