"""Tests for the differential conformance engine.

Includes the property-based satellite: on seeded random DAGs the
event-driven simulator and the compiled batch engine denote the same
bounded s-t function (up to sentinel saturation).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.value import INF, Infinity
from repro.testing.conformance import (
    ConformanceReport,
    diff_backends,
    find_disagreements,
    run_case,
    run_conformance,
    run_fault_selfcheck,
)
from repro.testing.faults import FAULT_CLASSES, FaultedOracle
from repro.testing.generators import (
    adversarial_volleys,
    generate_case,
    random_layered_network,
)
from repro.testing.oracles import (
    BackendRun,
    CompiledBatchOracle,
    EventDrivenOracle,
    InterpretedOracle,
    saturate_outputs,
)

times = st.one_of(st.integers(min_value=0, max_value=30), st.just(INF))


# ---------------------------------------------------------------------------
# Property: event-driven simulator == compiled batch engine on random DAGs
# ---------------------------------------------------------------------------

class TestEventDrivenMatchesCompiled:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        volley_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_adversarial_volleys_agree(self, seed, volley_seed):
        network = random_layered_network(
            seed=seed, n_inputs=4, n_layers=3, width=4, n_outputs=2
        )
        volleys = adversarial_volleys(
            4, rng=random.Random(volley_seed), n_random=4
        )
        event = EventDrivenOracle().run(network, volleys)
        batch = CompiledBatchOracle().run(network, volleys)
        assert [saturate_outputs(o) for o in event] == [
            saturate_outputs(o) for o in batch
        ]

    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_hand_drawn_volleys_agree(self, data, seed):
        network = random_layered_network(
            seed=seed, n_inputs=3, n_layers=4, width=5, n_outputs=2
        )
        volley = tuple(data.draw(times) for _ in range(3))
        event = EventDrivenOracle().run(network, [volley])[0]
        batch = CompiledBatchOracle().run(network, [volley])[0]
        assert saturate_outputs(event) == saturate_outputs(batch)


# ---------------------------------------------------------------------------
# Diffing machinery
# ---------------------------------------------------------------------------

class TestFindDisagreements:
    def test_unanimous_run_is_clean(self):
        run = BackendRun(
            volleys=[(1,), (2,)],
            results={"a": [(1,), (2,)], "b": [(1,), (2,)]},
        )
        assert find_disagreements(run) == []

    def test_split_vote_reported_with_outputs(self):
        run = BackendRun(
            volleys=[(1,), (2,)],
            results={"a": [(1,), (2,)], "b": [(1,), (9,)]},
        )
        found = find_disagreements(run)
        assert len(found) == 1
        index, outputs = found[0]
        assert index == 1
        assert outputs == {"a": (2,), "b": (9,)}

    def test_single_supporting_backend_cannot_disagree(self):
        run = BackendRun(
            volleys=[(1,)],
            results={"a": [(1,)], "b": [None]},
        )
        assert find_disagreements(run) == []

    def test_diff_backends_flags_injected_fault(self):
        case = generate_case(0, smoke=True)
        faulted = FaultedOracle(
            CompiledBatchOracle(),
            label="all-zero",
            volley_transform=lambda v: (0,) * len(v),
        )
        _, found = diff_backends(
            case.network,
            case.volleys,
            params=case.params or None,
            oracles=[InterpretedOracle(), faulted],
        )
        assert found, "an all-zero volley fault must be observable"


# ---------------------------------------------------------------------------
# Case runs and shrinking
# ---------------------------------------------------------------------------

class TestRunCase:
    def test_clean_case_has_no_mismatches(self):
        case = generate_case(1, smoke=True)
        run, mismatches = run_case(case)
        assert mismatches == []
        assert len(run.volleys) == len(case.volleys)

    def test_forced_mismatch_is_shrunk_and_emitted(self):
        case = generate_case(2, smoke=True)
        faulted = FaultedOracle(
            CompiledBatchOracle(),
            label="drop-all",
            volley_transform=lambda v: (INF,) * len(v),
        )
        run, mismatches = run_case(
            case, oracles=[InterpretedOracle(), faulted]
        )
        assert mismatches
        first = mismatches[0]
        assert first.minimized_volley is not None
        assert first.regression_test is not None
        # The witness never grows during shrinking.
        finite = sum(
            1 for v in first.minimized_volley if not isinstance(v, Infinity)
        )
        assert finite <= sum(
            1 for v in first.volley if not isinstance(v, Infinity)
        )
        # The emitted module is executable Python with one test function.
        namespace = {}
        exec(compile(first.regression_test, "<emitted>", "exec"), namespace)
        test_fns = [k for k in namespace if k.startswith("test_")]
        assert len(test_fns) == 1


# ---------------------------------------------------------------------------
# The sweep and the self-check
# ---------------------------------------------------------------------------

class TestRunConformance:
    def test_smoke_sweep_is_clean(self):
        report = run_conformance(seed=0, count=3, smoke=True, with_faults=False)
        assert isinstance(report, ConformanceReport)
        assert report.ok
        assert report.cases == 3
        assert report.mismatches == []
        assert report.comparisons > 0
        assert "verdict: OK" in report.summary()

    def test_skips_carry_reasons(self):
        # Enough smoke cases to hit a GRL-unsupported network.
        report = run_conformance(
            seed=0, count=12, smoke=True, with_faults=False, shrink=False
        )
        if report.skips:
            for name in report.skips:
                assert report.skip_reasons[name]

    def test_fault_selfcheck_kills_every_class(self):
        report = run_fault_selfcheck(seed=0, smoke=True)
        assert report.ok, str(report)
        assert {d.fault for d in report.detections} == {
            f.name for f in FAULT_CLASSES
        }
        for detection in report.detections:
            assert detection.witness is not None
            assert detection.regression_test is not None

    def test_fault_selfcheck_deterministic(self):
        first = run_fault_selfcheck(seed=3, smoke=True, shrink=False)
        second = run_fault_selfcheck(seed=3, smoke=True, shrink=False)
        assert [
            (d.fault, d.case_name, d.oracle_name) for d in first.detections
        ] == [(d.fault, d.case_name, d.oracle_name) for d in second.detections]

    def test_fault_reproducers_execute_and_pass(self):
        report = run_fault_selfcheck(seed=0, smoke=True)
        for detection in report.detections:
            namespace = {}
            exec(
                compile(detection.regression_test, "<emitted>", "exec"),
                namespace,
            )
            for name, fn in namespace.items():
                if name.startswith("test_"):
                    fn()  # must pass against the healthy tree


@pytest.mark.conformance
class TestDeepSweep:
    """The acceptance gate: the full 50-case sweep with faults and GRL."""

    def test_acceptance_sweep(self):
        report = run_conformance(seed=0, count=50)
        assert report.ok, report.summary()
        assert report.cases == 50
        assert report.mismatches == []
        assert report.fault_report is not None and report.fault_report.ok
