"""Property suite: the native backend equals the compiled batch engine.

One Hypothesis property per seeded generator family (layered DAG, SRM0
sorting-network neuron, τ-WTA inhibition, micro-weight programmable
synapse), each evaluated over the adversarial volley batch — all-∞,
all-ties, 0/∞ checkerboard, MAX_FINITE-pinned and near-sentinel rows —
in both execution strategies (fused NumPy and the row-interpreter
encoding the Numba path runs).  Plus the fault-injection self-check
with the native oracle as the victim: adding a fifth backend must not
cost the harness its teeth.
"""

import os
import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.native import evaluate_batch_native
from repro.native import jit as native_jit
from repro.network.compile_plan import evaluate_batch
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_network
from repro.neuron.weights import build_programmable_neuron, weight_settings
from repro.neuron.wta import build_wta_network
from repro.testing.generators import (
    adversarial_volleys,
    random_layered_network,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def assert_native_matches(network, volleys, params=None):
    """Both native strategies must equal the compiled engine exactly."""
    expected = evaluate_batch(network, list(volleys), params=params)
    got = evaluate_batch_native(network, list(volleys), params=params)
    np.testing.assert_array_equal(got, expected)
    # The row-interpreter path (what Numba compiles); explicit
    # save/restore because Hypothesis forbids function-scoped fixtures.
    previous_flag = native_jit.NUMBA_AVAILABLE
    previous_env = os.environ.get("REPRO_NATIVE")
    native_jit.NUMBA_AVAILABLE = True
    os.environ["REPRO_NATIVE"] = "numba"
    try:
        rows = evaluate_batch_native(network, list(volleys), params=params)
    finally:
        native_jit.NUMBA_AVAILABLE = previous_flag
        if previous_env is None:
            os.environ.pop("REPRO_NATIVE", None)
        else:
            os.environ["REPRO_NATIVE"] = previous_env
    np.testing.assert_array_equal(rows, expected)


class TestFamilies:
    @SETTINGS
    @given(seed=seeds)
    def test_layered_dag(self, seed):
        rng = random.Random(seed)
        network = random_layered_network(
            seed=seed,
            n_inputs=rng.randint(2, 5),
            n_layers=rng.randint(2, 5),
            width=rng.randint(2, 6),
            n_outputs=rng.randint(1, 2),
        )
        volleys = adversarial_volleys(len(network.input_names), rng=rng)
        assert_native_matches(network, volleys)

    @SETTINGS
    @given(seed=seeds)
    def test_srm0(self, seed):
        rng = random.Random(seed)
        arity = rng.randint(2, 3)
        weights = [rng.randint(1, 3) for _ in range(arity)]
        neuron = SRM0Neuron.homogeneous(
            arity,
            weights,
            base_response=ResponseFunction.piecewise_linear(
                amplitude=rng.randint(1, 2),
                rise=rng.randint(1, 2),
                fall=rng.randint(1, 3),
            ),
            threshold=rng.randint(1, max(1, sum(weights))),
        )
        network = build_srm0_network(neuron)
        volleys = adversarial_volleys(len(network.input_names), rng=rng)
        assert_native_matches(network, volleys)

    @SETTINGS
    @given(seed=seeds)
    def test_wta(self, seed):
        rng = random.Random(seed)
        network = build_wta_network(
            rng.randint(3, 6), window=rng.randint(1, 2)
        )
        volleys = adversarial_volleys(len(network.input_names), rng=rng)
        assert_native_matches(network, volleys)

    @SETTINGS
    @given(seed=seeds)
    def test_microweight(self, seed):
        rng = random.Random(seed)
        max_weight = rng.randint(1, 2)
        network, synapses = build_programmable_neuron(
            2,
            base_response=ResponseFunction.piecewise_linear(
                amplitude=1, rise=1, fall=rng.randint(1, 2)
            ),
            max_weight=max_weight,
            threshold=rng.randint(1, 2),
        )
        params = weight_settings(
            synapses, [rng.randint(0, max_weight) for _ in range(2)]
        )
        volleys = adversarial_volleys(len(network.input_names), rng=rng)
        assert_native_matches(network, volleys, params=params)


class TestFaultSelfCheckWithNativeOracle:
    def test_all_five_classes_detected(self):
        from repro.testing.conformance import run_fault_selfcheck
        from repro.testing.faults import (
            NativeKernelReorderOracle,
            fault_classes,
        )
        from repro.testing.oracles import NativeOracle

        report = run_fault_selfcheck(
            0,
            classes=fault_classes(
                NativeOracle, plan_reorder=NativeKernelReorderOracle
            ),
            smoke=True,
            shrink=False,
        )
        assert report.ok
        assert len(report.detections) == 5
        assert all(d.detected for d in report.detections)

    def test_native_reorder_oracle_diverges(self):
        from repro.testing.faults import NativeKernelReorderOracle
        from repro.testing.oracles import NativeOracle

        network = random_layered_network(seed=11, n_layers=3, width=4)
        assert NativeKernelReorderOracle().supports_network(network) is None
        rng = random.Random(11)
        volleys = adversarial_volleys(len(network.input_names), rng=rng)
        healthy = NativeOracle().run(network, list(volleys))
        corrupt = NativeKernelReorderOracle().run(network, list(volleys))
        assert healthy != corrupt
