"""Tests for the backend-oracle registry and the comparison semantics."""

import pytest

from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.compile_plan import MAX_FINITE
from repro.testing.oracles import (
    BackendOracle,
    CompiledBatchOracle,
    EventDrivenOracle,
    GRLCircuitOracle,
    InterpretedOracle,
    default_oracles,
    oracle_names,
    run_backends,
    saturate,
    saturate_outputs,
)


def diamond():
    b = NetworkBuilder("diamond")
    x, y = b.inputs("x", "y")
    b.output("z", b.lt(b.min(x, y), b.max(x, y)))
    return b.build()


def with_constants():
    b = NetworkBuilder("consts")
    x = b.input("x")
    b.output("never", b.min())
    b.output("zero", b.max())
    b.output("echo", b.min(x, b.inc(x, 2)))
    return b.build()


class TestSaturation:
    def test_finite_small_passes_through(self):
        assert saturate(7) == 7
        assert saturate(MAX_FINITE) == MAX_FINITE

    def test_inf_and_beyond_sentinel_collapse(self):
        assert saturate(INF) is INF
        assert saturate(MAX_FINITE + 1) is INF
        assert saturate(2**80) is INF

    def test_outputs_tuple(self):
        assert saturate_outputs([3, MAX_FINITE + 5, INF]) == (3, INF, INF)


class TestRegistry:
    def test_five_stock_backends(self):
        assert oracle_names() == [
            "interpreted",
            "compiled-batch",
            "event-driven",
            "grl-circuit",
            "native",
        ]

    def test_default_oracles_fresh_instances(self):
        a, b = default_oracles(), default_oracles()
        assert [o.name for o in a] == [o.name for o in b]
        assert all(x is not y for x, y in zip(a, b))

    def test_include_grl_toggle(self):
        names = [o.name for o in default_oracles(include_grl=False)]
        assert "grl-circuit" not in names
        assert len(names) == 4


class TestStockOracles:
    VOLLEYS = [(2, 7), (4, 4), (INF, 1), (0, INF), (INF, INF)]
    EXPECTED = [(2,), (INF,), (1,), (0,), (INF,)]

    @pytest.mark.parametrize(
        "oracle",
        [
            InterpretedOracle(),
            CompiledBatchOracle(),
            EventDrivenOracle(),
            GRLCircuitOracle(),
        ],
        ids=lambda o: o.name,
    )
    def test_diamond_agreement(self, oracle):
        net = diamond()
        assert oracle.supports_network(net) is None
        outputs = oracle.run(net, self.VOLLEYS)
        assert [saturate_outputs(o) for o in outputs] == self.EXPECTED

    def test_grl_refuses_constants(self):
        reason = GRLCircuitOracle().supports_network(with_constants())
        assert reason is not None and "zero-source" in reason

    def test_grl_budgets_volley_times(self):
        oracle = GRLCircuitOracle(max_time=32)
        assert oracle.supports_volley((31, INF))
        assert not oracle.supports_volley((33, 0))

    def test_grl_budgets_netlist_size(self):
        b = NetworkBuilder("wide-delay")
        x = b.input("x")
        b.output("y", b.inc(x, 10_000))
        reason = GRLCircuitOracle(max_gates=400).supports_network(b.build())
        assert reason is not None and "too large" in reason


class TestRunBackends:
    def test_canonicalized_agreement_rows(self):
        run = run_backends(diamond(), [(2, 7), (INF, INF)])
        assert set(run.results) == set(oracle_names())
        for rows in run.results.values():
            assert rows == [(2,), (INF,)]

    def test_partial_backend_leaves_none_rows(self):
        run = run_backends(
            diamond(),
            [(2, 7), (MAX_FINITE, 0)],
            oracles=[InterpretedOracle(), GRLCircuitOracle(max_time=32)],
        )
        assert run.results["grl-circuit"] == [(2,), None]
        assert run.results["interpreted"][1] == (0,)
        assert run.names_for(0) == ["interpreted", "grl-circuit"]
        assert run.names_for(1) == ["interpreted"]

    def test_unsupported_network_lands_in_skipped(self):
        run = run_backends(with_constants(), [(4,)])
        assert "grl-circuit" in run.skipped
        assert "zero-source" in run.skipped["grl-circuit"]
        # The other three all agree on the identity constants.
        for name in ("interpreted", "compiled-batch", "event-driven"):
            assert run.results[name] == [(INF, 0, 4)]

    def test_row_count_mismatch_detected(self):
        class Broken(BackendOracle):
            name = "broken"

            def run(self, network, volleys, params=None):
                return []

        with pytest.raises(RuntimeError, match="returned 0 rows"):
            run_backends(diamond(), [(1, 2)], oracles=[Broken()])

    def test_params_threaded(self):
        b = NetworkBuilder("gated")
        x = b.input("x")
        mu = b.param("mu")
        b.output("y", b.gate(x, mu))
        net = b.build()
        enabled = run_backends(net, [(3,)], params={"mu": INF})
        blocked = run_backends(net, [(3,)], params={"mu": 0})
        for rows in enabled.results.values():
            assert rows == [(3,)]
        for rows in blocked.results.values():
            assert rows == [(INF,)]
