"""Tests for the greedy shrinker and regression-test emission."""

import random

import pytest

from repro.core.value import INF, Infinity
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate
from repro.testing.generators import random_layered_network
from repro.testing.oracles import InterpretedOracle, saturate_outputs
from repro.testing.shrink import (
    emit_mutant_test,
    emit_regression_test,
    format_volley,
    minimize_case,
    restrict_to_output,
    shrink_network,
    shrink_volley,
)


class TestShrinkVolley:
    def test_irrelevant_lines_silenced(self):
        # Only line 0 matters: the predicate watches it alone.
        witness = shrink_volley((5, 9, 2), lambda v: v[0] == 5)
        assert witness == (5, INF, INF)

    def test_value_halves_toward_zero(self):
        # Any value >= 4 on line 0 reproduces; greedy halving should
        # settle on the smallest reachable witness.
        witness = shrink_volley(
            (100,), lambda v: not isinstance(v[0], Infinity) and v[0] >= 4
        )
        assert not isinstance(witness[0], Infinity)
        assert 4 <= witness[0] < 100

    def test_terminates_when_everything_reproduces(self):
        # Predicate always true: every line must settle at ∞ (the
        # strictly-monotone move order guarantees termination).
        assert shrink_volley((3, 0, 7), lambda v: True) == (INF, INF, INF)

    def test_noop_when_nothing_simplifies(self):
        original = (4, 2)
        assert shrink_volley(original, lambda v: v == original) == original


class TestNetworkShrinking:
    def layered(self, seed=5):
        return random_layered_network(
            seed=seed, n_inputs=3, n_layers=3, width=4, n_outputs=2
        )

    def test_restrict_to_output_keeps_terminals(self):
        net = self.layered()
        out = net.output_names[0]
        cone = restrict_to_output(net, out)
        assert cone.output_names == [out]
        assert cone.input_names == net.input_names
        assert len(cone.nodes) <= len(net.nodes)

    def test_restrict_to_output_preserves_semantics(self):
        net = self.layered()
        out = net.output_names[0]
        cone = restrict_to_output(net, out)
        volley = (0, 3, INF)
        full = evaluate(net, dict(zip(net.input_names, volley)))
        sliced = evaluate(cone, dict(zip(cone.input_names, volley)))
        assert sliced[out] == full[out]

    def test_restrict_rejects_unknown_output(self):
        with pytest.raises(ValueError, match="no output named"):
            restrict_to_output(self.layered(), "nope")

    def test_shrink_network_reaches_trivial_core(self):
        # Predicate: output 0 is finite on the witness.  Almost any
        # subnetwork keeps that true, so shrinking should collapse the
        # DAG close to a bare wire.
        net = self.layered(seed=7)
        out = net.output_names[0]
        volley = (0, 0, 0)

        def predicate(candidate, v):
            values = evaluate(candidate, dict(zip(candidate.input_names, v)))
            return not isinstance(values[out], Infinity)

        cone = restrict_to_output(net, out)
        if not predicate(cone, volley):
            pytest.skip("seed produced a silent output; predicate vacuous")
        shrunk = shrink_network(cone, volley, predicate)
        assert len(shrunk.nodes) < len(cone.nodes)
        assert predicate(shrunk, volley)
        # 1-minimality spot check: terminals plus at most a couple of
        # compute nodes survive a predicate this weak.
        compute = [n for n in shrunk.nodes if not n.is_terminal]
        assert len(compute) <= 2

    def test_minimize_case_requires_live_witness(self):
        net = self.layered()
        with pytest.raises(ValueError, match="does not hold"):
            minimize_case(net, (0, 0, 0), lambda n, v: False)

    def test_minimize_case_volley_only_mode(self):
        net = self.layered(seed=9)
        original_print = net.fingerprint()
        shrunk_net, witness = minimize_case(
            net, (5, 9, 2), lambda n, v: True, shrink_structure=False
        )
        assert shrunk_net.fingerprint() == original_print
        assert witness == (INF, INF, INF)


class TestEmission:
    def test_format_volley_roundtrips(self):
        rendered = format_volley((0, INF, 17))
        assert eval(rendered, {"INF": INF}) == (0, INF, 17)
        # single-line volleys keep the trailing comma (a real tuple)
        assert eval(format_volley((INF,)), {"INF": INF}) == (INF,)

    def test_regression_test_executes(self):
        b = NetworkBuilder("tiny")
        x, y = b.inputs("x", "y")
        b.output("z", b.min(x, y))
        module = emit_regression_test(
            b.build(), (3, INF), title="tiny_case", provenance="unit test"
        )
        namespace = {}
        exec(compile(module, "<emitted>", "exec"), namespace)
        namespace["test_tiny_case"]()  # healthy tree: backends agree

    def test_regression_test_carries_params(self):
        b = NetworkBuilder("gated")
        b.output("y", b.gate(b.input("x"), b.param("mu")))
        module = emit_regression_test(
            b.build(), (3,), params={"mu": INF}, title="gated_case"
        )
        assert "'mu': INF" in module
        namespace = {}
        exec(compile(module, "<emitted>", "exec"), namespace)
        namespace["test_gated_case"]()

    def test_mutant_test_pins_disagreement(self):
        b = NetworkBuilder("orig")
        x, y = b.inputs("x", "y")
        b.output("z", b.min(x, y))
        original = b.build()

        b2 = NetworkBuilder("mut")
        x, y = b2.inputs("x", "y")
        b2.output("z", b2.max(x, y))
        mutant = b2.build()

        witness = (1, 4)
        healthy = saturate_outputs(
            InterpretedOracle().run(original, [witness])[0]
        )
        broken = saturate_outputs(InterpretedOracle().run(mutant, [witness])[0])
        assert healthy != broken  # sanity: the witness separates them

        module = emit_mutant_test(
            original, mutant, witness, title="swap_killed"
        )
        namespace = {}
        exec(compile(module, "<emitted>", "exec"), namespace)
        namespace["test_swap_killed"]()
