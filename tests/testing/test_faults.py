"""Fault-injection unit tests and ∞-sentinel boundary regressions.

The satellite regressions pin the sentinel boundary under fault
injection: ``inc`` chains that saturate at ``iinfo(int64).max`` must
stay in agreement after canonicalization, jitter that pushes a
near-sentinel time over the edge must land exactly on ``∞``, and the
zero-source min/max identities must survive dropped lines.
"""

import random

import numpy as np
import pytest

from repro.core.value import INF, Infinity
from repro.network.builder import NetworkBuilder
from repro.network.compile_plan import INF_I64, MAX_FINITE
from repro.testing.faults import (
    FAULT_CLASSES,
    NETWORK_MUTATIONS,
    FaultedOracle,
    PlanReorderOracle,
    drop_lines,
    jitter_volley,
    mutate_inc_amount,
    mutate_lt_swap,
    mutate_min_max_swap,
    random_mutant,
    stuck_at_zero,
)
from repro.testing.generators import generate_case
from repro.testing.oracles import (
    CompiledBatchOracle,
    InterpretedOracle,
    run_backends,
    saturate_outputs,
)


# ---------------------------------------------------------------------------
# ∞-sentinel boundary regressions
# ---------------------------------------------------------------------------

class TestSentinelBoundary:
    def test_int64_sentinel_is_numpy_iinfo_max(self):
        assert INF_I64 == np.iinfo(np.int64).max
        assert MAX_FINITE == INF_I64 - 1

    def test_saturating_inc_chain_agrees_across_backends(self):
        # Two huge delays: interpreted computes x + 2*(2**62) exactly
        # (arbitrary precision) while the compiled engine saturates at
        # the sentinel.  Canonicalized, both must read ∞.
        b = NetworkBuilder("saturator")
        x = b.input("x")
        b.output("y", b.inc(b.inc(x, 2**62), 2**62))
        net = b.build()
        run = run_backends(net, [(0,), (5,), (MAX_FINITE,), (INF,)])
        # The gate model budgets out (one flip-flop per inc unit).
        assert "grl-circuit" in run.skipped
        for name in ("interpreted", "compiled-batch", "event-driven"):
            assert run.results[name] == [(INF,), (INF,), (INF,), (INF,)]

    def test_inc_to_exactly_max_finite_stays_finite(self):
        b = NetworkBuilder("edge")
        x = b.input("x")
        b.output("y", b.inc(x, MAX_FINITE - 10))
        net = b.build()
        run = run_backends(net, [(10,), (11,), (INF,)])
        for name in ("interpreted", "compiled-batch", "event-driven"):
            assert run.results[name] == [(MAX_FINITE,), (INF,), (INF,)]

    def test_jitter_pushes_near_sentinel_times_to_inf(self):
        saturated = 0
        for seed in range(64):
            (moved,) = jitter_volley((MAX_FINITE,), jitter=3, seed=seed)
            if isinstance(moved, Infinity):
                saturated += 1
            else:
                assert 0 <= moved <= MAX_FINITE
        assert saturated > 0, "no positive offset in 64 seeds"

    def test_jittered_volleys_stay_conformant(self):
        # A faulted oracle's *output* can be wrong, but the jittered
        # volley itself must still be a legal volley for every backend.
        case = generate_case(4, smoke=True)
        jittered = [
            jitter_volley(v, jitter=2, seed=99) for v in case.volleys
        ]
        run = run_backends(
            case.network, jittered, params=case.params or None
        )
        # The reference backends accept every jittered volley outright.
        for name in ("interpreted", "compiled-batch", "event-driven"):
            assert all(row is not None for row in run.results[name])

    def test_zero_source_identities_survive_line_drops(self):
        b = NetworkBuilder("identities")
        x, y = b.inputs("x", "y")
        b.output("never", b.min())   # identity of min: ∞
        b.output("always", b.max())  # identity of max: 0
        b.output("race", b.lt(x, y))
        net = b.build()
        for dead in ([0], [1], [0, 1]):
            volley = drop_lines((3, 7), dead)
            run = run_backends(net, [volley])
            assert "grl-circuit" in run.skipped  # no gate realization
            for name in ("interpreted", "compiled-batch", "event-driven"):
                out = run.results[name][0]
                assert out[0] is INF and out[1] == 0, (
                    f"{name} broke an identity constant under drop {dead}"
                )


# ---------------------------------------------------------------------------
# Volley faults
# ---------------------------------------------------------------------------

class TestVolleyFaults:
    def test_jitter_deterministic_per_seed(self):
        volley = (0, 5, INF, MAX_FINITE)
        a = jitter_volley(volley, jitter=3, seed=7)
        b = jitter_volley(volley, jitter=3, seed=7)
        assert a == b
        assert jitter_volley(volley, jitter=0, seed=7) == volley

    def test_jitter_offset_independent_of_value(self):
        # Same (seed, line) -> same offset, whatever the spike time:
        # this is what keeps the fault stable under volley shrinking.
        (a,) = jitter_volley((10,), jitter=3, seed=5)
        (b,) = jitter_volley((20,), jitter=3, seed=5)
        assert int(a) - 10 == int(b) - 20

    def test_jitter_preserves_silence_and_clamps(self):
        out = jitter_volley((INF, 0), jitter=3, seed=11)
        assert out[0] is INF
        assert not isinstance(out[1], Infinity) and out[1] >= 0

    def test_jitter_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            jitter_volley((1,), jitter=-1, seed=0)

    def test_drop_and_stuck(self):
        assert drop_lines((1, 2, 3), [1]) == (1, INF, 3)
        assert stuck_at_zero((1, 2, 3), [0, 2]) == (0, 2, 0)


# ---------------------------------------------------------------------------
# Network mutants
# ---------------------------------------------------------------------------

def small_net():
    b = NetworkBuilder("small")
    x, y = b.inputs("x", "y")
    first = b.min(x, y)
    b.output("z", b.lt(b.inc(first, 2), b.max(x, y)))
    return b.build()


class TestNetworkMutants:
    def test_min_max_swap_changes_kind_only(self):
        net = small_net()
        mutant, description = mutate_min_max_swap(net, random.Random(0))
        assert len(mutant.nodes) == len(net.nodes)
        assert mutant.fingerprint() != net.fingerprint()
        assert "->" in description
        kinds = sorted(n.kind for n in mutant.nodes)
        # one min/max flipped into the other; node count per kind changed
        assert kinds != sorted(n.kind for n in net.nodes)

    def test_inc_amount_drift_never_below_one(self):
        b = NetworkBuilder("unit-delay")
        b.output("y", b.inc(b.input("x"), 1))
        net = b.build()
        for seed in range(8):
            mutant, _ = mutate_inc_amount(net, random.Random(seed))
            (inc,) = [n for n in mutant.nodes if n.kind == "inc"]
            assert inc.amount == 2  # 1 can only drift up

    def test_lt_swap_flips_operands(self):
        net = small_net()
        mutant, _ = mutate_lt_swap(net, random.Random(0))
        original = next(n for n in net.nodes if n.kind == "lt")
        swapped = next(n for n in mutant.nodes if n.kind == "lt")
        assert swapped.sources == (original.sources[1], original.sources[0])

    def test_random_mutant_none_on_pure_wire(self):
        b = NetworkBuilder("wire")
        b.output("y", b.input("x"))
        assert random_mutant(b.build(), random.Random(0)) is None

    def test_every_operator_applies_to_generated_cases(self):
        applied = set()
        for seed in range(30):
            net = generate_case(seed, smoke=True).network
            for operator in NETWORK_MUTATIONS:
                if operator(net, random.Random(seed)) is not None:
                    applied.add(operator.__name__)
        assert applied == {op.__name__ for op in NETWORK_MUTATIONS}


# ---------------------------------------------------------------------------
# Faulted oracles
# ---------------------------------------------------------------------------

class TestFaultedOracle:
    def test_impersonates_victim_with_labeled_name(self):
        faulted = FaultedOracle(CompiledBatchOracle(), label="noop")
        assert faulted.name == "compiled-batch!noop"
        net = small_net()
        healthy = CompiledBatchOracle().run(net, [(1, 4)])
        assert faulted.run(net, [(1, 4)]) == healthy

    def test_network_transform_feeds_support_checks(self):
        net = small_net()
        mutant, _ = mutate_min_max_swap(net, random.Random(0))
        faulted = FaultedOracle(
            InterpretedOracle(),
            label="mutant",
            network_transform=lambda _net: mutant,
        )
        observed = saturate_outputs(faulted.run(net, [(0, 3)])[0])
        direct = saturate_outputs(InterpretedOracle().run(mutant, [(0, 3)])[0])
        assert observed == direct


class TestPlanReorder:
    def dependent_net(self):
        b = NetworkBuilder("chain")
        b.output("y", b.inc(b.inc(b.input("x"), 1), 1))
        return b.build()

    def test_refuses_networks_without_dependent_pair(self):
        b = NetworkBuilder("flat")
        b.output("y", b.inc(b.input("x"), 3))
        reason = PlanReorderOracle().supports_network(b.build())
        assert reason is not None and "no dependent" in reason

    def test_reorder_corrupts_dependent_chain(self):
        net = self.dependent_net()
        oracle = PlanReorderOracle()
        assert oracle.supports_network(net) is None
        broken = oracle.run(net, [(5,)])[0]
        healthy = CompiledBatchOracle().run(net, [(5,)])[0]
        assert broken != healthy  # the consumer read zeros, not x+1

    def test_reorder_never_poisons_the_plan_cache(self):
        net = self.dependent_net()
        PlanReorderOracle().run(net, [(5,)])
        assert CompiledBatchOracle().run(net, [(5,)])[0] == (7,)


class TestFaultClasses:
    def test_menu_has_at_least_three_classes(self):
        assert len(FAULT_CLASSES) >= 3
        assert len({f.name for f in FAULT_CLASSES}) == len(FAULT_CLASSES)
        for fault in FAULT_CLASSES:
            assert fault.description

    def test_builders_return_oracle_or_none(self):
        case = generate_case(0, smoke=True)
        for fault in FAULT_CLASSES:
            built = fault.build(case, random.Random(1))
            assert built is None or hasattr(built, "run")
