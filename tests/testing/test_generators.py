"""Tests for the seeded conformance-case generators."""

import pytest

from repro.core.value import INF, Infinity
from repro.network.compile_plan import MAX_FINITE
from repro.network.validate import check_feedforward
from repro.testing.generators import (
    FAMILIES,
    adversarial_volleys,
    generate_case,
    random_layered_network,
)

import random


class TestLayeredNetworks:
    def test_deterministic_in_seed(self):
        a = random_layered_network(seed=42)
        b = random_layered_network(seed=42)
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_seeds_distinct_structures(self):
        prints = {random_layered_network(seed=s).fingerprint() for s in range(8)}
        assert len(prints) > 1

    def test_depth_scales_with_layers(self):
        shallow = random_layered_network(seed=3, n_layers=1, width=4)
        deep = random_layered_network(seed=3, n_layers=6, width=4)
        assert deep.depth() >= shallow.depth()
        assert deep.depth() >= 6  # each layer anchors on the previous one

    def test_feedforward_and_sized(self):
        net = random_layered_network(
            seed=9, n_inputs=3, n_layers=4, width=5, n_outputs=2
        )
        assert check_feedforward(net)
        assert len(net.input_names) == 3
        assert len(net.output_names) == 2

    def test_can_emit_zero_source_constants(self):
        found = False
        for seed in range(40):
            net = random_layered_network(seed=seed, p_empty_const=0.5)
            if any(
                n.kind in ("min", "max") and not n.sources for n in net.nodes
            ):
                found = True
                break
        assert found, "no identity-constant node in 40 draws at p=0.5"

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="at least one"):
            random_layered_network(seed=0, n_inputs=0)
        with pytest.raises(ValueError, match="unknown operations"):
            random_layered_network(seed=0, operations=("inc", "xor"))


class TestAdversarialVolleys:
    def test_contains_the_sharp_edges(self):
        rng = random.Random(0)
        volleys = adversarial_volleys(4, rng=rng)
        assert (0, 0, 0, 0) in volleys
        assert (INF, INF, INF, INF) in volleys
        assert (MAX_FINITE,) * 4 in volleys
        # the 0/∞ checkerboard
        assert (0, INF, 0, INF) in volleys

    def test_all_values_encodable(self):
        rng = random.Random(1)
        for volley in adversarial_volleys(5, rng=rng):
            for value in volley:
                assert isinstance(value, Infinity) or 0 <= value <= MAX_FINITE

    def test_needs_a_line(self):
        with pytest.raises(ValueError, match="at least one line"):
            adversarial_volleys(0, rng=random.Random(0))


class TestGenerateCase:
    def test_deterministic(self):
        a, b = generate_case(11), generate_case(11)
        assert a.family == b.family
        assert a.network.fingerprint() == b.network.fingerprint()
        assert a.volleys == b.volleys
        assert a.params == b.params

    def test_every_family_reachable(self):
        seen = {generate_case(s).family for s in range(60)}
        assert seen == {name for name, _ in FAMILIES}

    def test_volley_width_matches_network(self):
        for seed in range(10):
            case = generate_case(seed)
            for volley in case.volleys:
                assert len(volley) == len(case.network.input_names)

    def test_microweight_cases_bind_every_param(self):
        for seed in range(80):
            case = generate_case(seed)
            if case.family == "microweight":
                assert set(case.params) == set(case.network.param_names)
                return
        pytest.fail("no microweight case in 80 seeds")

    def test_smoke_cases_are_smaller(self):
        big = sum(len(generate_case(s).network.nodes) for s in range(12))
        small = sum(
            len(generate_case(s, smoke=True).network.nodes) for s in range(12)
        )
        assert small <= big


class TestKernelFamily:
    def test_registered_in_families(self):
        assert "kernels" in {name for name, _ in FAMILIES}

    def test_random_kernel_network_is_deterministic(self):
        from repro.testing.generators import random_kernel_network

        a = random_kernel_network(seed=21)
        b = random_kernel_network(seed=21)
        assert a.fingerprint() == b.fingerprint()
        assert a.input_names == b.input_names

    def test_family_pin_overrides_the_mix(self):
        for seed in range(8):
            case = generate_case(seed, family="kernels", smoke=True)
            assert case.family == "kernels"
            assert case.name == f"kernels[seed={seed}]"
            assert len(case.volleys[0]) == len(case.network.input_names)

    def test_family_pin_rejects_unknown_names(self):
        import pytest

        with pytest.raises(ValueError, match="unknown family"):
            generate_case(0, family="bogus")

    def test_pinned_draw_matches_mixed_draw(self):
        """A seed whose mixed draw lands on 'kernels' yields the same
        case when pinned — the rng stream stays aligned."""
        seed = next(
            s for s in range(200) if generate_case(s, smoke=True).family == "kernels"
        )
        mixed = generate_case(seed, smoke=True)
        pinned = generate_case(seed, smoke=True, family="kernels")
        assert mixed.network.fingerprint() == pinned.network.fingerprint()
        assert mixed.volleys == pinned.volleys
