"""The Program lowering: schedule, fingerprint, memoization, round trip."""

import pytest

from repro.core.value import INF
from repro.ir import (
    CONST_IDENTITY,
    Program,
    classify,
    ensure_program,
    lower,
    same_structure,
)
from repro.network import Network, NetworkBuilder, NetworkError, Node


def diamond() -> Network:
    b = NetworkBuilder("diamond")
    x = b.input("x")
    y = b.input("y")
    lo = b.min(x, y)
    hi = b.max(x, y)
    b.output("z", b.lt(lo, hi))
    return b.build()


class TestLowering:
    def test_shares_node_table(self):
        net = diamond()
        program = lower(net)
        assert program.nodes is net.nodes
        assert program.outputs == net.outputs

    def test_fingerprint_matches_network(self):
        net = diamond()
        assert lower(net).fingerprint() == net.fingerprint()

    def test_memoized_per_network_object(self):
        net = diamond()
        assert lower(net) is lower(net)

    def test_ensure_program_is_identity_on_programs(self):
        program = lower(diamond())
        assert ensure_program(program) is program

    def test_ensure_program_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_program("not a network")

    def test_levels_are_longest_path(self):
        program = lower(diamond())
        # inputs at level 0, min/max at 1, lt at 2
        assert program.levels == (0, 0, 1, 1, 2)
        assert program.schedule == ((0, 1), (2, 3), (4,))
        assert program.depth == 2

    def test_terminal_and_output_maps(self):
        program = lower(diamond())
        assert program.input_names == ["x", "y"]
        assert program.param_names == []
        assert program.output_names == ["z"]
        assert program.size == 3  # min, max, lt

    def test_dense_ids_required(self):
        nodes = (Node(0, "input", name="x"), Node(2, "inc", sources=(0,)))
        with pytest.raises(NetworkError):
            Program(nodes, {})

    def test_round_trip_preserves_fingerprint(self):
        net = diamond()
        program = lower(net)
        again = program.to_network()
        assert again.fingerprint() == net.fingerprint()
        assert same_structure(program, lower(again))

    def test_provenance_defaults_to_identity(self):
        program = lower(diamond())
        assert program.provenance == {i: (i,) for i in range(5)}

    def test_consumers(self):
        program = lower(diamond())
        assert program.consumers()[0] == [2, 3]  # x feeds min and max
        assert program.consumers()[4] == []


class TestConstants:
    def test_classify_zero_source_min_max(self):
        assert classify(Node(0, "min")) == "const-inf"
        assert classify(Node(0, "max")) == "const-zero"
        assert classify(Node(0, "min", sources=())) == "const-inf"

    def test_classify_ordinary_nodes(self):
        assert classify(Node(0, "input", name="x")) == "input"
        assert classify(Node(1, "min", sources=(0,))) == "min"
        assert classify(Node(1, "max", sources=(0,))) == "max"

    def test_const_identity_values(self):
        assert CONST_IDENTITY["const-inf"] is INF
        assert CONST_IDENTITY["const-zero"] == 0

    def test_const_ids_collected(self):
        b = NetworkBuilder("consts")
        x = b.input("x")
        b.output("never", b.min())
        b.output("now", b.max())
        b.output("wire", b.max(x))
        program = lower(b.build())
        kinds = {classify(program.nodes[i]) for i in program.const_ids}
        assert kinds == {"const-inf", "const-zero"}
        assert len(program.const_ids) == 2
