"""The pass pipeline: per-pass rewrites, idempotence, provenance."""

import pytest

from repro.core.value import INF, Infinity
from repro.ir import (
    DEFAULT_PIPELINE,
    PASSES,
    PassManager,
    lower,
    optimize_program,
    pass_names,
    same_structure,
)
from repro.network import NetworkBuilder, evaluate_all_interpreted
from repro.testing import generate_case


def _outputs(program, inputs, params=None):
    values = evaluate_all_interpreted(program, inputs, params=params)
    return {name: values[nid] for name, nid in program.outputs.items()}


class TestIndividualPasses:
    def test_cse_alone_merges_but_keeps_dead_nodes(self):
        b = NetworkBuilder("twins")
        x = b.input("x")
        b.inc(x, 9)  # dead from the start: only dce may remove it
        b.output("a", b.inc(x, 2))
        b.output("b", b.inc(x, 2))
        program, _ = optimize_program(b.build(), passes=["cse"])
        assert program.outputs["a"] == program.outputs["b"]
        amounts = sorted(n.amount for n in program.nodes if n.kind == "inc")
        assert amounts == [2, 9]  # duplicate merged, dead node kept

    def test_dce_alone_strips_unobserved_nodes(self):
        b = NetworkBuilder("dead")
        x = b.input("x")
        b.inc(x, 5)  # never observed
        b.output("y", b.inc(x, 1))
        program, report = optimize_program(b.build(), passes=["dce"])
        assert program.size == 1
        assert report.removed == 1

    def test_canonicalize_alone_folds_lt_x_x(self):
        b = NetworkBuilder("race")
        x = b.input("x")
        b.output("y", b.lt(x, x))
        program, _ = optimize_program(b.build(), passes=["canonicalize"])
        assert isinstance(_outputs(program, {"x": 3})["y"], Infinity)

    def test_fuse_inc_alone_collapses_chains(self):
        b = NetworkBuilder("chain")
        x = b.input("x")
        b.output("y", b.inc(b.inc(b.inc(x, 1), 2), 3))
        program, _ = optimize_program(b.build(), passes=["fuse-inc", "dce"])
        assert program.size == 1
        assert program.nodes[1].amount == 6

    def test_fold_consts_folds_const_zero_sources(self):
        b = NetworkBuilder("folds")
        x = b.input("x")
        zero = b.max()  # the constant 0
        b.output("m", b.min(x, zero))   # min(x, 0) = 0
        b.output("r", b.lt(x, zero))    # lt(x, 0) never fires
        program, _ = optimize_program(b.build())
        out = _outputs(program, {"x": 4})
        assert out["m"] == 0
        assert isinstance(out["r"], Infinity)

    def test_param_specialization_requires_binding(self):
        b = NetworkBuilder("gated")
        x = b.input("x")
        mu = b.param("mu")
        b.output("y", b.max(x, mu))
        enabled, _ = optimize_program(b.build(), params={"mu": INF})
        # max with a known-INF source is never.
        assert isinstance(
            _outputs(enabled, {"x": 2}, params={"mu": INF})["y"], Infinity
        )
        passing, _ = optimize_program(b.build(), params={"mu": 0})
        assert _outputs(passing, {"x": 2}, params={"mu": 0})["y"] == 2

    def test_registry_and_default_pipeline_agree(self):
        assert pass_names() == list(DEFAULT_PIPELINE)
        assert set(DEFAULT_PIPELINE) == set(PASSES)

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            PassManager(["cse", "loop-unroll"])

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError):
            PassManager(max_iterations=0)


class TestReport:
    def test_report_accounting(self):
        b = NetworkBuilder("twins")
        x = b.input("x")
        b.output("a", b.inc(x, 2))
        b.output("b", b.inc(x, 2))
        program, report = optimize_program(b.build())
        assert report.before_nodes - report.after_nodes == report.removed
        assert report.removed == 1
        assert report.iterations >= 1
        assert sum(report.by_pass().values()) == report.removed
        assert "pipeline:" in report.describe()
        assert str(report) == report.describe()


class TestIdempotence:
    """optimize(optimize(p)) == optimize(p), over seeded random cases."""

    @pytest.mark.parametrize("seed", range(12))
    def test_pipeline_is_idempotent(self, seed):
        case = generate_case(seed, smoke=True)
        once, _ = optimize_program(case.network)
        twice, report = optimize_program(once)
        assert same_structure(once, twice)
        assert report.removed == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_single_passes_idempotent_on_own_output(self, seed):
        case = generate_case(seed, smoke=True)
        for name in pass_names():
            once, _ = optimize_program(case.network, passes=[name])
            twice, _ = optimize_program(once, passes=[name])
            assert same_structure(once, twice), name


class TestProvenance:
    """Every provenance root fires exactly when its optimized node does."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fire_time_invariant(self, seed):
        case = generate_case(seed, smoke=True)
        program, _ = optimize_program(case.network)
        params = case.params or None
        names = case.network.input_names
        for volley in case.volleys[:4]:
            inputs = dict(zip(names, volley))
            original = evaluate_all_interpreted(
                case.network, inputs, params=params
            )
            optimized = evaluate_all_interpreted(program, inputs, params=params)
            for node_id, roots in program.provenance.items():
                for root in roots:
                    assert original[root] == optimized[node_id]

    def test_semantics_preserved_end_to_end(self):
        for seed in range(8):
            case = generate_case(seed, smoke=True)
            program, _ = optimize_program(case.network)
            params = case.params or None
            names = case.network.input_names
            for volley in case.volleys[:4]:
                inputs = dict(zip(names, volley))
                assert _outputs(lower(case.network), inputs, params) == _outputs(
                    program, inputs, params
                )
