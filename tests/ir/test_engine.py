"""The Engine protocol and the shared optimized-program backend run."""

import pytest

from repro.ir import lower, optimize_program
from repro.network import NetworkBuilder
from repro.obs import project_events, to_jsonl
from repro.testing import (
    CompiledBatchOracle,
    Engine,
    EventDrivenOracle,
    GRLCircuitOracle,
    InterpretedOracle,
    default_oracles,
    generate_case,
    run_backends,
)
from repro.testing.conformance import find_disagreements


class TestEngineProtocol:
    def test_all_stock_oracles_satisfy_engine(self):
        for oracle in default_oracles():
            assert isinstance(oracle, Engine)

    def test_oracles_accept_lowered_programs(self):
        case = generate_case(3, smoke=True)
        program = lower(case.network)
        params = case.params or None
        volleys = list(case.volleys[:2])
        for oracle in (InterpretedOracle(), CompiledBatchOracle(), EventDrivenOracle()):
            via_network = oracle.run(case.network, volleys, params=params)
            via_program = oracle.run(program, volleys, params=params)
            assert via_network == via_program

    def test_grl_skip_reason_comes_from_ir_const_ids(self):
        b = NetworkBuilder("consts")
        x = b.input("x")
        b.output("y", b.max(x, b.min()))
        reason = GRLCircuitOracle().supports_network(b.build())
        assert reason is not None and "zero-source" in reason


class TestOptimizedRun:
    @pytest.mark.parametrize("seed", range(8))
    def test_backends_agree_with_and_without_optimization(self, seed):
        case = generate_case(seed, smoke=True)
        params = case.params or None
        plain = run_backends(case.network, case.volleys, params=params)
        tuned = run_backends(
            case.network, case.volleys, params=params, optimize=True
        )
        assert not find_disagreements(plain)
        assert not find_disagreements(tuned)
        assert tuned.program is not None and plain.program is None
        # Optimization must not change any backend's canonical outputs.
        for name, rows in plain.results.items():
            if name in tuned.results:
                for before, after in zip(rows, tuned.results[name]):
                    if before is not None and after is not None:
                        assert before == after

    def test_shared_program_is_pass_fixpoint(self):
        case = generate_case(1, smoke=True)
        run = run_backends(
            case.network, case.volleys[:1],
            params=case.params or None, optimize=True,
        )
        again, report = optimize_program(run.program)
        assert report.removed == 0


class TestOptimizedTraces:
    def _traceable(self, program):
        return [
            oracle for oracle in default_oracles()
            if oracle.supports_network(program) is None
        ]

    @pytest.mark.parametrize("seed", range(6))
    def test_traces_byte_identical_on_optimized_program(self, seed):
        case = generate_case(seed, smoke=True)
        program, _ = optimize_program(case.network)
        params = case.params or None
        volley = case.volleys[0]
        documents = {}
        for oracle in self._traceable(program):
            trace = oracle.trace(program, volley, params=params)
            if trace is not None:
                documents[oracle.name] = to_jsonl(trace, program)
        assert len(documents) >= 2
        assert len(set(documents.values())) == 1

    def test_projection_recovers_original_fire_times(self):
        from repro.network import evaluate_all_interpreted

        case = generate_case(2, smoke=True)
        program, _ = optimize_program(case.network)
        params = case.params or None
        volley = case.volleys[0]
        inputs = dict(zip(case.network.input_names, volley))
        trace = InterpretedOracle().trace(program, volley, params=params)
        projected = project_events(trace, program.provenance)
        original = evaluate_all_interpreted(case.network, inputs, params=params)
        for event in projected:
            assert original[event.node_id] == event.time
