"""The bounded compiled-plan cache: limits, evictions, IR-keyed sharing."""

import pytest

from repro.ir import lower, optimize_program
from repro.network import (
    NetworkBuilder,
    clear_plan_cache,
    compile_plan,
    plan_cache_info,
    set_plan_cache_limit,
)


def chain(tag: str, length: int):
    b = NetworkBuilder(f"chain-{tag}")
    x = b.input("x")
    for _ in range(length):
        x = b.inc(x, 1)
    b.output("y", x)
    return b.build()


@pytest.fixture
def bounded_cache():
    previous = set_plan_cache_limit(2)
    clear_plan_cache()
    try:
        yield
    finally:
        set_plan_cache_limit(previous)
        clear_plan_cache()


class TestCacheLimit:
    def test_limit_round_trips(self):
        previous = set_plan_cache_limit(7)
        try:
            assert plan_cache_info()["limit"] == 7
            assert set_plan_cache_limit(previous) == 7
        finally:
            set_plan_cache_limit(previous)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            set_plan_cache_limit(0)

    def test_overflow_evicts_lru(self, bounded_cache):
        before = plan_cache_info()["evictions"]
        nets = [chain(str(i), i + 1) for i in range(3)]
        for net in nets:
            compile_plan(net)
        info = plan_cache_info()
        assert info["structural"] == 2
        assert info["evictions"] == before + 1

    def test_shrinking_limit_trims_immediately(self, bounded_cache):
        compile_plan(chain("a", 1))
        compile_plan(chain("b", 2))
        before = plan_cache_info()["evictions"]
        set_plan_cache_limit(1)
        info = plan_cache_info()
        assert info["structural"] == 1
        assert info["evictions"] == before + 1
        set_plan_cache_limit(2)

    def test_evicted_plan_recompiles_as_miss(self, bounded_cache):
        first = chain("a", 1)
        compile_plan(first)
        compile_plan(chain("b", 2))
        compile_plan(chain("c", 3))  # evicts first's entry
        misses = plan_cache_info()["misses"]
        # Fresh object with first's structure: structural entry is gone.
        compile_plan(chain("a", 1))
        assert plan_cache_info()["misses"] == misses + 1


class TestIRKeyedSharing:
    def test_network_and_lowering_share_one_plan(self, bounded_cache):
        net = chain("shared", 2)
        plan = compile_plan(net)
        hits = plan_cache_info()["hits_structural"]
        assert compile_plan(lower(net)) is plan
        assert plan_cache_info()["hits_structural"] == hits + 1

    def test_optimized_program_keys_its_own_entry(self, bounded_cache):
        b = NetworkBuilder("twins")
        x = b.input("x")
        b.output("a", b.inc(x, 2))
        b.output("b", b.inc(x, 2))
        net = b.build()
        program, _ = optimize_program(net)
        assert program.fingerprint() != net.fingerprint()
        compile_plan(net)
        misses = plan_cache_info()["misses"]
        compile_plan(program)
        assert plan_cache_info()["misses"] == misses + 1

    def test_optimization_runs_once_and_plan_is_shared(self, bounded_cache):
        net = chain("once", 3)
        program, _ = optimize_program(net)
        plan = compile_plan(program)
        hits = plan_cache_info()["hits_identity"]
        assert compile_plan(program) is plan
        assert plan_cache_info()["hits_identity"] == hits + 1
