"""Tests for adaptive thresholds (homeostasis) in WTA training."""

import random

import numpy as np

from repro.coding.volley import Volley
from repro.learning.stdp import Homeostasis, STDPRule, STDPTrainer
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.step(amplitude=1, width=8)


def make_column(n_neurons=3, n_inputs=8, threshold=6, seed=0):
    rng = random.Random(seed)
    weights = np.array(
        [[rng.randint(1, 3) for _ in range(n_inputs)] for _ in range(n_neurons)]
    )
    return Column(weights, threshold=threshold, base_response=BASE)


class TestPerNeuronThresholds:
    def test_column_accepts_threshold_vector(self):
        col = Column(
            np.ones((2, 4), dtype=np.int64),
            threshold=[2, 5],
            base_response=BASE,
        )
        assert col.thresholds == [2, 5]
        assert col.neurons[0].threshold == 2
        assert col.neurons[1].threshold == 5

    def test_threshold_vector_length_checked(self):
        import pytest

        with pytest.raises(ValueError, match="one threshold per neuron"):
            Column(
                np.ones((2, 4), dtype=np.int64),
                threshold=[2],
                base_response=BASE,
            )

    def test_set_threshold_changes_excitability(self):
        col = make_column()
        easy = col.excitation((0,) * 8)
        col.set_threshold(0, 10**6)
        hard = col.excitation((0,) * 8)
        from repro.core.value import INF

        assert hard[0] is INF
        assert hard[1:] == easy[1:]

    def test_set_threshold_validated(self):
        import pytest

        col = make_column()
        with pytest.raises(ValueError):
            col.set_threshold(0, 0)


class TestHomeostasis:
    def test_winner_threshold_rises(self):
        col = make_column()
        homeostasis = Homeostasis(col, step=3, decay=1)
        base = col.thresholds[1]
        homeostasis.on_win(col, winner=1)
        assert col.thresholds[1] == base + 3

    def test_losers_decay_toward_base(self):
        col = make_column()
        homeostasis = Homeostasis(col, step=4, decay=1)
        homeostasis.on_win(col, winner=0)  # neuron 0 at base + 4
        homeostasis.on_win(col, winner=1)  # neuron 0 decays by 1
        assert col.thresholds[0] == homeostasis.base[0] + 3

    def test_never_decays_below_base(self):
        col = make_column()
        homeostasis = Homeostasis(col, step=1, decay=5)
        homeostasis.on_win(col, winner=0)
        for _ in range(10):
            homeostasis.on_win(col, winner=1)
        assert col.thresholds[0] == homeostasis.base[0]

    def test_reset_restores_base(self):
        col = make_column()
        homeostasis = Homeostasis(col, step=5, decay=0)
        for _ in range(4):
            homeostasis.on_win(col, winner=2)
        homeostasis.reset(col)
        assert col.thresholds == homeostasis.base

    def test_validation(self):
        import pytest

        col = make_column()
        with pytest.raises(ValueError):
            Homeostasis(col, step=-1)


class TestDecorrelation:
    def test_homeostasis_spreads_wins(self):
        # Two identical patterns presented alternately: without
        # homeostasis a single neuron tends to win everything; with it,
        # wins spread over more neurons.
        rng = random.Random(7)
        patterns = [
            Volley([rng.randint(0, 3) for _ in range(8)]) for _ in range(2)
        ]
        volleys = [patterns[i % 2] for i in range(40)]

        def win_spread(use_homeostasis):
            col = make_column(n_neurons=4, seed=7)
            homeostasis = (
                Homeostasis(col, step=4, decay=1) if use_homeostasis else None
            )
            trainer = STDPTrainer(
                col,
                STDPRule(a_plus=2, a_minus=1),
                rng=random.Random(8),
                homeostasis=homeostasis,
            )
            log = trainer.train(volleys, epochs=1, shuffle=False)
            return len({step.winner for step in log if step.winner is not None})

        assert win_spread(True) >= win_spread(False)
