"""Tests for SpikeProp-style supervised latency learning."""

import random

import pytest

from repro.core.value import INF, Infinity
from repro.learning.spikeprop import (
    LatencyNeuron,
    LatencyRegressor,
    SpikePropConfig,
)
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.piecewise_linear(amplitude=3, rise=2, fall=6)


class TestLatencyNeuron:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyNeuron(0, threshold=1)

    def test_error_sign(self):
        neuron = LatencyNeuron(2, threshold=4, base_response=BASE)
        t = neuron.fire_time((0, 0))
        assert not isinstance(t, Infinity)
        assert neuron.error((0, 0), int(t) + 2) == -2  # fires early
        assert neuron.error((0, 0), int(t)) == 0

    def test_error_none_on_silence_mismatch(self):
        neuron = LatencyNeuron(2, threshold=10**6, base_response=BASE)
        assert neuron.error((0, 0), 3) is None

    def test_late_neuron_potentiates(self):
        neuron = LatencyNeuron(2, threshold=10**6, base_response=BASE)
        before = neuron.weights.copy()
        assert not neuron.train_one((0, 0), 2)
        assert (neuron.weights >= before).all()
        assert (neuron.weights > before).any()

    def test_early_neuron_depresses(self):
        neuron = LatencyNeuron(2, threshold=1, base_response=BASE)
        actual = neuron.fire_time((0, 0))
        target = int(actual) + 4
        before = neuron.weights.copy()
        assert not neuron.train_one((0, 0), target)
        assert (neuron.weights <= before).all()

    def test_silent_target_depresses_firing(self):
        neuron = LatencyNeuron(2, threshold=1, base_response=BASE)
        before = neuron.weights.copy()
        assert not neuron.train_one((0, 0), INF)
        assert (neuron.weights < before).any()

    def test_silent_target_on_silent_neuron_is_correct(self):
        neuron = LatencyNeuron(2, threshold=10**6, base_response=BASE)
        assert neuron.train_one((0, 0), INF)

    def test_within_tolerance_no_update(self):
        config = SpikePropConfig(tolerance=2)
        neuron = LatencyNeuron(2, threshold=4, base_response=BASE, config=config)
        t = int(neuron.fire_time((0, 0)))
        before = neuron.weights.copy()
        assert neuron.train_one((0, 0), t + 2)
        assert (neuron.weights == before).all()

    def test_learns_target_latency(self):
        rng = random.Random(3)
        volleys = [
            tuple(rng.randint(0, 3) for _ in range(8)) for _ in range(6)
        ]
        neuron = LatencyNeuron(8, threshold=12, base_response=BASE,
                               config=SpikePropConfig(tolerance=1),
                               rng=random.Random(3))
        targets = [min(v) + 3 for v in volleys]
        before = neuron.mean_absolute_error(volleys, targets)
        neuron.train(volleys, targets, epochs=40, rng=random.Random(4))
        after = neuron.mean_absolute_error(volleys, targets)
        assert after <= before
        assert after <= 1.5

    def test_target_count_validated(self):
        neuron = LatencyNeuron(2, threshold=4)
        with pytest.raises(ValueError):
            neuron.train([(0, 0)], [1, 2])

    def test_weights_clamped(self):
        config = SpikePropConfig(w_min=0, w_max=3)
        neuron = LatencyNeuron(2, threshold=10**6, base_response=BASE, config=config)
        for _ in range(20):
            neuron.train_one((0, 0), 1)
        assert (neuron.weights <= 3).all()


class TestLatencyRegressor:
    def test_forward_shape(self):
        bank = LatencyRegressor(4, 3, threshold=6, base_response=BASE)
        out = bank.forward((0, 1, 0, 2))
        assert len(out) == 3

    def test_trains_toward_target_volley(self):
        rng = random.Random(5)
        volleys = [
            tuple(rng.randint(0, 3) for _ in range(6)) for _ in range(4)
        ]
        # Target: output j fires at first-input + j + 2.
        targets = [
            tuple(min(v) + j + 2 for j in range(2)) for v in volleys
        ]
        bank = LatencyRegressor(6, 2, threshold=10, base_response=BASE, seed=5)
        history = bank.train(volleys, targets, epochs=50, rng=random.Random(6))
        assert history[-1] >= history[0]
        assert history[-1] >= 0.5

    def test_validation(self):
        bank = LatencyRegressor(2, 1, threshold=4)
        with pytest.raises(ValueError):
            bank.train([(0, 0)], [])
