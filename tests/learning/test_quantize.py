"""Tests for weight quantization (the 4-bit sufficiency claim)."""

import random

import numpy as np
import pytest

from repro.coding.volley import Volley
from repro.learning.quantize import compare_quantized, quantize_weights


class TestQuantizeWeights:
    def test_full_scale_mapping(self):
        w = np.array([[0.0, 0.5, 1.0]])
        q = quantize_weights(w, bits=3)
        assert q.tolist() == [[0, 4, 7]]

    def test_one_bit(self):
        w = np.array([[0.2, 0.8]])
        q = quantize_weights(w, bits=1)
        assert q.tolist() == [[0, 1]]

    def test_explicit_w_max(self):
        w = np.array([[0.5]])
        q = quantize_weights(w, bits=3, w_max=1.0)
        assert q.tolist() == [[4]]

    def test_negative_weights_clamped(self):
        q = quantize_weights(np.array([[-1.0, 1.0]]), bits=2)
        assert q.tolist() == [[0, 3]]

    def test_all_zero_matrix(self):
        q = quantize_weights(np.zeros((2, 2)), bits=4)
        assert (q == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_weights(np.ones((1, 1)), bits=0)

    def test_dtype_is_integer(self):
        q = quantize_weights(np.array([[0.3]]), bits=4)
        assert q.dtype == np.int64


class TestCompareQuantized:
    def make_inputs(self, n_lines, count, seed):
        rng = random.Random(seed)
        return [
            Volley([rng.randint(0, 7) for _ in range(n_lines)])
            for _ in range(count)
        ]

    def make_reference(self, n_neurons, n_lines, seed):
        rng = np.random.default_rng(seed)
        return rng.random((n_neurons, n_lines))

    def test_report_fields(self):
        ref = self.make_reference(3, 8, 0)
        volleys = self.make_inputs(8, 10, 0)
        report = compare_quantized(ref, volleys, bits=4, threshold_fraction=0.4)
        assert report.volleys_tested == 10
        assert 0.0 <= report.output_fidelity <= 1.0
        assert 0.0 <= report.winner_agreement <= 1.0

    def test_more_bits_never_worse_on_winner(self):
        # The Pfeil-style sweep: agreement with the reference is (weakly)
        # monotone in resolution on this workload.
        ref = self.make_reference(4, 12, 1)
        volleys = self.make_inputs(12, 25, 1)
        agreement = {
            bits: compare_quantized(
                ref, volleys, bits=bits, threshold_fraction=0.4
            ).winner_agreement
            for bits in (1, 4, 8)
        }
        assert agreement[8] >= agreement[1]
        assert agreement[4] >= agreement[1] - 0.2

    def test_eight_bits_is_self_consistent(self):
        ref = self.make_reference(3, 8, 2)
        volleys = self.make_inputs(8, 15, 2)
        report = compare_quantized(ref, volleys, bits=8, threshold_fraction=0.4)
        assert report.winner_agreement == 1.0
        assert report.output_fidelity == 1.0
        assert report.mean_time_error == 0.0

    def test_threshold_fraction_validated(self):
        with pytest.raises(ValueError):
            compare_quantized(
                np.ones((1, 2)), [], bits=4, threshold_fraction=0.0
            )
