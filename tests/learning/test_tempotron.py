"""Tests for the tempotron rule."""

import random

import pytest

from repro.apps.datasets import two_class_latency
from repro.core.value import INF, Infinity
from repro.learning.tempotron import MultiClassTempotron, Tempotron
from repro.neuron.response import ResponseFunction


class TestTempotron:
    def test_validation(self):
        with pytest.raises(ValueError):
            Tempotron(0, threshold=1)

    def test_predict_consistent_with_fire_time(self):
        t = Tempotron(4, threshold=8)
        volley = (0, 0, 0, 0)
        assert t.predict(volley) == (not isinstance(t.fire_time(volley), Infinity))

    def test_miss_potentiates(self):
        t = Tempotron(2, threshold=10**6)  # can never fire initially
        before = t.weights.copy()
        correct = t.train_one((0, 0), True)
        assert not correct
        assert (t.weights >= before).all()
        assert (t.weights > before).any()

    def test_false_alarm_depresses(self):
        t = Tempotron(2, threshold=1)
        before = t.weights.copy()
        assert t.predict((0, 0))
        correct = t.train_one((0, 0), False)
        assert not correct
        assert (t.weights <= before).all()
        assert (t.weights < before).any()

    def test_correct_classification_no_update(self):
        t = Tempotron(2, threshold=1)
        before = t.weights.copy()
        assert t.train_one((0, 0), True)
        assert (t.weights == before).all()

    def test_silent_volley_unlearnable(self):
        t = Tempotron(2, threshold=5)
        assert not t.train_one((INF, INF), True)

    def test_learns_separable_problem(self):
        volleys, labels = two_class_latency(
            n_lines=16, per_class=12, jitter=0, seed=7
        )
        t = Tempotron(16, threshold=60, rng=random.Random(7))
        history = t.train(
            [tuple(v) for v in volleys], labels, epochs=30, rng=random.Random(8)
        )
        assert history[-1] >= 0.9

    def test_weights_stay_in_range(self):
        volleys, labels = two_class_latency(n_lines=8, per_class=8, seed=1)
        t = Tempotron(8, threshold=20)
        t.train([tuple(v) for v in volleys], labels, epochs=10)
        assert (t.weights >= t.config.w_min).all()
        assert (t.weights <= t.config.w_max).all()

    def test_label_count_validated(self):
        t = Tempotron(2, threshold=5)
        with pytest.raises(ValueError):
            t.train([(0, 0)], [True, False])

    def test_accuracy_empty(self):
        assert Tempotron(2, threshold=5).accuracy([], []) == 1.0

    def test_peak_potential_time(self):
        base = ResponseFunction.piecewise_linear(amplitude=3, rise=2, fall=4)
        t = Tempotron(1, threshold=100, base_response=base)
        t.weights[0] = 2
        # Peak of the response is at offset 2 from the spike.
        assert t.peak_potential_time((5,)) == 7

    def test_peak_none_for_silence(self):
        t = Tempotron(2, threshold=5)
        assert t.peak_potential_time((INF, INF)) is None


class TestMultiClass:
    def test_create(self):
        mc = MultiClassTempotron.create(3, 8, threshold=20)
        assert mc.n_classes == 3

    def test_predict_earliest_wins(self):
        mc = MultiClassTempotron.create(2, 4, threshold=4)
        mc.tempotrons[0].weights[:] = 7
        mc.tempotrons[1].weights[:] = 1
        assert mc.predict((0, 0, 0, 0)) == 0

    def test_silent_prediction_is_none(self):
        mc = MultiClassTempotron.create(2, 4, threshold=10**6)
        assert mc.predict((0, 0, 0, 0)) is None

    def test_trains_toward_separation(self):
        rng = random.Random(4)
        pattern_a = tuple(rng.randint(0, 3) for _ in range(12))
        pattern_b = tuple(rng.randint(4, 7) for _ in range(12))
        volleys = [pattern_a, pattern_b] * 10
        labels = [0, 1] * 10
        mc = MultiClassTempotron.create(
            2, 12, threshold=30, rng=random.Random(4)
        )
        history = mc.train(volleys, labels, epochs=25, rng=random.Random(5))
        assert history[-1] >= 0.75
