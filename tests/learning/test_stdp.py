"""Tests for STDP rules and WTA training."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.datasets import embedded_patterns
from repro.coding.volley import Volley
from repro.core.value import INF, Infinity
from repro.learning.stdp import (
    FirstSpikeSTDP,
    STDPRule,
    STDPTrainer,
    selectivity,
)
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.step(amplitude=1, width=8)


class TestSTDPRule:
    def test_ltp_on_contributing_input(self):
        rule = STDPRule(a_plus=2)
        row = np.array([3, 3])
        out = rule.update_row(row, (2, INF), t_out=4)
        assert out[0] == 5

    def test_ltd_on_late_input(self):
        rule = STDPRule(a_minus=1)
        row = np.array([3, 3])
        out = rule.update_row(row, (2, 6), t_out=4)
        assert out[1] == 2

    def test_silent_input_depressed_by_default(self):
        rule = STDPRule()
        out = rule.update_row(np.array([3]), (INF,), t_out=2)
        assert out[0] == 2

    def test_silent_input_kept_when_disabled(self):
        rule = STDPRule(depress_silent=False)
        out = rule.update_row(np.array([3]), (INF,), t_out=2)
        assert out[0] == 3

    def test_input_outside_ltp_window_unchanged(self):
        rule = STDPRule(ltp_window=2)
        out = rule.update_row(np.array([3]), (0,), t_out=5)
        assert out[0] == 3

    def test_clamping(self):
        rule = STDPRule(a_plus=5, w_max=7)
        out = rule.update_row(np.array([6]), (0,), t_out=1)
        assert out[0] == 7
        rule = STDPRule(a_minus=5, w_min=0)
        out = rule.update_row(np.array([2]), (9,), t_out=1)
        assert out[0] == 0

    def test_does_not_mutate_input(self):
        rule = STDPRule()
        row = np.array([3, 3])
        rule.update_row(row, (0, 9), t_out=1)
        assert row.tolist() == [3, 3]


class TestFirstSpikeSTDP:
    def test_earliest_inputs_get_stronger_updates(self):
        rule = FirstSpikeSTDP(a_plus=1, n_strongest=1)
        row = np.zeros(3, dtype=np.int64)
        out = rule.update_row(row, (0, 2, 4), t_out=5)
        assert out[0] == 2  # earliest: double update
        assert out[1] == 1
        assert out[2] == 1

    def test_late_and_silent_depressed(self):
        rule = FirstSpikeSTDP()
        out = rule.update_row(np.array([3, 3]), (9, INF), t_out=2)
        assert out.tolist() == [2, 2]


class TestTrainer:
    def make_column(self, n_inputs=8, n_neurons=3, seed=0):
        rng = random.Random(seed)
        weights = np.array(
            [
                [rng.randint(1, 3) for _ in range(n_inputs)]
                for _ in range(n_neurons)
            ]
        )
        return Column(weights, threshold=6, base_response=BASE)

    def test_silent_volley_learns_nothing(self):
        col = self.make_column()
        before = col.weights.copy()
        trainer = STDPTrainer(col)
        step = trainer.train_step(Volley.silent(8))
        assert step.winner is None
        assert (col.weights == before).all()

    def test_only_winner_updates(self):
        col = self.make_column()
        before = col.weights.copy()
        trainer = STDPTrainer(col)
        step = trainer.train_step(Volley([0] * 8))
        assert step.winner is not None
        changed_rows = [
            i
            for i in range(col.n_neurons)
            if not (col.weights[i] == before[i]).all()
        ]
        assert changed_rows == [step.winner]

    def test_training_increases_selectivity(self):
        bases, data = embedded_patterns(
            n_lines=16, n_patterns=2, presentations=40, active_lines=8,
            jitter=0, dropout=0.0, noise_lines=0, seed=5,
        )
        col = self.make_column(n_inputs=16, n_neurons=4, seed=5)
        trainer = STDPTrainer(col, STDPRule(a_plus=2, a_minus=1))
        trainer.train([item.volley for item in data], epochs=3)
        claims = selectivity(col, [Volley(b) for b in bases])
        claimed_patterns = {v for vs in claims.values() for v in vs}
        assert len(claimed_patterns) == 2  # both base patterns are claimed

    def test_trained_neuron_fires_earlier_on_learned_pattern(self):
        # The paper's §II.A story: after training, a learned pattern
        # produces an early spike; a dissimilar pattern a late one or none.
        rng = random.Random(3)
        pattern = tuple(rng.randint(0, 3) for _ in range(12))
        other = tuple(rng.randint(0, 3) for _ in range(12))
        col = Column(
            np.full((1, 12), 2), threshold=14, base_response=BASE
        )
        trainer = STDPTrainer(col, STDPRule(a_plus=2, a_minus=2, w_max=7))
        for _ in range(20):
            trainer.train_step(pattern)
        t_learned = col.excitation(pattern)[0]
        t_other = col.excitation(other)[0]
        assert not isinstance(t_learned, Infinity)
        if not isinstance(t_other, Infinity):
            assert t_learned <= t_other

    def test_step_log(self):
        col = self.make_column()
        trainer = STDPTrainer(col)
        log = trainer.train([Volley([0] * 8), Volley([1] * 8)], epochs=2)
        assert len(log) == 4
        assert trainer.steps_taken <= 4


class TestDeterminism:
    """The trainer's bit-reproducibility contract (seed= plumbing).

    The training plane's lineage records are only meaningful if a
    recorded (parent fingerprint, volley stream, seed) triple replays to
    the recorded child fingerprint — so reproducibility is asserted at
    the fingerprint level, not just on the weight matrices.
    """

    def make_column(self, seed):
        rng = random.Random(seed)
        weights = np.array(
            [[rng.randint(1, 3) for _ in range(10)] for _ in range(4)]
        )
        return Column(weights, threshold=6, base_response=BASE)

    def volleys(self, seed, count=60):
        rng = random.Random(seed)
        return [
            Volley(
                tuple(
                    INF if rng.random() < 0.1 else rng.randint(0, 7)
                    for _ in range(10)
                )
            )
            for _ in range(count)
        ]

    def run(self, seed):
        from repro.learning.stdp import Homeostasis
        from repro.neuron.column import compile_column

        col = self.make_column(11)
        trainer = STDPTrainer(
            col,
            STDPRule(a_plus=2, a_minus=1),
            seed=seed,
            homeostasis=Homeostasis(col),
        )
        for volley in self.volleys(12):
            trainer.train_step(volley)
        trainer.homeostasis.reset(col)
        return compile_column(col, name="det").fingerprint()

    def test_same_seed_same_fingerprint(self):
        assert self.run(5) == self.run(5)

    def test_seed_none_matches_seed_zero(self):
        # The default stream is seed 0 (historical behaviour).
        col_a, col_b = self.make_column(2), self.make_column(2)
        a = STDPTrainer(col_a)
        b = STDPTrainer(col_b, seed=0)
        for volley in self.volleys(3, count=40):
            a.train_step(volley)
            b.train_step(volley)
        assert col_a.weights.tolist() == col_b.weights.tolist()

    def test_rng_and_seed_are_exclusive(self):
        col = self.make_column(0)
        with pytest.raises(ValueError, match="not both"):
            STDPTrainer(col, rng=random.Random(1), seed=1)

    def test_tie_break_stream_is_the_only_nondeterminism(self):
        # Two identical weight rows tie on every volley, so the winner
        # sequence IS the tie-break stream.  Same seed -> same sequence;
        # across many seeds the sequences differ.
        def winner_sequence(seed):
            col = Column(
                np.full((2, 6), 2), threshold=4, base_response=BASE
            )
            # A zero-step rule keeps the rows identical, so every one of
            # the 12 presentations is a genuine tie.
            trainer = STDPTrainer(
                col, STDPRule(a_plus=0, a_minus=0), seed=seed
            )
            return tuple(
                trainer.train_step(Volley([0] * 6)).winner for _ in range(12)
            )

        assert winner_sequence(3) == winner_sequence(3)
        assert len({winner_sequence(seed) for seed in range(8)}) > 1


class TestWeightBoundsProperty:
    """Hypothesis: weights stay in the §II.A integer-resolution bounds.

    The paper's low-resolution argument (weights are a few bits) only
    holds if no update path can escape ``[w_min, w_max]`` — for either
    rule, any volley mix (including ∞s and ties), any gain settings.
    """

    times = st.one_of(st.integers(min_value=0, max_value=9), st.just(INF))

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        a_plus=st.integers(min_value=0, max_value=5),
        a_minus=st.integers(min_value=0, max_value=5),
        first_spike=st.booleans(),
        volleys=st.lists(
            st.lists(times, min_size=6, max_size=6), min_size=1, max_size=25
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_training_never_escapes_weight_bounds(
        self, seed, a_plus, a_minus, first_spike, volleys
    ):
        if first_spike:
            rule = FirstSpikeSTDP(a_plus=a_plus, a_minus=a_minus)
        else:
            rule = STDPRule(a_plus=a_plus, a_minus=a_minus)
        rng = random.Random(seed)
        weights = np.array(
            [[rng.randint(rule.w_min, rule.w_max) for _ in range(6)]
             for _ in range(3)]
        )
        col = Column(weights, threshold=5, base_response=BASE)
        trainer = STDPTrainer(col, rule, seed=seed)
        for volley in volleys:
            trainer.train_step(Volley(tuple(volley)))
        assert int(col.weights.min()) >= rule.w_min
        assert int(col.weights.max()) <= rule.w_max

