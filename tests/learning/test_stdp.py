"""Tests for STDP rules and WTA training."""

import random

import numpy as np
import pytest

from repro.apps.datasets import embedded_patterns
from repro.coding.volley import Volley
from repro.core.value import INF, Infinity
from repro.learning.stdp import (
    FirstSpikeSTDP,
    STDPRule,
    STDPTrainer,
    selectivity,
)
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.step(amplitude=1, width=8)


class TestSTDPRule:
    def test_ltp_on_contributing_input(self):
        rule = STDPRule(a_plus=2)
        row = np.array([3, 3])
        out = rule.update_row(row, (2, INF), t_out=4)
        assert out[0] == 5

    def test_ltd_on_late_input(self):
        rule = STDPRule(a_minus=1)
        row = np.array([3, 3])
        out = rule.update_row(row, (2, 6), t_out=4)
        assert out[1] == 2

    def test_silent_input_depressed_by_default(self):
        rule = STDPRule()
        out = rule.update_row(np.array([3]), (INF,), t_out=2)
        assert out[0] == 2

    def test_silent_input_kept_when_disabled(self):
        rule = STDPRule(depress_silent=False)
        out = rule.update_row(np.array([3]), (INF,), t_out=2)
        assert out[0] == 3

    def test_input_outside_ltp_window_unchanged(self):
        rule = STDPRule(ltp_window=2)
        out = rule.update_row(np.array([3]), (0,), t_out=5)
        assert out[0] == 3

    def test_clamping(self):
        rule = STDPRule(a_plus=5, w_max=7)
        out = rule.update_row(np.array([6]), (0,), t_out=1)
        assert out[0] == 7
        rule = STDPRule(a_minus=5, w_min=0)
        out = rule.update_row(np.array([2]), (9,), t_out=1)
        assert out[0] == 0

    def test_does_not_mutate_input(self):
        rule = STDPRule()
        row = np.array([3, 3])
        rule.update_row(row, (0, 9), t_out=1)
        assert row.tolist() == [3, 3]


class TestFirstSpikeSTDP:
    def test_earliest_inputs_get_stronger_updates(self):
        rule = FirstSpikeSTDP(a_plus=1, n_strongest=1)
        row = np.zeros(3, dtype=np.int64)
        out = rule.update_row(row, (0, 2, 4), t_out=5)
        assert out[0] == 2  # earliest: double update
        assert out[1] == 1
        assert out[2] == 1

    def test_late_and_silent_depressed(self):
        rule = FirstSpikeSTDP()
        out = rule.update_row(np.array([3, 3]), (9, INF), t_out=2)
        assert out.tolist() == [2, 2]


class TestTrainer:
    def make_column(self, n_inputs=8, n_neurons=3, seed=0):
        rng = random.Random(seed)
        weights = np.array(
            [
                [rng.randint(1, 3) for _ in range(n_inputs)]
                for _ in range(n_neurons)
            ]
        )
        return Column(weights, threshold=6, base_response=BASE)

    def test_silent_volley_learns_nothing(self):
        col = self.make_column()
        before = col.weights.copy()
        trainer = STDPTrainer(col)
        step = trainer.train_step(Volley.silent(8))
        assert step.winner is None
        assert (col.weights == before).all()

    def test_only_winner_updates(self):
        col = self.make_column()
        before = col.weights.copy()
        trainer = STDPTrainer(col)
        step = trainer.train_step(Volley([0] * 8))
        assert step.winner is not None
        changed_rows = [
            i
            for i in range(col.n_neurons)
            if not (col.weights[i] == before[i]).all()
        ]
        assert changed_rows == [step.winner]

    def test_training_increases_selectivity(self):
        bases, data = embedded_patterns(
            n_lines=16, n_patterns=2, presentations=40, active_lines=8,
            jitter=0, dropout=0.0, noise_lines=0, seed=5,
        )
        col = self.make_column(n_inputs=16, n_neurons=4, seed=5)
        trainer = STDPTrainer(col, STDPRule(a_plus=2, a_minus=1))
        trainer.train([item.volley for item in data], epochs=3)
        claims = selectivity(col, [Volley(b) for b in bases])
        claimed_patterns = {v for vs in claims.values() for v in vs}
        assert len(claimed_patterns) == 2  # both base patterns are claimed

    def test_trained_neuron_fires_earlier_on_learned_pattern(self):
        # The paper's §II.A story: after training, a learned pattern
        # produces an early spike; a dissimilar pattern a late one or none.
        rng = random.Random(3)
        pattern = tuple(rng.randint(0, 3) for _ in range(12))
        other = tuple(rng.randint(0, 3) for _ in range(12))
        col = Column(
            np.full((1, 12), 2), threshold=14, base_response=BASE
        )
        trainer = STDPTrainer(col, STDPRule(a_plus=2, a_minus=2, w_max=7))
        for _ in range(20):
            trainer.train_step(pattern)
        t_learned = col.excitation(pattern)[0]
        t_other = col.excitation(other)[0]
        assert not isinstance(t_learned, Infinity)
        if not isinstance(t_other, Infinity):
            assert t_learned <= t_other

    def test_step_log(self):
        col = self.make_column()
        trainer = STDPTrainer(col)
        log = trainer.train([Volley([0] * 8), Volley([1] * 8)], epochs=2)
        assert len(log) == 4
        assert trainer.steps_taken <= 4
