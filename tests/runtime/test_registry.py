"""EngineRegistry: registration order, aliases, and the auto policy."""

import pytest

from repro.runtime import AUTO, ENGINES, EngineRegistry
from repro.runtime.engines import (
    BackendEngine,
    CompiledBatchEngine,
    EngineCapabilities,
    InterpretedEngine,
)


class TestStockRegistry:
    def test_registration_order_is_pinned(self):
        assert ENGINES.names() == [
            "interpreted",
            "compiled-batch",
            "event-driven",
            "grl-circuit",
            "native",
        ]

    def test_serving_keys_are_the_batchable_engines(self):
        assert ENGINES.serving_keys() == ["int64", "native"]

    def test_key_aliases_resolve_to_names(self):
        assert ENGINES.canonical("int64") == "compiled-batch"
        assert ENGINES.canonical("event") == "event-driven"
        assert ENGINES.canonical("grl") == "grl-circuit"
        assert ENGINES.canonical("native") == "native"

    def test_unknown_engine_raises_with_known_list(self):
        with pytest.raises(ValueError, match="unknown engine 'tpu'"):
            ENGINES.canonical("tpu")

    def test_create_hands_out_fresh_instances(self):
        first = ENGINES.create("compiled-batch")
        second = ENGINES.create("int64")
        assert first is not second
        assert type(first) is type(second) is CompiledBatchEngine

    def test_create_all_capability_filter(self):
        full = ENGINES.create_all()
        assert [e.name for e in full] == ENGINES.names()
        trimmed = ENGINES.create_all(include_cycle_accurate=False)
        assert all(not e.capabilities.cycle_accurate for e in trimmed)
        assert "grl-circuit" not in [e.name for e in trimmed]

    def test_capability_flags(self):
        by_name = {e.name: e for e in ENGINES.create_all()}
        assert by_name["compiled-batch"].capabilities.batchable
        assert by_name["native"].capabilities.batchable
        assert by_name["native"].capabilities.supports_trace_replay
        assert not by_name["interpreted"].capabilities.batchable
        grl = by_name["grl-circuit"].capabilities
        assert grl.cycle_accurate
        assert not grl.supports_zero_source_const

    def test_describe_shape(self):
        records = ENGINES.describe()
        assert len(records) == 5
        for record in records:
            assert {"name", "key", "available", "capabilities"} <= set(record)
        native = next(r for r in records if r["name"] == "native")
        assert "mode" in native and "numba_available" in native


class TestResolve:
    def test_auto_prefers_the_last_available_batchable_engine(self):
        engine = ENGINES.resolve(AUTO)
        # Native runs in numpy mode everywhere, so auto lands on it.
        assert engine.key == "native"
        assert engine.available() is None

    def test_explicit_key_pins_the_engine(self):
        assert ENGINES.resolve("int64").name == "compiled-batch"
        assert ENGINES.resolve("native").name == "native"

    def test_non_batchable_engine_is_rejected(self):
        with pytest.raises(ValueError, match="not batchable"):
            ENGINES.resolve("interpreted")
        with pytest.raises(ValueError, match="not batchable"):
            ENGINES.resolve("grl")

    def test_auto_respects_max_batch_caps(self):
        registry = EngineRegistry()

        class TinyEngine(BackendEngine):
            name = "tiny"
            key = "tiny"
            capabilities = EngineCapabilities(batchable=True, max_batch=4)

        class WideEngine(BackendEngine):
            name = "wide"
            key = "wide"
            capabilities = EngineCapabilities(batchable=True)

        registry.register(WideEngine)
        registry.register(TinyEngine)  # last registered: auto's favourite
        assert registry.resolve(AUTO, batch_size=2).name == "tiny"
        assert registry.resolve(AUTO, batch_size=64).name == "wide"


class TestRegistration:
    def test_duplicate_name_raises_legacy_message(self):
        registry = EngineRegistry()
        registry.register(InterpretedEngine)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(InterpretedEngine)

    def test_key_collision_raises(self):
        registry = EngineRegistry()

        class FirstEngine(BackendEngine):
            name = "first"
            key = "shared"

        class SecondEngine(BackendEngine):
            name = "second"
            key = "shared"

        registry.register(FirstEngine)
        with pytest.raises(ValueError, match="already taken"):
            registry.register(SecondEngine)

    def test_custom_engine_registers_and_resolves(self):
        registry = EngineRegistry()

        class ToyEngine(BackendEngine):
            name = "toy"
            key = "t"
            capabilities = EngineCapabilities(batchable=True)

        registry.register(ToyEngine)
        assert registry.names() == ["toy"]
        assert registry.canonical("t") == "toy"
        assert registry.resolve("t").name == "toy"
