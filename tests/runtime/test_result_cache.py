"""ResultCache: digests, LRU bounds, metrics, and poisoning."""

import numpy as np
import pytest

from repro.core.value import INF
from repro.obs.metrics import METRICS
from repro.runtime.result_cache import RESULT_CACHE, ResultCache, volley_digest


class TestVolleyDigest:
    def test_deterministic(self):
        row = np.array([1, 2, 3], dtype=np.int64)
        assert volley_digest(row) == volley_digest(row.copy())

    def test_params_key_is_part_of_the_key(self):
        row = np.array([1, 2, 3], dtype=np.int64)
        assert volley_digest(row) != volley_digest(row, '{"w": 1}')

    def test_shape_is_folded_in(self):
        flat = np.array([1, 2, 3], dtype=np.int64)
        matrix = flat.reshape(1, 3)
        assert volley_digest(flat) != volley_digest(matrix)

    def test_values_change_digest(self):
        assert volley_digest(np.array([1, 2], dtype=np.int64)) != volley_digest(
            np.array([2, 1], dtype=np.int64)
        )

    def test_non_contiguous_input_is_canonicalized(self):
        matrix = np.arange(12, dtype=np.int64).reshape(3, 4)
        column = matrix[:, 1]  # strided view
        assert volley_digest(column) == volley_digest(
            np.ascontiguousarray(column)
        )


class TestLookupAndBounds:
    def test_hit_miss_and_lru_refresh(self):
        cache = ResultCache(max_entries=2, max_bytes=None)
        hits0 = METRICS.counter("result_cache.hit")
        misses0 = METRICS.counter("result_cache.miss")
        assert cache.get("fp", "d0") is None
        cache.put("fp", "d0", (1, 2))
        cache.put("fp", "d1", (3, 4))
        assert cache.get("fp", "d0") == (1, 2)  # refresh: d1 becomes LRU
        cache.put("fp", "d2", (5, 6))
        assert cache.get("fp", "d1") is None  # evicted
        assert cache.get("fp", "d0") == (1, 2)
        assert METRICS.counter("result_cache.hit") - hits0 == 2
        assert METRICS.counter("result_cache.miss") - misses0 == 2

    def test_byte_bound_evicts(self):
        # Each tuple row costs 96 + 16 * len bytes.
        cache = ResultCache(max_entries=None, max_bytes=300)
        evicts0 = METRICS.counter("result_cache.evict")
        cache.put("fp", "d0", (1,))  # 112
        cache.put("fp", "d1", (2,))  # 224
        cache.put("fp", "d2", (3,))  # 336 > 300: d0 leaves
        assert len(cache) == 2
        assert cache.get("fp", "d0") is None
        assert METRICS.counter("result_cache.evict") - evicts0 == 1

    def test_reput_replaces_without_double_counting(self):
        cache = ResultCache(max_entries=None, max_bytes=None)
        cache.put("fp", "d0", (1, 2, 3))
        cache.put("fp", "d0", (1, 2, 3, 4))
        assert len(cache) == 1
        assert cache.info()["bytes"] == 96 + 16 * 4

    def test_configure_returns_previous_and_trims(self):
        cache = ResultCache(max_entries=8, max_bytes=None)
        for i in range(8):
            cache.put("fp", f"d{i}", (i,))
        assert cache.configure(max_entries=2) == (8, None)
        assert len(cache) == 2
        with pytest.raises(ValueError, match=">= 1"):
            cache.configure(max_entries=0)
        with pytest.raises(ValueError, match=">= 1"):
            cache.configure(max_bytes=0)

    def test_clear(self):
        cache = ResultCache()
        cache.put("fp", "d0", (1,))
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.info()["bytes"] == 0


class TestPoison:
    def test_poison_corrupts_most_recent_tuple_row(self):
        cache = ResultCache()
        poisoned0 = METRICS.counter("result_cache.poisoned")
        cache.put("fp", "old", (9, 9))
        cache.put("fp", "new", (5, 7))
        key = cache.poison()
        assert key == ("fp", "new")
        assert cache.get("fp", "new") == (6, 7)  # head bumped by one
        assert cache.get("fp", "old") == (9, 9)  # untouched
        assert METRICS.counter("result_cache.poisoned") - poisoned0 == 1

    def test_poison_collapses_inf_head_to_zero(self):
        cache = ResultCache()
        cache.put("fp", "d", (INF, 3))
        assert cache.poison() == ("fp", "d")
        assert cache.get("fp", "d") == (0, 3)

    def test_poison_empty_cache_returns_none(self):
        cache = ResultCache()
        assert cache.poison() is None

    def test_poison_skips_unpoisonable_rows(self):
        cache = ResultCache()
        cache.put("fp", "tuple", (4,))
        cache.put("fp", "empty", ())
        assert cache.poison() == ("fp", "tuple")


class TestInfoShape:
    def test_info_shape(self):
        cache = ResultCache(max_entries=16, max_bytes=1 << 20)
        cache.put("fp", "d", (1, 2))
        info = cache.info()
        assert set(info) == {
            "entries",
            "bytes",
            "max_entries",
            "max_bytes",
            "hits",
            "misses",
            "evictions",
            "retired",
        }
        assert info["entries"] == 1
        assert info["max_entries"] == 16

    def test_singleton_has_default_bounds(self):
        info = RESULT_CACHE.info()
        assert info["max_entries"] is not None
        assert info["max_bytes"] is not None
