"""Legacy cache entry points forward to the runtime tier (with warnings)."""

import pytest

from repro import runtime
from repro.native import (
    clear_native_plan_cache,
    native_plan_cache_info,
    set_native_plan_cache_limit,
)
from repro.network import (
    clear_plan_cache,
    plan_cache_info,
    set_plan_cache_limit,
)
from repro.runtime.cache import PLAN_CACHE

LEGACY_KEYS = {
    "identity",
    "structural",
    "limit",
    "hits_identity",
    "hits_structural",
    "misses",
    "evictions",
}


class TestPlanCacheShims:
    def test_plan_cache_info_warns_and_keeps_legacy_shape(self):
        with pytest.warns(DeprecationWarning, match="runtime"):
            info = plan_cache_info()
        assert LEGACY_KEYS <= set(info)
        assert LEGACY_KEYS <= set(info["native"])

    def test_set_plan_cache_limit_warns_and_forwards_to_the_tier(self):
        with pytest.warns(DeprecationWarning):
            previous = set_plan_cache_limit(64)
        try:
            assert PLAN_CACHE.namespace_info("int64")["limit"] == 64
        finally:
            with pytest.warns(DeprecationWarning):
                assert set_plan_cache_limit(previous) == 64

    def test_set_plan_cache_limit_validation_message_is_preserved(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match=">= 1"):
                set_plan_cache_limit(0)

    def test_clear_plan_cache_warns_and_empties_the_namespace(self):
        with pytest.warns(DeprecationWarning):
            clear_plan_cache()
        assert PLAN_CACHE.namespace_info("int64")["entries"] == 0


class TestNativePlanCacheShims:
    def test_native_plan_cache_info_warns_and_keeps_legacy_shape(self):
        with pytest.warns(DeprecationWarning, match="runtime"):
            info = native_plan_cache_info()
        assert LEGACY_KEYS <= set(info)
        assert "mode" in info and "numba_available" in info

    def test_set_native_plan_cache_limit_warns_and_forwards(self):
        with pytest.warns(DeprecationWarning):
            previous = set_native_plan_cache_limit(32)
        try:
            assert PLAN_CACHE.namespace_info("native")["limit"] == 32
        finally:
            with pytest.warns(DeprecationWarning):
                set_native_plan_cache_limit(previous)

    def test_clear_native_plan_cache_warns_and_empties_the_namespace(self):
        with pytest.warns(DeprecationWarning):
            clear_native_plan_cache()
        assert PLAN_CACHE.namespace_info("native")["entries"] == 0


class TestRuntimeSurface:
    def test_cache_info_is_the_unified_record(self):
        info = runtime.cache_info()
        assert set(info) == {"plan", "result", "native_mode", "numba_available"}
        assert {"entries", "bytes", "budget", "namespaces"} <= set(info["plan"])
        assert {"int64", "native"} <= set(info["plan"]["namespaces"])
        assert {"hits", "misses", "evictions"} <= set(info["result"])

    def test_legacy_plan_cache_info_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            info = runtime.legacy_plan_cache_info()
        assert LEGACY_KEYS <= set(info)

    def test_clear_caches_empties_both_tiers(self):
        from repro.runtime.result_cache import RESULT_CACHE

        RESULT_CACHE.put("fp-shim", "digest", (1, 2))
        runtime.clear_caches()
        assert RESULT_CACHE.get("fp-shim", "digest") is None
        assert runtime.cache_info()["plan"]["entries"] == 0
