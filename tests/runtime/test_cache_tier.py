"""PlanCacheTier: namespaces, per-engine caps, and the global budget."""

import numpy as np
import pytest

from repro.obs.metrics import METRICS
from repro.runtime.cache import PLAN_CACHE, PlanCacheTier, plan_nbytes


def fresh_tier(prefix):
    """A private tier with two namespaces carrying unique metric prefixes.

    Metric counters are process-global, so every test namespace gets its
    own prefix and assertions read absolute values of those counters.
    """
    tier = PlanCacheTier()
    tier.register_namespace("alpha", metric_prefix=f"{prefix}.alpha", limit=3)
    tier.register_namespace("beta", metric_prefix=f"{prefix}.beta", limit=3)
    return tier


class TestNamespaces:
    def test_register_is_idempotent(self):
        tier = fresh_tier("tier_idem")
        tier.set_namespace_limit("alpha", 7)
        # Re-registering must not reset the resized limit.
        tier.register_namespace(
            "alpha", metric_prefix="tier_idem.other", limit=3
        )
        assert tier.namespace_info("alpha")["limit"] == 7

    def test_unregistered_namespace_raises(self):
        tier = fresh_tier("tier_unreg")
        with pytest.raises(KeyError, match="unregistered"):
            tier.get("gamma", "fp")
        with pytest.raises(KeyError, match="unregistered"):
            tier.put("gamma", "fp", object())

    def test_namespaces_listing(self):
        tier = fresh_tier("tier_list")
        assert tier.namespaces() == ["alpha", "beta"]


class TestLookup:
    def test_hit_and_miss_counters(self):
        tier = fresh_tier("tier_hits")
        assert tier.get("alpha", "fp0") is None
        plan = object()
        assert tier.put("alpha", "fp0", plan, nbytes=10) is plan
        assert tier.get("alpha", "fp0") is plan
        assert METRICS.counter("tier_hits.alpha.miss") == 1
        assert METRICS.counter("tier_hits.alpha.hit.structural") == 1

    def test_same_fingerprint_different_namespace_is_distinct(self):
        tier = fresh_tier("tier_split")
        a, b = object(), object()
        tier.put("alpha", "fp", a, nbytes=1)
        tier.put("beta", "fp", b, nbytes=1)
        assert tier.get("alpha", "fp") is a
        assert tier.get("beta", "fp") is b


class TestNamespaceCap:
    def test_lru_eviction_within_namespace(self):
        tier = fresh_tier("tier_nscap")
        for i in range(3):
            tier.put("alpha", f"fp{i}", i, nbytes=1)
        tier.get("alpha", "fp0")  # refresh fp0; fp1 is now LRU
        tier.put("alpha", "fp3", 3, nbytes=1)
        assert tier.namespace_info("alpha")["entries"] == 3
        assert tier.get("alpha", "fp1") is None  # evicted
        assert tier.get("alpha", "fp0") == 0  # survived the refresh
        assert METRICS.counter("tier_nscap.alpha.evict") == 1

    def test_cap_does_not_touch_other_namespace(self):
        tier = fresh_tier("tier_nsiso")
        tier.put("beta", "fpB", "plan", nbytes=1)
        for i in range(5):
            tier.put("alpha", f"fp{i}", i, nbytes=1)
        assert tier.namespace_info("alpha")["entries"] == 3
        assert tier.get("beta", "fpB") == "plan"
        assert METRICS.counter("tier_nsiso.beta.evict") == 0


class TestGlobalBudget:
    def test_max_entries_across_namespaces(self):
        tier = fresh_tier("tier_gent")
        tier.set_budget(max_entries=4)
        tier.put("alpha", "a0", 0, nbytes=1)
        tier.put("alpha", "a1", 1, nbytes=1)
        tier.put("beta", "b0", 2, nbytes=1)
        tier.put("beta", "b1", 3, nbytes=1)
        tier.put("beta", "b2", 4, nbytes=1)  # pushes a0 (global LRU) out
        assert tier.info()["entries"] == 4
        assert tier.get("alpha", "a0") is None
        # The eviction is attributed to the namespace that lost the plan.
        assert METRICS.counter("tier_gent.alpha.evict") == 1
        assert METRICS.counter("tier_gent.beta.evict") == 0

    def test_max_bytes_evicts_until_under_budget(self):
        tier = fresh_tier("tier_gbyte")
        tier.set_budget(max_bytes=100)
        tier.put("alpha", "big0", "x", nbytes=60)
        tier.put("alpha", "big1", "y", nbytes=60)  # 120 > 100: big0 leaves
        info = tier.info()
        assert info["entries"] == 1
        assert info["bytes"] == 60
        assert tier.get("alpha", "big1") == "y"

    def test_set_budget_returns_previous_and_lifts_with_none(self):
        tier = fresh_tier("tier_knob")
        assert tier.set_budget(max_entries=8, max_bytes=1000) == (None, None)
        assert tier.set_budget(max_entries=None) == (8, 1000)
        assert tier.info()["budget"] == {"max_entries": None, "max_bytes": 1000}

    def test_budget_validation(self):
        tier = fresh_tier("tier_val")
        with pytest.raises(ValueError, match=">= 1"):
            tier.set_budget(max_entries=0)
        with pytest.raises(ValueError, match=">= 1"):
            tier.set_budget(max_bytes=-5)


class TestKnobs:
    def test_set_namespace_limit_returns_previous_and_trims(self):
        tier = fresh_tier("tier_limit")
        for i in range(3):
            tier.put("alpha", f"fp{i}", i, nbytes=1)
        assert tier.set_namespace_limit("alpha", 1) == 3
        assert tier.namespace_info("alpha")["entries"] == 1
        assert tier.get("alpha", "fp2") == 2  # most recent survives
        with pytest.raises(ValueError, match=">= 1"):
            tier.set_namespace_limit("alpha", 0)

    def test_clear_fires_no_evict_counters(self):
        tier = fresh_tier("tier_clear")
        tier.put("alpha", "a", 1, nbytes=5)
        tier.put("beta", "b", 2, nbytes=5)
        assert tier.clear("alpha") == 1
        assert tier.get("beta", "b") == 2
        assert tier.clear() == 1
        info = tier.info()
        assert info["entries"] == 0 and info["bytes"] == 0
        assert METRICS.counter("tier_clear.alpha.evict") == 0
        assert METRICS.counter("tier_clear.beta.evict") == 0


class TestInfoShape:
    def test_info_shape(self):
        tier = fresh_tier("tier_shape")
        tier.put("alpha", "fp", "plan", nbytes=12)
        info = tier.info()
        assert set(info) == {"entries", "bytes", "budget", "namespaces"}
        assert set(info["budget"]) == {"max_entries", "max_bytes"}
        assert set(info["namespaces"]) == {"alpha", "beta"}
        assert set(info["namespaces"]["alpha"]) == {
            "entries",
            "bytes",
            "limit",
            "hits_structural",
            "misses",
            "evictions",
            "retired",
        }
        assert info["namespaces"]["alpha"]["bytes"] == 12


class TestPlanNbytes:
    def test_counts_ndarrays_through_containers_and_objects(self):
        class Plan:
            def __init__(self):
                self.kernels = [np.zeros(4, dtype=np.int64)]
                self.meta = {"table": np.zeros((2, 2), dtype=np.int64)}

        size = plan_nbytes(Plan())
        assert size >= 64 + 4 * 8 + 4 * 8

    def test_shared_arrays_counted_once(self):
        arr = np.zeros(100, dtype=np.int64)
        assert plan_nbytes([arr, arr]) == plan_nbytes([arr])

    def test_scalars_cost_only_overhead(self):
        assert plan_nbytes({"a": 1, "b": "text"}) == 64


class TestSharedSingleton:
    def test_engine_namespaces_are_registered(self):
        assert {"int64", "native"} <= set(PLAN_CACHE.namespaces())
