"""Tests for the micro-batching scheduler (pure, clock-free)."""

import pytest

from repro.serve.batcher import BatchPolicy, MicroBatcher, PendingRequest


def request(i, model="m", params_key="{}", enqueued=0.0, deadline=None):
    return PendingRequest(
        req_id=i,
        model_id=model,
        volley=(i,),
        params_key=params_key,
        params={},
        enqueued=enqueued,
        deadline=deadline,
    )


class TestPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1 and policy.max_wait_s >= 0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            BatchPolicy(max_wait_s=-0.1)

    def test_per_request_policy_is_allowed(self):
        assert BatchPolicy(max_batch=1, max_wait_s=0).max_batch == 1


class TestSizeTrigger:
    def test_fills_at_max_batch(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=3, max_wait_s=1.0))
        assert batcher.add(request(1), now=0.0) == (None, True)
        assert batcher.add(request(2), now=0.0) == (None, False)
        batch, opened = batcher.add(request(3), now=0.0)
        assert batch is not None and batch.size == 3
        assert not opened
        assert batcher.pending() == 0

    def test_max_batch_one_dispatches_immediately(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=1, max_wait_s=1.0))
        batch, opened = batcher.add(request(1), now=0.0)
        assert batch is not None and batch.size == 1
        assert opened  # the request both opened and filled the batch

    def test_requests_preserve_order(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=4, max_wait_s=1.0))
        for i in range(1, 4):
            batcher.add(request(i), now=0.0)
        batch, _ = batcher.add(request(4), now=0.0)
        assert [r.req_id for r in batch.requests] == [1, 2, 3, 4]

    def test_opened_flag_resets_after_flush(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_wait_s=0.5))
        assert batcher.add(request(1), now=0.0)[1] is True
        assert batcher.add(request(2), now=0.1)[1] is False
        batcher.due(now=1.0)
        assert batcher.add(request(3), now=1.0)[1] is True


class TestLatencyTrigger:
    def test_due_after_max_wait(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_wait_s=0.5))
        batcher.add(request(1), now=10.0)
        assert batcher.due(now=10.4) == []
        [batch] = batcher.due(now=10.5)
        assert batch.size == 1
        assert batcher.pending() == 0

    def test_age_measured_from_batch_open(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_wait_s=0.5))
        batcher.add(request(1), now=10.0)
        batcher.add(request(2), now=10.4)  # late rider, same batch
        [batch] = batcher.due(now=10.5)
        assert batch.size == 2

    def test_next_due(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=100, max_wait_s=0.5))
        assert batcher.next_due(now=0.0) is None
        batcher.add(request(1), now=10.0)
        assert batcher.next_due(now=10.1) == pytest.approx(0.4)
        assert batcher.next_due(now=11.0) <= 0  # overdue: flush now


class TestKeying:
    def test_models_do_not_share_batches(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_wait_s=1.0))
        assert batcher.add(request(1, model="a"), now=0.0) == (None, True)
        assert batcher.add(request(2, model="b"), now=0.0) == (None, True)
        batch, opened = batcher.add(request(3, model="a"), now=0.0)
        assert batch.model_id == "a" and batch.size == 2
        assert not opened
        assert batcher.pending() == 1  # model b still open

    def test_params_do_not_share_batches(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_wait_s=1.0))
        assert batcher.add(request(1, params_key='{"mu":0}'), now=0.0)[0] is None
        assert batcher.add(request(2, params_key='{"mu":null}'), now=0.0)[0] is None
        assert batcher.pending() == 2


class TestDrain:
    def test_drain_closes_everything(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=10, max_wait_s=1.0))
        batcher.add(request(1, model="a"), now=0.0)
        batcher.add(request(2, model="b"), now=0.0)
        batches = batcher.drain()
        assert sorted(b.model_id for b in batches) == ["a", "b"]
        assert batcher.pending() == 0
        assert batcher.drain() == []


class TestExpiry:
    def test_expired_uses_absolute_deadline(self):
        late = request(1, deadline=5.0)
        assert not late.expired(now=5.0)
        assert late.expired(now=5.01)
        assert not request(2).expired(now=1e9)
