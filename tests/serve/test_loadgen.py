"""Tests for the conformance-checking load generator against a live server."""

import asyncio
import json
import random

import numpy as np
import pytest

from repro.learning.stdp import STDPRule
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column
from repro.serve.loadgen import LoadgenError, run_loadgen
from repro.serve.pool import InlineWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.server import run_server_async
from repro.serve.service import TNNService
from repro.train import TrainingPlane


def make_service(model_seed=0):
    registry = ModelRegistry()
    registry.register(demo_column(model_seed, smoke=True)[0], name="demo")
    return TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=16, max_wait_s=0.001),
    )


def drive(server_seed=0, **loadgen_kwargs):
    """One server + one loadgen run inside a single event loop."""

    async def shutdown_server(port):
        r, w = await asyncio.open_connection("127.0.0.1", port)
        w.write(b'{"op":"shutdown"}\n')
        await w.drain()
        await r.readline()
        w.close()

    async def main():
        service = make_service(model_seed=server_seed)
        ready = asyncio.get_running_loop().create_future()
        server_task = asyncio.ensure_future(
            run_server_async(service, port=0, ready=ready)
        )
        port = await ready
        loadgen_kwargs.setdefault("shutdown", True)
        try:
            report = await run_loadgen(port=port, smoke=True, **loadgen_kwargs)
        except BaseException:
            # Make sure the server exits even when the loadgen fails.
            await shutdown_server(port)
            raise
        finally:
            await asyncio.wait_for(server_task, timeout=20)
        return report

    return asyncio.run(main())


class TestConformanceRun:
    def test_all_responses_byte_identical(self):
        report = drive(requests=80, concurrency=8)
        assert report["ok"] == 80
        assert report["mismatches"] == 0
        assert report["failed"] == 0
        assert report["checked"] is True
        assert report["qps"] > 0

    def test_seeded_stream_is_deterministic(self):
        a = drive(requests=30, concurrency=4, seed=7)
        b = drive(requests=30, concurrency=4, seed=7)
        assert a["ok"] == b["ok"] == 30
        assert a["mismatches"] == b["mismatches"] == 0

    def test_no_check_mode(self):
        report = drive(requests=20, concurrency=2, check=False)
        assert report["checked"] is False
        assert report["ok"] == 20

    def test_metrics_out_artifact(self, tmp_path):
        out = tmp_path / "metrics.json"
        report = drive(requests=20, concurrency=2, metrics_out=str(out))
        assert report["ok"] == 20
        payload = json.loads(out.read_text())
        assert payload["ok"] and "serve" in payload


def make_trained_service():
    rng = random.Random(0)
    column = Column(
        np.array([[rng.randint(1, 3) for _ in range(8)] for _ in range(3)]),
        threshold=6,
        base_response=ResponseFunction.step(amplitude=1, width=8),
    )
    registry = ModelRegistry()
    service = TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
    )
    plane = TrainingPlane(
        service,
        column,
        alias="tiny@live",
        rule=STDPRule(a_plus=1, a_minus=1),
        seed=3,
        snapshot_every=5,
        model_name="tiny",
    )
    service.training = plane
    plane.start()
    return service


def drive_live(**loadgen_kwargs):
    """One training server + one live-mode loadgen run in a single loop."""

    async def main():
        service = make_trained_service()
        ready = asyncio.get_running_loop().create_future()
        server_task = asyncio.ensure_future(
            run_server_async(service, port=0, ready=ready)
        )
        port = await ready
        loadgen_kwargs.setdefault("shutdown", True)
        try:
            report = await run_loadgen(port=port, **loadgen_kwargs)
        except BaseException:
            r, w = await asyncio.open_connection("127.0.0.1", port)
            w.write(b'{"op":"shutdown"}\n')
            await w.drain()
            await r.readline()
            w.close()
            raise
        finally:
            service.training.stop()
            await asyncio.wait_for(server_task, timeout=20)
        return report

    return asyncio.run(main())


class TestLiveMode:
    def test_mixed_stream_byte_identical_per_version(self):
        report = drive_live(requests=60, concurrency=6, train_every=4)
        assert report["train_ops"] == 15
        assert report["train_accepted"] == 15
        assert report["train_dropped"] == 0
        assert report["ok"] == 45  # every non-train request served
        assert report["failed"] == 0
        assert report["mismatches"] == 0
        # The plane snapshots every 5 applied volleys, so the stream
        # spans at least one hot-swap; each served version byte-checked.
        assert report["models_served"] >= 1
        assert report["alias"] == "tiny@live"
        assert report["training"]["alias"] == "tiny@live"

    def test_promote_mid_run(self):
        report = drive_live(
            requests=40, concurrency=4, train_every=3, promote_at=20
        )
        assert report["failed"] == 0
        assert report["mismatches"] == 0
        assert report["promotion"] is not None
        assert report["promotion"]["ok"] is True
        assert report["promotion"]["alias"] == "tiny@live"

    def test_requires_training_plane(self):
        with pytest.raises(LoadgenError, match="training plane"):
            drive(requests=8, concurrency=2, train_every=2)


class TestFingerprintHandshake:
    def test_model_seed_mismatch_detected(self):
        # Server runs the seed-0 demo; the client rebuilds seed 3: the
        # handshake must refuse rather than report bogus mismatches.
        with pytest.raises(LoadgenError, match="fingerprint"):
            drive(server_seed=0, requests=5, concurrency=1, model_seed=3)
