"""The (fingerprint, volley) result cache through the serving stack.

A hit must answer ahead of admission (no pool round-trip), remain
byte-identical to direct evaluation — including under crash and deadline
fault injection — and the served cache self-check must detect a
deliberately poisoned row.
"""

import pytest

from repro.obs.metrics import METRICS
from repro.runtime.result_cache import RESULT_CACHE
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import InlineWorkerPool, ProcessWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService
from repro.testing import (
    CachePoisonFault,
    check_served,
    run_served_cache_selfcheck,
)


@pytest.fixture(autouse=True)
def clean_result_cache():
    """The cache is process-global and fingerprint-keyed; demo networks
    share fingerprints across tests, so every test starts cold."""
    RESULT_CACHE.clear()
    yield
    RESULT_CACHE.clear()


def demo_service(*, result_cache=True, pool=None, **kwargs):
    network, _ = demo_column(0, smoke=True)
    registry = ModelRegistry()
    registry.register(network, name="demo")
    if pool is None:
        pool = InlineWorkerPool(registry.documents())
    else:
        pool = pool(registry.documents())
    service = TNNService(
        registry,
        pool,
        policy=kwargs.pop("policy", BatchPolicy(max_batch=8, max_wait_s=0.001)),
        result_cache=result_cache,
        **kwargs,
    )
    return service, network, pool


class TestAheadOfAdmission:
    def test_repeat_submission_skips_the_pool(self):
        service, network, _ = demo_service()
        try:
            arity = len(network.input_ids)
            volley = tuple([1] * arity)
            submits0 = METRICS.counter("serve.pool.submits")
            served0 = METRICS.counter("serve.result_cache.served")
            first = service.submit("demo", volley).result(timeout=10)
            second = service.submit("demo", volley).result(timeout=10)
            assert first == second
            assert METRICS.counter("serve.pool.submits") - submits0 == 1
            assert METRICS.counter("serve.result_cache.served") - served0 == 1
        finally:
            service.close()

    def test_deadline_does_not_change_the_key(self):
        service, network, _ = demo_service()
        try:
            arity = len(network.input_ids)
            volley = tuple([1] * arity)
            served0 = METRICS.counter("serve.result_cache.served")
            service.submit("demo", volley).result(timeout=10)
            service.submit("demo", volley, deadline_s=5.0).result(timeout=10)
            assert METRICS.counter("serve.result_cache.served") - served0 == 1
        finally:
            service.close()

    def test_cache_is_off_by_default(self):
        service, network, _ = demo_service(result_cache=False)
        try:
            assert not service.result_cache_enabled
            arity = len(network.input_ids)
            volley = tuple([2] * arity)
            submits0 = METRICS.counter("serve.pool.submits")
            service.submit("demo", volley).result(timeout=10)
            service.submit("demo", volley).result(timeout=10)
            assert METRICS.counter("serve.pool.submits") - submits0 == 2
        finally:
            service.close()

    def test_stats_expose_the_result_cache(self):
        service, network, _ = demo_service()
        try:
            arity = len(network.input_ids)
            volley = tuple([3] * arity)
            service.submit("demo", volley).result(timeout=10)
            service.submit("demo", volley).result(timeout=10)
            record = service.stats()["result_cache"]
            assert record["enabled"] is True
            assert record["entries"] >= 1
            assert record["hits"] >= 1
        finally:
            service.close()


class TestByteIdentity:
    def test_check_served_repeat_rounds_hit_the_cache(self):
        service, network, _ = demo_service()
        try:
            arity = len(network.input_ids)
            hits0 = RESULT_CACHE.info()["hits"]
            report = check_served(
                service, "demo", demo_volleys(arity, 12, seed=7), repeat=3
            )
            assert report.total == 36
            assert report.byte_identical and report.ok == 36, report.summary()
            # Rounds two and three are served from the cache and still
            # byte-checked against direct evaluation.
            assert RESULT_CACHE.info()["hits"] - hits0 >= 24
        finally:
            service.close()

    def test_repeat_must_be_positive(self):
        service, _, _ = demo_service()
        try:
            with pytest.raises(ValueError, match=">= 1"):
                check_served(service, "demo", [(1, 2)], repeat=0)
        finally:
            service.close()

    def test_byte_identity_through_worker_crashes_with_cache_armed(self):
        service, network, pool = demo_service(
            pool=lambda docs: ProcessWorkerPool(docs, n_workers=2),
            max_attempts=4,
        )
        try:
            arity = len(network.input_ids)
            warm = check_served(
                service, "demo", demo_volleys(arity, 30, seed=8), repeat=2
            )
            assert warm.byte_identical, warm.summary()

            pool.inject_crash(0)
            after = check_served(
                service, "demo", demo_volleys(arity, 30, seed=9), repeat=2
            )
            assert after.byte_identical, after.summary()
            assert set(after.rejected) <= {"worker-failure"}
        finally:
            service.close()

    def test_deadline_faults_never_leak_mismatches_with_cache_armed(self):
        service, network, _ = demo_service(
            policy=BatchPolicy(max_batch=8, max_wait_s=0.001)
        )
        try:
            arity = len(network.input_ids)
            report = check_served(
                service,
                "demo",
                demo_volleys(arity, 20, seed=10),
                deadline_s=5.0,
                repeat=2,
            )
            assert report.byte_identical, report.summary()
            assert report.ok == 40
        finally:
            service.close()


class TestCachePoisoning:
    def test_selfcheck_detects_a_poisoned_row(self):
        service, network, _ = demo_service()
        try:
            arity = len(network.input_ids)
            report = run_served_cache_selfcheck(
                service, "demo", demo_volleys(arity, 10, seed=11)
            )
            assert report.warm.byte_identical, report.warm.summary()
            assert report.poisoned_key is not None
            assert report.detected, report.summary()
            assert report.ok
            assert not report.poisoned.byte_identical
            assert len(report.poisoned.mismatches) >= 1
        finally:
            service.close()

    def test_selfcheck_requires_an_armed_cache(self):
        service, network, _ = demo_service(result_cache=False)
        try:
            arity = len(network.input_ids)
            with pytest.raises(ValueError, match="result cache"):
                run_served_cache_selfcheck(
                    service, "demo", demo_volleys(arity, 4, seed=12)
                )
        finally:
            service.close()

    def test_poison_fault_reports_none_on_cold_cache(self):
        assert CachePoisonFault().inject() is None
