"""Served-vs-direct conformance: byte-identity through the full stack.

The serving layer is held to the same standard as the evaluation
backends: every answered request must be byte-identical (canonical JSON
response encoding) to a direct ``evaluate_batch`` — including across
generator-family networks, injected worker crashes mid-stream, and
deadline faults.
"""

import pytest

from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import InlineWorkerPool, ProcessWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService
from repro.testing import check_served
from repro.testing.generators import generate_case


class TestGeneratorFamilies:
    """Seeded conformance cases through the serving stack (inline pool)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_served_case_byte_identical(self, seed):
        case = generate_case(seed, smoke=True)
        registry = ModelRegistry()
        entry = registry.register(case.network, name=f"case-{seed}")
        service = TNNService(
            registry,
            InlineWorkerPool(registry.documents()),
            policy=BatchPolicy(max_batch=16, max_wait_s=0.001),
        )
        try:
            report = check_served(
                service,
                entry.model_id,
                list(case.volleys),
                params=case.params or None,
            )
            assert report.byte_identical, report.summary()
            assert report.ok == report.total  # nothing rejected
        finally:
            service.close()


class TestProcessPoolConformance:
    def test_byte_identical_through_worker_crashes(self):
        """Crash workers mid-stream; retries must not change a byte."""
        network, _ = demo_column(0, smoke=True)
        registry = ModelRegistry()
        registry.register(network, name="demo")
        pool = ProcessWorkerPool(registry.documents(), n_workers=2)
        service = TNNService(
            registry,
            pool,
            policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
            max_attempts=4,
        )
        try:
            arity = len(network.input_ids)
            clean = check_served(service, "demo", demo_volleys(arity, 40, seed=1))
            assert clean.byte_identical and clean.ok == 40, clean.summary()

            pool.inject_crash(0)
            after = check_served(service, "demo", demo_volleys(arity, 40, seed=2))
            assert after.byte_identical, after.summary()
            # Crash-time rejections are only allowed as worker-failure
            # after retry exhaustion, never as silent wrong answers.
            assert set(after.rejected) <= {"worker-failure"}

            pool.inject_crash(1)
            final = check_served(service, "demo", demo_volleys(arity, 40, seed=3))
            assert final.byte_identical, final.summary()
            assert pool.restarts >= 1
        finally:
            service.close()


class TestDeadlineFaults:
    def test_expired_requests_reject_never_mismatch(self):
        network, _ = demo_column(0, smoke=True)
        registry = ModelRegistry()
        registry.register(network, name="demo")
        service = TNNService(
            registry,
            InlineWorkerPool(registry.documents()),
            # Long wait forces every request to outlive its deadline.
            policy=BatchPolicy(max_batch=256, max_wait_s=0.05),
        )
        try:
            arity = len(network.input_ids)
            report = check_served(
                service,
                "demo",
                demo_volleys(arity, 10, seed=4),
                deadline_s=0.001,
            )
            assert report.byte_identical, report.summary()
            assert report.rejected.get("deadline", 0) == 10
            assert report.ok == 0
        finally:
            service.close()

    def test_mixed_deadline_traffic_stays_conformant(self):
        network, _ = demo_column(0, smoke=True)
        registry = ModelRegistry()
        registry.register(network, name="demo")
        service = TNNService(
            registry,
            InlineWorkerPool(registry.documents()),
            policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
        )
        try:
            arity = len(network.input_ids)
            report = check_served(
                service,
                "demo",
                demo_volleys(arity, 40, seed=5),
                deadline_s=5.0,  # generous: everything should answer
            )
            assert report.byte_identical, report.summary()
            assert report.ok == 40
        finally:
            service.close()
