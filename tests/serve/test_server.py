"""End-to-end tests of the asyncio NDJSON front-end (inline pool, port 0)."""

import asyncio
import json

import pytest

from repro.core.value import INF
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column
from repro.serve.pool import InlineWorkerPool
from repro.serve.protocol import PROTOCOL, canonical, encode_line, eval_request, ok_response
from repro.serve.registry import ModelRegistry
from repro.serve.server import run_server_async
from repro.serve.service import TNNService


def make_service():
    registry = ModelRegistry()
    registry.register(demo_column(0, smoke=True)[0], name="demo")
    return TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
    )


async def request(reader, writer, message):
    writer.write(encode_line(message))
    await writer.drain()
    return json.loads(await reader.readline())


def run_session(session):
    """Start a server on port 0 and run *session(reader, writer, service)*.

    The session coroutine must end by sending the ``shutdown`` op (or the
    server is shut down for it).
    """

    async def main():
        service = make_service()
        ready = asyncio.get_running_loop().create_future()
        server_task = asyncio.ensure_future(
            run_server_async(service, port=0, ready=ready)
        )
        port = await ready
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            result = await session(reader, writer, service)
        finally:
            await request(reader, writer, {"op": "shutdown"})
            writer.close()
            await asyncio.wait_for(server_task, timeout=15)
        return result

    return asyncio.run(main())


class TestOps:
    def test_health(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "health"})
            assert reply["ok"] and reply["protocol"] == PROTOCOL
            assert reply["status"] == "serving"
            assert reply["models"] == 1
            return reply

        run_session(session)

    def test_models_lists_demo(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "models"})
            [model] = reply["models"]
            assert model["name"] == "demo"
            assert model["id"] == service.registry.resolve("demo").model_id
            assert model["inputs"] and model["outputs"]

        run_session(session)

    def test_metrics_payload(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "metrics"})
            assert reply["ok"]
            assert "serve" in reply and "plan_cache" in reply
            assert "batch_size" in reply["serve"]

        run_session(session)


class TestEval:
    def test_response_is_byte_identical_to_direct(self):
        async def session(reader, writer, service):
            volley = (2, INF)
            writer.write(encode_line(eval_request(5, "demo", volley)))
            await writer.drain()
            line = (await reader.readline()).decode().rstrip("\n")
            [direct] = service.direct("demo", [volley])
            assert line == canonical(ok_response(5, direct))

        run_session(session)

    def test_pipelined_out_of_order_ids(self):
        async def session(reader, writer, service):
            volleys = [(i, 0) for i in range(10)]
            for i, volley in enumerate(volleys):
                writer.write(encode_line(eval_request(i, "demo", volley)))
            await writer.drain()
            replies = {}
            for _ in volleys:
                reply = json.loads(await reader.readline())
                replies[reply["id"]] = reply
            assert sorted(replies) == list(range(10))
            direct = service.direct("demo", volleys)
            for i, row in enumerate(direct):
                assert canonical(replies[i]) == canonical(ok_response(i, row))

        run_session(session)

    def test_unknown_model_error(self):
        async def session(reader, writer, service):
            reply = await request(
                reader, writer, eval_request(1, "missing-model", (0, 1))
            )
            assert reply["ok"] is False and reply["code"] == "no-such-model"
            assert reply["id"] == 1

        run_session(session)

    def test_wrong_arity_error(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, eval_request(2, "demo", (0, 1, 2)))
            assert reply["code"] == "bad-request"

        run_session(session)

    def test_malformed_line_gets_bad_request(self):
        async def session(reader, writer, service):
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False and reply["code"] == "bad-request"
            assert reply["id"] is None
            # The connection survives a bad line.
            health = await request(reader, writer, {"op": "health"})
            assert health["ok"]

        run_session(session)

    def test_blank_lines_ignored(self):
        async def session(reader, writer, service):
            writer.write(b"\n\n")
            reply = await request(reader, writer, {"op": "health"})
            assert reply["ok"]

        run_session(session)


class TestLifecycle:
    def test_shutdown_op_acknowledged_and_drained(self):
        async def main():
            service = make_service()
            ready = asyncio.get_running_loop().create_future()
            server_task = asyncio.ensure_future(
                run_server_async(service, port=0, ready=ready)
            )
            port = await ready
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            reply = await request(reader, writer, {"op": "shutdown"})
            assert reply["ok"] and reply["status"] == "shutting-down"
            writer.close()
            assert await asyncio.wait_for(server_task, timeout=15) == 0
            # Drained: admission is closed afterwards.
            with pytest.raises(Exception):
                service.submit("demo", (0, 1))

        asyncio.run(main())

    def test_port_file_written(self, tmp_path):
        port_file = tmp_path / "port"

        async def main():
            service = make_service()
            ready = asyncio.get_running_loop().create_future()
            server_task = asyncio.ensure_future(
                run_server_async(service, port=0, ready=ready, port_file=str(port_file))
            )
            port = await ready
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await request(reader, writer, {"op": "shutdown"})
            writer.close()
            await asyncio.wait_for(server_task, timeout=15)
            return port

        port = asyncio.run(main())
        assert int(port_file.read_text().strip()) == port

    def test_metrics_out_written(self, tmp_path):
        metrics_file = tmp_path / "metrics.json"

        async def main():
            service = make_service()
            ready = asyncio.get_running_loop().create_future()
            server_task = asyncio.ensure_future(
                run_server_async(
                    service, port=0, ready=ready, metrics_out=str(metrics_file)
                )
            )
            port = await ready
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await request(reader, writer, eval_request(1, "demo", (0, 1)))
            await request(reader, writer, {"op": "shutdown"})
            writer.close()
            await asyncio.wait_for(server_task, timeout=15)

        asyncio.run(main())
        payload = json.loads(metrics_file.read_text())
        assert payload["ok"] and "serve" in payload and "metrics" in payload
