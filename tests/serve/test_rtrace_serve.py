"""Request tracing through the serving stack: spans, retries, telemetry."""

import asyncio
import json
import threading
import time

import pytest

from repro.core.value import INF
from repro.obs import rtrace
from repro.obs.rtrace import canonical_jsonl, well_formed
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import InlineWorkerPool, ProcessWorkerPool
from repro.serve.protocol import ServeError, encode_line, eval_request
from repro.serve.registry import ModelRegistry
from repro.serve.server import run_server_async
from repro.serve.service import TNNService
from repro.serve.stats import PROMETHEUS_CONTENT_TYPE, reset_serve_stats
from repro.serve.top import render_frame, top_main
from repro.testing import check_served


@pytest.fixture(autouse=True)
def clean_observability():
    """Tracing off, flight ring and stats empty, before and after each test."""
    rtrace.enable_rtrace(False)
    rtrace.FLIGHT.clear()
    reset_serve_stats()
    yield
    rtrace.enable_rtrace(False)
    rtrace.FLIGHT.clear()
    reset_serve_stats()


@pytest.fixture()
def registry():
    reg = ModelRegistry()
    reg.register(demo_column(0, smoke=True)[0], name="demo")
    return reg


def make_service(registry, pool=None, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8, max_wait_s=0.002))
    if pool is None:
        pool = InlineWorkerPool(registry.documents())
    return TNNService(registry, pool, **kwargs)


class FlakyPool(InlineWorkerPool):
    """Fails the first *n* submits (as a dead worker would), then recovers."""

    def __init__(self, documents, fail_first=1):
        super().__init__(documents)
        self.failures_left = fail_first

    def submit(self, job):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise ServeError("worker-failure", "synthetic crash")
        super().submit(job)


class LyingPool(InlineWorkerPool):
    """Evaluates correctly, then corrupts every answer — a conformance bug."""

    def submit(self, job):
        original = job.on_done
        job.on_done = lambda rows: original([tuple(0 for _ in r) for r in rows])
        super().submit(job)


def spans_named(trace, name):
    return [s for s in trace.spans if s.name == name]


class TestServiceTracing:
    def test_untraced_by_default(self, registry):
        service = make_service(registry)
        try:
            service.submit("demo", (2, INF)).result(timeout=10)
        finally:
            service.close()
        assert not rtrace.FLIGHT.traces()
        assert service.stats()["rtrace"] == {
            "enabled": False,
            "flight": rtrace.FLIGHT.stats(),
        }

    def test_ok_request_records_full_span_tree(self, registry):
        service = make_service(registry)
        try:
            with rtrace.rtracing():
                service.submit("demo", (2, INF)).result(timeout=10)
        finally:
            service.close()
        [trace] = rtrace.FLIGHT.traces()
        assert trace.outcome == "ok"
        assert not well_formed(trace), well_formed(trace)
        names = [s.name for s in trace.spans]
        assert names[:3] == ["request", "queue", "attempt"]
        # The inline pool reports its evaluation time back as an engine span.
        assert spans_named(trace, "engine")
        [attempt] = spans_named(trace, "attempt")
        assert attempt.attrs["attempt"] == 1

    def test_client_supplied_trace_id_wins(self, registry):
        service = make_service(registry)
        try:
            with rtrace.rtracing():
                service.submit("demo", (2, INF), trace_id="client-7").result(
                    timeout=10
                )
        finally:
            service.close()
        [trace] = rtrace.FLIGHT.traces()
        assert trace.trace_id == "client-7"
        assert {s.trace_id for s in trace.spans} == {"client-7"}

    def test_retry_keeps_one_trace_with_two_attempts(self, registry):
        """The acceptance shape: crash → retry → both attempts, one trace."""
        pool = FlakyPool(registry.documents(), fail_first=1)
        service = make_service(registry, pool=pool, max_attempts=3)
        try:
            with rtrace.rtracing():
                volley = (2, INF)
                result = service.submit("demo", volley).result(timeout=10)
            [direct] = service.direct("demo", [volley])
            assert result == direct  # the retried answer is still right
        finally:
            service.close()
        [trace] = rtrace.FLIGHT.traces()
        assert trace.outcome == "ok"
        assert not well_formed(trace), well_formed(trace)
        attempts = spans_named(trace, "attempt")
        assert [s.attrs["attempt"] for s in attempts] == [1, 2]
        assert attempts[0].attrs["error"] == "synthetic crash"
        assert "error" not in attempts[1].attrs
        # Each attempt was preceded by its own queue span, same trace id.
        assert len(spans_named(trace, "queue")) == 2
        assert {s.trace_id for s in trace.spans} == {trace.trace_id}
        assert rtrace.FLIGHT.stats()["trips"].get("worker-failure") is None

    def test_exhausted_retries_trip_the_flight_recorder(self, registry):
        pool = FlakyPool(registry.documents(), fail_first=10)
        service = make_service(registry, pool=pool, max_attempts=2)
        try:
            with rtrace.rtracing():
                with pytest.raises(ServeError) as err:
                    service.submit("demo", (2, INF)).result(timeout=10)
            assert err.value.code == "worker-failure"
        finally:
            service.close()
        [trace] = rtrace.FLIGHT.traces()
        assert trace.outcome == "worker-failure"
        assert len(spans_named(trace, "attempt")) == 2
        assert rtrace.FLIGHT.stats()["trips"]["worker-failure"] == 1

    def test_overload_is_traced_and_counted(self, registry):
        """Rejected requests appear in both the trace ring and the stats."""
        from repro.network.compile_plan import evaluate_batch

        class ParkingPool:
            """Holds jobs so ``max_pending`` saturates deterministically."""

            def __init__(self):
                self.jobs = []

            def alive_count(self):
                return 1

            def inflight(self):
                return len(self.jobs)

            def submit(self, job):
                self.jobs.append(job)

            def release_all(self, reg):
                jobs, self.jobs = self.jobs, []
                for job in jobs:
                    entry = reg.resolve(job.model_id)
                    job.on_done(evaluate_batch(entry.network, job.matrix))

            def add_model(self, model_id, document):
                pass

            def shutdown(self, timeout=10.0):
                pass

        pool = ParkingPool()
        service = make_service(registry, pool=pool, max_pending=1)
        with rtrace.rtracing():
            held = service.submit("demo", (2, INF))  # takes the only slot
            rejected = 0
            for _ in range(3):
                try:
                    service.submit("demo", (3, INF))
                except ServeError as error:
                    assert error.code == "overloaded"
                    rejected += 1
            # All three must bounce: the parked job keeps pending at 1.
            assert rejected == 3
            deadline = time.monotonic() + 10.0
            while not pool.jobs and time.monotonic() < deadline:
                time.sleep(0.005)
            pool.release_all(registry)
            held.result(timeout=10)
        service.close()
        overloaded = [
            t for t in rtrace.FLIGHT.traces() if t.outcome == "overloaded"
        ]
        assert len(overloaded) == rejected
        for trace in overloaded:
            assert not well_formed(trace), well_formed(trace)
        snapshot = service.stats()
        by_outcome = snapshot["latency_by_outcome"]["demo"]["total"]
        assert by_outcome["overloaded"]["count"] == rejected
        assert by_outcome["ok"]["count"] == 1

    def test_byte_stable_across_two_identical_runs(self, registry):
        """Same requests, fresh service → identical canonical trace bytes."""

        def one_run():
            rtrace.FLIGHT.clear()
            service = make_service(registry)
            try:
                with rtrace.rtracing():
                    for volley in demo_volleys(2, 6, seed=4):
                        service.submit("demo", volley).result(timeout=10)
            finally:
                service.close()
            return canonical_jsonl(rtrace.FLIGHT.traces())

        doc1, doc2 = one_run(), one_run()
        assert doc1 == doc2
        roots = [
            line
            for line in doc1.splitlines()
            if json.loads(line)["parent"] is None
        ]
        assert len(roots) == 6  # one span tree per request


class TestProcessPoolTracing:
    def test_crash_retry_lands_both_attempts_under_one_trace(self, registry):
        """Kill a worker mid-stream; the flight dump shows the retry."""
        pool = ProcessWorkerPool(registry.documents(), n_workers=2)
        service = make_service(
            registry,
            pool=pool,
            policy=BatchPolicy(max_batch=4, max_wait_s=0.002),
            max_attempts=4,
        )
        retried = None
        try:
            with rtrace.rtracing():
                for round_no in range(20):
                    futures = [
                        service.submit("demo", volley)
                        for volley in demo_volleys(2, 8, seed=round_no)
                    ]
                    pool.inject_crash(round_no % 2)
                    for future in futures:
                        try:
                            future.result(timeout=30)
                        except ServeError as error:
                            assert error.code == "worker-failure"
                    retried = next(
                        (
                            t
                            for t in rtrace.FLIGHT.traces()
                            if len(spans_named(t, "attempt")) >= 2
                        ),
                        None,
                    )
                    if retried is not None:
                        break
        finally:
            service.close()
        assert retried is not None, "no crash landed mid-batch in 20 rounds"
        assert not well_formed(retried), well_formed(retried)
        attempts = spans_named(retried, "attempt")
        assert {s.trace_id for s in attempts} == {retried.trace_id}
        assert attempts[0].attrs["error"]
        assert [s.attrs["attempt"] for s in attempts] == list(
            range(1, len(attempts) + 1)
        )

    def test_worker_metrics_piggyback_reaches_the_frontend(self, registry):
        pool = ProcessWorkerPool(registry.documents(), n_workers=1)
        service = make_service(registry, pool=pool)
        try:
            service.submit("demo", (2, INF)).result(timeout=30)
            snapshots = service.worker_metrics()
            assert len(snapshots) == 1
            [snap] = snapshots
            assert snap["pid"] and snap["counters"]
        finally:
            service.close()


class TestCheckServedFlightDump:
    def test_mismatch_attaches_flight_dump(self, registry, tmp_path):
        service = make_service(registry, pool=LyingPool(registry.documents()))
        prefix = tmp_path / "flight"
        try:
            with rtrace.rtracing():
                report = check_served(
                    service,
                    "demo",
                    demo_volleys(2, 4, seed=5),
                    flight_dump=str(prefix),
                )
        finally:
            service.close()
        assert not report.byte_identical
        assert report.flight_paths == [
            str(prefix) + ".jsonl",
            str(prefix) + ".trace.json",
        ]
        dumped = (tmp_path / "flight.jsonl").read_text()
        roots = [
            line
            for line in dumped.splitlines()
            if json.loads(line)["parent"] is None
        ]
        assert len(roots) == 4  # one span tree per volley
        assert "flight recorder dumped" in report.summary()

    def test_clean_sweep_dumps_nothing(self, registry, tmp_path):
        service = make_service(registry)
        prefix = tmp_path / "flight"
        try:
            report = check_served(
                service,
                "demo",
                demo_volleys(2, 4, seed=5),
                flight_dump=str(prefix),
            )
        finally:
            service.close()
        assert report.byte_identical
        assert not report.flight_paths
        assert not (tmp_path / "flight.jsonl").exists()


async def _request(reader, writer, message):
    writer.write(encode_line(message))
    await writer.drain()
    return json.loads(await reader.readline())


def run_session(session, **server_kwargs):
    """Port-0 server harness mirroring tests/serve/test_server.py."""

    async def main():
        reg = ModelRegistry()
        reg.register(demo_column(0, smoke=True)[0], name="demo")
        service = TNNService(
            reg,
            InlineWorkerPool(reg.documents()),
            policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
        )
        ready = asyncio.get_running_loop().create_future()
        server_task = asyncio.ensure_future(
            run_server_async(service, port=0, ready=ready, **server_kwargs)
        )
        port = await ready
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            result = await session(reader, writer, service)
        finally:
            await _request(reader, writer, {"op": "shutdown"})
            writer.close()
            await asyncio.wait_for(server_task, timeout=15)
        return result

    return asyncio.run(main())


class TestServerTelemetry:
    def test_trace_field_echoed_only_when_supplied(self):
        async def session(reader, writer, service):
            with rtrace.rtracing():
                traced = await _request(
                    reader, writer, eval_request(1, "demo", (2, INF), trace="c1")
                )
                plain = await _request(
                    reader, writer, eval_request(2, "demo", (2, INF))
                )
            assert traced["ok"] and traced["trace"] == "c1"
            assert plain["ok"] and "trace" not in plain
            ids = [t.trace_id for t in rtrace.FLIGHT.traces()]
            assert "c1" in ids  # the client id names the server-side trace

        run_session(session)

    def test_traced_response_gets_an_encode_span(self):
        async def session(reader, writer, service):
            with rtrace.rtracing():
                reply = await _request(
                    reader, writer, eval_request(1, "demo", (2, INF), trace="c2")
                )
                assert reply["ok"]
                await asyncio.sleep(0)  # let the response callback finish
            [trace] = [
                t for t in rtrace.FLIGHT.traces() if t.trace_id == "c2"
            ]
            assert spans_named(trace, "encode")
            assert not well_formed(trace), well_formed(trace)

        run_session(session)

    def test_metrics_op_merges_worker_snapshots(self):
        async def session(reader, writer, service):
            await _request(reader, writer, eval_request(1, "demo", (2, INF)))
            reply = await _request(reader, writer, {"op": "metrics"})
            assert reply["ok"]
            workers = reply["workers"]
            # The inline pool has no worker processes to report.
            assert workers["reporting"] == 0
            assert workers["merged"] == {
                "counters": {},
                "timers": {},
                "maxima": {},
            }
            assert reply["serve"]["rtrace"]["enabled"] is False

        run_session(session)

    def test_metrics_text_op_serves_prometheus_format(self):
        async def session(reader, writer, service):
            await _request(reader, writer, eval_request(1, "demo", (2, INF)))
            reply = await _request(reader, writer, {"op": "metrics_text"})
            assert reply["ok"]
            assert reply["content_type"] == PROMETHEUS_CONTENT_TYPE
            text = reply["text"]
            assert "# TYPE repro_serve_latency_seconds histogram" in text
            assert 'le="+Inf"' in text
            assert "repro_serve_pool_inflight" in text
            assert "repro_serve_pending" in text

        run_session(session)


class TestTopDashboard:
    def payload(self):
        return {
            "ok": True,
            "serve": {
                "engine": "native",
                "models": 1,
                "workers_alive": 2,
                "queue_depth": 0,
                "max_pending": 4,
                "queue_peak": 3,
                "requests": 120,
                "responses_ok": 118,
                "retries": 1,
                "rejected": {"overloaded": 2},
                "batch_size": {"batches": 16, "rows": 120, "mean_size": 7.5},
                "latency_by_stage": {
                    "total": {"count": 118, "p50_ms": 1.0, "p90_ms": 2.0,
                              "p99_ms": 4.0, "max_ms": 5.0, "window": 118,
                              "sum_s": 0.2},
                },
                "latency_by_outcome": {
                    "demo": {
                        "total": {
                            "deadline": {"count": 2, "p50_ms": 9.0,
                                         "p90_ms": 9.0, "p99_ms": 9.0,
                                         "max_ms": 9.0, "window": 2,
                                         "sum_s": 0.02},
                        }
                    }
                },
                "rtrace": {
                    "enabled": True,
                    "flight": {"buffered": 5, "capacity": 512,
                               "recorded": 120, "trips": {"deadline-miss": 2}},
                },
                "worker_failures": 1,
                "worker_restarts": 1,
            },
            "workers": {
                "reporting": 2,
                "merged": {"counters": {"eval.calls": 120}},
            },
        }

    def test_render_frame_shows_the_story(self):
        frame = render_frame(self.payload())
        assert "engine=native" in frame
        assert "rejected: overloaded=2" in frame
        assert "demo/deadline" in frame
        assert "workers reporting: 2" in frame
        assert "rtrace: on" in frame and "deadline-miss" in frame
        assert "worker failures: 1" in frame

    def test_render_frame_rates_from_deltas(self):
        previous = self.payload()
        current = self.payload()
        current["serve"]["requests"] = previous["serve"]["requests"] + 50
        frame = render_frame(current, previous=previous, interval=1.0)
        assert "(50/s)" in frame

    def test_top_once_against_live_server(self, capsys):
        """``repro top --once`` polls a real server's metrics op."""
        reg = ModelRegistry()
        reg.register(demo_column(0, smoke=True)[0], name="demo")
        service = TNNService(
            reg,
            InlineWorkerPool(reg.documents()),
            policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
        )
        loop_holder = {}
        started = threading.Event()

        def serve():
            async def main():
                ready = asyncio.get_running_loop().create_future()
                loop_holder["loop"] = asyncio.get_running_loop()
                task = asyncio.ensure_future(
                    run_server_async(service, port=0, ready=ready)
                )
                loop_holder["port"] = await ready
                loop_holder["task"] = task
                started.set()
                try:
                    await task
                except asyncio.CancelledError:
                    pass  # the test cancels the server when it is done

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(timeout=15)
        try:
            code = top_main(
                ["--port", str(loop_holder["port"]), "--once"]
            )
        finally:
            loop_holder["loop"].call_soon_threadsafe(loop_holder["task"].cancel)
            thread.join(timeout=15)
            service.close()
        assert code == 0
        out = capsys.readouterr().out
        assert "repro serve top" in out
        assert "rtrace: off" in out

    def test_top_returns_failure_when_nothing_listens(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert top_main(["--port", str(free_port), "--once"]) == 1
        assert "cannot connect" in capsys.readouterr().out
