"""Hot-swap promotion: atomic alias flip, retirement, promote-under-load.

The acceptance scenario of the training plane's zero-downtime story:
promote an alias while the service is saturated with requests against
it, and assert that (1) nothing is dropped, (2) every response is
byte-identical to a direct evaluation of the fingerprint resolved at its
admission, and (3) the superseded model's cached state is purged.
"""

import threading

import pytest

from repro.network.compile_plan import decode_matrix, evaluate_batch
from repro.obs.metrics import METRICS
from repro.runtime.result_cache import RESULT_CACHE
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import InlineWorkerPool
from repro.serve.protocol import ServeError, canonical, ok_response
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService

ALIAS = "demo@live"


@pytest.fixture(autouse=True)
def clean_result_cache():
    RESULT_CACHE.clear()
    yield
    RESULT_CACHE.clear()


def build_service(**kwargs):
    registry = ModelRegistry()
    old_net, _ = demo_column(0, smoke=True)
    registry.register(old_net, name=ALIAS)
    kwargs.setdefault("policy", BatchPolicy(max_batch=16, max_wait_s=0.001))
    kwargs.setdefault("result_cache", True)
    service = TNNService(
        registry, InlineWorkerPool(registry.documents()), **kwargs
    )
    return service, old_net


def direct_row(network, volley):
    matrix = evaluate_batch(network, [tuple(volley)])
    return tuple(decode_matrix(matrix)[0])


def cached_keys(fingerprint):
    with RESULT_CACHE._lock:
        return [key for key in RESULT_CACHE._entries if key[0] == fingerprint]


class TestPromoteSemantics:
    def test_flip_retires_previous_and_reports(self):
        service, old_net = build_service()
        try:
            new_net, _ = demo_column(1, smoke=True)
            old_fp, new_fp = old_net.fingerprint(), new_net.fingerprint()
            assert old_fp != new_fp
            service.register(new_net)
            summary = service.promote(ALIAS, new_fp)
            assert summary == {
                "alias": ALIAS,
                "model": new_fp,
                "previous": old_fp,
                "warmed": True,
                "retired": old_fp,
            }
            assert service.registry.resolve(ALIAS).model_id == new_fp
            with pytest.raises(ServeError):
                service.registry.resolve(old_fp)
            # The retired document survives in the archive for byte-checks.
            fingerprint, document = service.document(old_fp)
            assert fingerprint == old_fp and document
        finally:
            service.close()

    def test_retire_false_keeps_previous(self):
        service, old_net = build_service()
        try:
            new_net, _ = demo_column(1, smoke=True)
            service.register(new_net)
            summary = service.promote(
                ALIAS, new_net.fingerprint(), retire=False
            )
            assert summary["retired"] is None
            assert (
                service.registry.resolve(old_net.fingerprint()).model_id
                == old_net.fingerprint()
            )
        finally:
            service.close()

    def test_promote_to_unregistered_target_rejected(self):
        service, _old = build_service()
        try:
            with pytest.raises(ServeError) as err:
                service.promote(ALIAS, "f" * 64)
            assert err.value.code == "no-such-model"
        finally:
            service.close()

    def test_self_promotion_is_a_noop(self):
        service, old_net = build_service()
        try:
            summary = service.promote(ALIAS, old_net.fingerprint())
            assert summary["previous"] == summary["model"]
            assert summary["retired"] is None
            assert service.registry.resolve(ALIAS).model_id == old_net.fingerprint()
        finally:
            service.close()

    def test_second_alias_blocks_retirement(self):
        service, old_net = build_service()
        try:
            service.registry.promote("pinned", old_net.fingerprint())
            new_net, _ = demo_column(1, smoke=True)
            service.register(new_net)
            summary = service.promote(ALIAS, new_net.fingerprint())
            assert summary["retired"] is None  # "pinned" still needs it
            assert (
                service.registry.resolve("pinned").model_id
                == old_net.fingerprint()
            )
        finally:
            service.close()

    def test_retired_result_cache_rows_purged(self):
        service, old_net = build_service()
        try:
            old_fp = old_net.fingerprint()
            volleys = demo_volleys(2, 8, seed=4)
            for future in [service.submit(ALIAS, v) for v in volleys]:
                future.result(timeout=10)
            assert cached_keys(old_fp)  # rows were memoized
            retired_before = METRICS.counter("result_cache.evict.retired")
            new_net, _ = demo_column(1, smoke=True)
            service.register(new_net)
            service.promote(ALIAS, new_net.fingerprint())
            assert cached_keys(old_fp) == []
            assert (
                METRICS.counter("result_cache.evict.retired") > retired_before
            )
        finally:
            service.close()


class TestPromoteUnderLoad:
    N_PHASED = 4
    PER_PHASE = 120

    def test_promote_while_saturated(self):
        service, old_net = build_service(max_pending=100_000)
        new_net, _ = demo_column(1, smoke=True)
        old_fp, new_fp = old_net.fingerprint(), new_net.fingerprint()
        networks = {old_fp: old_net, new_fp: new_net}
        volleys = demo_volleys(2, 48, seed=9)
        admitted = []  # (resolved fingerprint, volley, future)
        admitted_lock = threading.Lock()
        errors = []
        half_done = threading.Barrier(self.N_PHASED + 1)
        promoted = threading.Event()
        stop = threading.Event()

        def submit_one(index):
            volley = volleys[index % len(volleys)]
            try:
                future = service.submit(ALIAS, volley)
            except ServeError as exc:  # any drop fails the test
                errors.append(exc)
                return
            with admitted_lock:
                admitted.append((future.model_id, volley, future))

        def phased(offset):
            # Half the stream strictly before the flip, half strictly
            # after — both fingerprints are guaranteed represented.
            for i in range(self.PER_PHASE):
                submit_one(offset + i)
            half_done.wait(timeout=30)
            promoted.wait(timeout=30)
            for i in range(self.PER_PHASE):
                submit_one(offset + self.PER_PHASE + i)

        def continuous():
            # Uninterrupted pressure across the flip itself: the
            # promotion happens while this thread is mid-hammer.
            i = 0
            while not stop.is_set():
                submit_one(i)
                i += 1

        threads = [
            threading.Thread(target=phased, args=(k * 7,))
            for k in range(self.N_PHASED)
        ]
        threads.append(threading.Thread(target=continuous))
        for thread in threads:
            thread.start()
        try:
            half_done.wait(timeout=30)
            service.register(new_net)
            summary = service.promote(ALIAS, new_fp)
            promoted.set()
            assert summary["model"] == new_fp
            assert summary["retired"] == old_fp
        finally:
            promoted.set()
            for thread in threads[:-1]:
                thread.join(timeout=60)
            stop.set()
            threads[-1].join(timeout=60)

        try:
            assert errors == []  # zero rejected admissions
            rows = []
            for fingerprint, volley, future in admitted:
                rows.append((fingerprint, volley, future.result(timeout=30)))
            # Zero dropped: every admitted request resolved with a row.
            assert len(rows) == len(admitted)
            served_fps = {fingerprint for fingerprint, _, _ in rows}
            assert served_fps == {old_fp, new_fp}
            # Byte-exactness against the fingerprint resolved at
            # admission: canonical response bytes must equal a direct
            # local evaluation of that exact model version.
            oracle = {
                (fp, volley): direct_row(networks[fp], volley)
                for fp in served_fps
                for volley in volleys
            }
            for fingerprint, volley, row in rows:
                assert canonical(ok_response(0, row)) == canonical(
                    ok_response(0, oracle[(fingerprint, volley)])
                )
            # The retired fingerprint's memoized rows are gone — even
            # ones re-inserted by completions that straddled the flip.
            assert cached_keys(old_fp) == []
            assert METRICS.counter("result_cache.evict.retired") > 0
            deadline_passed = 0
            while service.pending() > 0 and deadline_passed < 200:
                threading.Event().wait(0.01)
                deadline_passed += 1
            assert service.pending() == 0
        finally:
            service.close()
