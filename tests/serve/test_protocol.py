"""Tests for the serve wire protocol: ∞ <-> null, canonical rendering."""

import json

import pytest

from repro.core.value import INF
from repro.network.compile_plan import MAX_FINITE
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    ServeError,
    canonical,
    encode_line,
    error_response,
    eval_request,
    ok_response,
    params_from_wire,
    params_to_wire,
    parse_request,
    time_from_wire,
    time_to_wire,
    volley_from_wire,
    volley_to_wire,
)


class TestTimeEncoding:
    def test_infinity_is_null(self):
        assert time_to_wire(INF) is None
        assert time_from_wire(None) is INF

    def test_finite_roundtrip(self):
        for value in (0, 1, 7, MAX_FINITE):
            assert time_from_wire(time_to_wire(value)) == value

    def test_volley_roundtrip(self):
        volley = (3, INF, 0)
        assert volley_to_wire(volley) == [3, None, 0]
        assert volley_from_wire([3, None, 0]) == volley

    def test_params_roundtrip(self):
        params = {"mu": INF, "nu": 0}
        assert params_to_wire(params) == {"mu": None, "nu": 0}
        assert params_from_wire({"mu": None, "nu": 0}) == params
        assert params_from_wire(None) == {}

    @pytest.mark.parametrize("bad", [-1, 1.5, "3", True, MAX_FINITE + 1, []])
    def test_invalid_times_rejected(self, bad):
        with pytest.raises(ProtocolError):
            time_from_wire(bad)

    def test_volley_must_be_array(self):
        with pytest.raises(ProtocolError, match="array"):
            volley_from_wire({"x": 1})

    def test_params_must_be_object(self):
        with pytest.raises(ProtocolError, match="object"):
            params_from_wire([1, 2])


class TestCanonical:
    def test_sorted_compact(self):
        assert canonical({"b": 1, "a": [None, 2]}) == '{"a":[null,2],"b":1}'

    def test_key_order_irrelevant(self):
        assert canonical({"x": 1, "y": 2}) == canonical({"y": 2, "x": 1})

    def test_encode_line_framing(self):
        line = encode_line({"op": "health"})
        assert line.endswith(b"\n")
        assert json.loads(line) == {"op": "health"}

    def test_ok_response_is_deterministic(self):
        a = canonical(ok_response(4, (1, INF)))
        b = canonical(ok_response(4, (1, INF)))
        assert a == b == '{"id":4,"ok":true,"outputs":[1,null]}'


class TestMessages:
    def test_eval_request_shape(self):
        message = eval_request(9, "demo", (1, INF), deadline_ms=50)
        assert message["op"] == "eval"
        assert message["volley"] == [1, None]
        assert message["deadline_ms"] == 50
        assert "params" not in message

    def test_error_response_code_checked(self):
        response = error_response(1, "overloaded", "queue full")
        assert response["ok"] is False
        with pytest.raises(ValueError, match="unknown serve error code"):
            error_response(1, "nope", "x")

    def test_serve_error_code_checked(self):
        error = ServeError("deadline", "late")
        assert error.code == "deadline"
        with pytest.raises(ValueError, match="unknown serve error code"):
            ServeError("weird", "x")

    def test_all_error_codes_constructible(self):
        for code in ERROR_CODES:
            assert error_response(None, code, "m")["code"] == code


class TestParseRequest:
    def test_eval_parsed_times(self):
        line = encode_line(eval_request(3, "demo", (2, INF)))
        message = parse_request(line)
        assert message["volley_times"] == (2, INF)
        assert message["params_times"] == {}

    def test_all_ops_accepted(self):
        required = {
            "eval": {"id": 1, "model": "m", "volley": [1]},
            "train": {"id": 1, "volley": [1]},
            "promote": {"id": 1, "alias": "a@live", "model": "m"},
            "model_doc": {"model": "m"},
        }
        for op in OPS:
            message = {"op": op, **required.get(op, {})}
            assert parse_request(json.dumps(message))["op"] == op

    @pytest.mark.parametrize(
        "raw",
        [
            "{not json",
            '"just a string"',
            '{"op": "mystery"}',
            '{"op": "eval", "model": "m", "volley": [1]}',  # no id
            '{"op": "eval", "id": 1, "volley": [1]}',  # no model
            '{"op": "eval", "id": 1, "model": "m", "volley": [-2]}',
            '{"op": "eval", "id": 1, "model": "m", "volley": [1], "deadline_ms": -5}',
            '{"op": "eval", "id": 1, "model": "m", "volley": [1], "deadline_ms": true}',
        ],
    )
    def test_malformed_rejected(self, raw):
        with pytest.raises(ProtocolError):
            parse_request(raw)
