"""Hypothesis property: ``evaluate_batch`` is split/merge-invariant.

The micro-batcher's correctness rests on one algebraic property of the
compiled engine: evaluating a concatenation of volleys equals
concatenating the evaluations of any partition of them.  If that ever
broke, coalesced requests could receive answers that differ from the
per-request path — the exact failure the serving conformance contract
forbids.  This pins the property directly, independent of any service
machinery.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.value import INF
from repro.network.compile_plan import decode_matrix, evaluate_batch
from repro.serve.demo import demo_column
from repro.testing.generators import generate_case

NETWORK, _VOLLEY = demo_column(0, smoke=True)
ARITY = len(NETWORK.input_ids)

times = st.one_of(st.integers(min_value=0, max_value=50), st.just(INF))
volleys_strategy = st.lists(
    st.tuples(*([times] * ARITY)), min_size=1, max_size=24
)


@settings(max_examples=60, deadline=None)
@given(volleys=volleys_strategy, data=st.data())
def test_split_merge_invariance(volleys, data):
    """One big batch == any two-way split == per-volley evaluation."""
    whole = evaluate_batch(NETWORK, volleys)

    # Per-volley: the degenerate split the batcher's policy max_batch=1 uses.
    singles = np.vstack([evaluate_batch(NETWORK, [v]) for v in volleys])
    np.testing.assert_array_equal(whole, singles)

    # Arbitrary two-way split: what the micro-batcher actually does when
    # a stream of requests lands across two batch windows.
    cut = data.draw(st.integers(min_value=0, max_value=len(volleys)))
    left, right = volleys[:cut], volleys[cut:]
    parts = [evaluate_batch(NETWORK, part) for part in (left, right) if part]
    np.testing.assert_array_equal(whole, np.vstack(parts))


@settings(max_examples=30, deadline=None)
@given(
    volleys=volleys_strategy,
    permutation_seed=st.integers(min_value=0, max_value=2**16),
)
def test_row_order_equivariance(volleys, permutation_seed):
    """Shuffling batch rows shuffles results identically (no cross-talk)."""
    rng = np.random.default_rng(permutation_seed)
    order = rng.permutation(len(volleys))
    whole = evaluate_batch(NETWORK, volleys)
    shuffled = evaluate_batch(NETWORK, [volleys[i] for i in order])
    np.testing.assert_array_equal(whole[order], shuffled)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=31))
def test_invariance_across_generator_families(seed):
    """The property holds on generator-family networks, not just the demo."""
    case = generate_case(seed, smoke=True)
    volleys = list(case.volleys)
    params = case.params or None
    whole = evaluate_batch(case.network, volleys, params=params)
    singles = np.vstack(
        [evaluate_batch(case.network, [v], params=params) for v in volleys]
    )
    np.testing.assert_array_equal(whole, singles)
    # Decoded rows survive the same split (what the service hands back).
    assert decode_matrix(whole) == decode_matrix(singles)
