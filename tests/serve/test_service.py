"""Tests for the service core: admission, batching, deadlines, retry."""

import threading
import time

import pytest

from repro.core.value import INF
from repro.network.compile_plan import evaluate_batch
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import InlineWorkerPool
from repro.serve.protocol import ServeError
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService, _params_key


@pytest.fixture()
def registry():
    reg = ModelRegistry()
    reg.register(demo_column(0, smoke=True)[0], name="demo")
    return reg


def make_service(registry, **kwargs):
    kwargs.setdefault("policy", BatchPolicy(max_batch=8, max_wait_s=0.002))
    return TNNService(registry, InlineWorkerPool(registry.documents()), **kwargs)


class HoldingPool:
    """A pool stub that parks jobs until the test releases them."""

    def __init__(self):
        self.jobs = []
        self.lock = threading.Lock()

    def alive_count(self):
        return 1

    def submit(self, job):
        with self.lock:
            self.jobs.append(job)

    def wait_for(self, n, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self.lock:
                if len(self.jobs) >= n:
                    return
            time.sleep(0.005)
        raise AssertionError(f"pool never saw {n} job(s)")

    def release_all(self, registry):
        with self.lock:
            jobs, self.jobs = self.jobs, []
        for job in jobs:
            entry = registry.resolve(job.model_id)
            job.on_done(evaluate_batch(entry.network, job.matrix))

    def add_model(self, model_id, document):
        pass

    def shutdown(self, timeout=10.0):
        pass


class FlakyPool(InlineWorkerPool):
    """Fails the first *n* submits (as a dead worker would), then recovers."""

    def __init__(self, documents, fail_first=1):
        super().__init__(documents)
        self.failures_left = fail_first
        self.attempts = 0

    def submit(self, job):
        self.attempts += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise ServeError("worker-failure", "synthetic crash")
        super().submit(job)


class TestHappyPath:
    def test_served_equals_direct(self, registry):
        service = make_service(registry)
        try:
            network = registry.resolve("demo").network
            volleys = demo_volleys(len(network.input_ids), 24, seed=1)
            futures = [service.submit("demo", v) for v in volleys]
            results = [f.result(timeout=10) for f in futures]
            assert results == service.direct("demo", volleys)
        finally:
            service.close()

    def test_resolves_by_fingerprint_prefix(self, registry):
        service = make_service(registry)
        try:
            model_id = registry.resolve("demo").model_id
            future = service.submit(model_id[:12], (0, 1))
            assert future.result(timeout=10) == service.direct("demo", [(0, 1)])[0]
        finally:
            service.close()

    def test_pending_drains_to_zero(self, registry):
        service = make_service(registry)
        try:
            futures = [service.submit("demo", (i, 0)) for i in range(10)]
            for f in futures:
                f.result(timeout=10)
            for _ in range(100):
                if service.pending() == 0:
                    break
                time.sleep(0.01)
            assert service.pending() == 0
        finally:
            service.close()


class TestValidation:
    def test_unknown_model(self, registry):
        service = make_service(registry)
        try:
            with pytest.raises(ServeError) as err:
                service.submit("nope", (0, 1))
            assert err.value.code == "no-such-model"
        finally:
            service.close()

    def test_wrong_arity(self, registry):
        service = make_service(registry)
        try:
            with pytest.raises(ServeError) as err:
                service.submit("demo", (0, 1, 2))
            assert err.value.code == "bad-request"
        finally:
            service.close()

    def test_unexpected_params(self, registry):
        service = make_service(registry)
        try:
            with pytest.raises(ServeError) as err:
                service.submit("demo", (0, 1), params={"mu": INF})
            assert err.value.code == "bad-request"
        finally:
            service.close()

    def test_negative_time(self, registry):
        service = make_service(registry)
        try:
            with pytest.raises(ServeError) as err:
                service.submit("demo", (-1, 1))
            assert err.value.code == "bad-request"
        finally:
            service.close()


class TestBackpressure:
    def test_overload_rejected_synchronously(self, registry):
        pool = HoldingPool()
        service = TNNService(
            registry,
            pool,
            policy=BatchPolicy(max_batch=1, max_wait_s=0),
            max_pending=2,
        )
        try:
            f1 = service.submit("demo", (0, 1))
            f2 = service.submit("demo", (1, 2))
            with pytest.raises(ServeError) as err:
                service.submit("demo", (2, 3))
            assert err.value.code == "overloaded"
            pool.wait_for(2)
            pool.release_all(registry)
            direct = service.direct("demo", [(0, 1), (1, 2)])
            assert [f1.result(10), f2.result(10)] == direct
        finally:
            service.close()

    def test_slots_recycle_after_completion(self, registry):
        service = make_service(registry, max_pending=4)
        try:
            for round_ in range(3):
                futures = [service.submit("demo", (i, round_)) for i in range(4)]
                for f in futures:
                    f.result(timeout=10)
                for _ in range(100):
                    if service.pending() == 0:
                        break
                    time.sleep(0.01)
        finally:
            service.close()


class TestDeadlines:
    def test_expired_at_dispatch_is_rejected(self, registry):
        service = TNNService(
            registry,
            InlineWorkerPool(registry.documents()),
            policy=BatchPolicy(max_batch=64, max_wait_s=0.1),
        )
        try:
            future = service.submit("demo", (0, 1), deadline_s=0.01)
            with pytest.raises(ServeError) as err:
                future.result(timeout=10)
            assert err.value.code == "deadline"
            for _ in range(100):
                if service.pending() == 0:
                    break
                time.sleep(0.01)
            assert service.pending() == 0
        finally:
            service.close()

    def test_generous_deadline_still_answers(self, registry):
        service = make_service(registry, default_deadline_s=30.0)
        try:
            future = service.submit("demo", (2, 2))
            assert future.result(timeout=10) == service.direct("demo", [(2, 2)])[0]
        finally:
            service.close()


class TestRetry:
    def test_worker_failure_is_retried_transparently(self, registry):
        pool = FlakyPool(registry.documents(), fail_first=1)
        service = TNNService(
            registry,
            pool,
            policy=BatchPolicy(max_batch=4, max_wait_s=0.001),
            max_attempts=2,
        )
        try:
            volleys = [(0, 1), (2, 3), (1, 1)]
            futures = [service.submit("demo", v) for v in volleys]
            results = [f.result(timeout=10) for f in futures]
            assert results == service.direct("demo", volleys)
            assert pool.attempts >= 2  # first failed, second succeeded
        finally:
            service.close()

    def test_retry_budget_is_bounded(self, registry):
        pool = FlakyPool(registry.documents(), fail_first=100)
        service = TNNService(
            registry,
            pool,
            policy=BatchPolicy(max_batch=4, max_wait_s=0.001),
            max_attempts=2,
        )
        try:
            future = service.submit("demo", (0, 1))
            with pytest.raises(ServeError) as err:
                future.result(timeout=10)
            assert err.value.code == "worker-failure"
            assert pool.attempts == 2
            for _ in range(100):
                if service.pending() == 0:
                    break
                time.sleep(0.01)
            assert service.pending() == 0
        finally:
            service.close()


class TestLifecycle:
    def test_submit_after_close_rejected(self, registry):
        service = make_service(registry)
        service.close()
        with pytest.raises(ServeError) as err:
            service.submit("demo", (0, 1))
        assert err.value.code == "shutting-down"

    def test_close_without_drain_fails_queued_work(self, registry):
        pool = HoldingPool()
        service = TNNService(
            registry,
            pool,
            policy=BatchPolicy(max_batch=64, max_wait_s=5.0),
        )
        future = service.submit("demo", (0, 1))
        service.close(drain=False, timeout=2.0)
        with pytest.raises(ServeError) as err:
            future.result(timeout=5)
        assert err.value.code == "shutting-down"
        assert service.pending() == 0

    def test_close_is_idempotent(self, registry):
        service = make_service(registry)
        service.close()
        service.close()

    def test_register_ships_to_pool(self, registry):
        service = make_service(registry)
        try:
            network, _ = demo_column(9, smoke=True)
            entry = service.register(network, name="nine")
            future = service.submit("nine", (0, 1))
            assert (
                future.result(timeout=10)
                == service.direct(entry.model_id, [(0, 1)])[0]
            )
        finally:
            service.close()


class TestStats:
    def test_stats_shape(self, registry):
        service = make_service(registry)
        try:
            futures = [service.submit("demo", (i, 0)) for i in range(6)]
            for f in futures:
                f.result(timeout=10)
            stats = service.stats()
            assert stats["models"] == 1
            assert stats["policy"]["max_batch"] == 8
            assert stats["batch_size"]["rows"] >= 6
            assert set(stats["latency"]) >= {"p50_ms", "p90_ms", "p99_ms"}
            assert stats["workers_alive"] == 1
        finally:
            service.close()


class TestParamsKey:
    def test_canonical_and_order_free(self):
        assert _params_key({"b": INF, "a": 0}) == _params_key({"a": 0, "b": INF})
        assert _params_key({"mu": INF}) == '{"mu":null}'
        assert _params_key({}) == "{}"
