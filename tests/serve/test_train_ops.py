"""Wire-level tests of the training-plane ops: train, lineage, promote,
model_doc, and the training telemetry sections."""

import asyncio
import json
import random

import numpy as np
import pytest

from repro.learning.stdp import STDPRule
from repro.network import serialize
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction
from repro.serve.batcher import BatchPolicy
from repro.serve.pool import InlineWorkerPool
from repro.serve.protocol import encode_line
from repro.serve.registry import ModelRegistry
from repro.serve.server import run_server_async
from repro.serve.service import TNNService
from repro.train import TrainingPlane

ALIAS = "tiny@live"
BASE = ResponseFunction.step(amplitude=1, width=8)
N_INPUTS = 8


def make_column(seed=0):
    rng = random.Random(seed)
    weights = np.array(
        [[rng.randint(1, 3) for _ in range(N_INPUTS)] for _ in range(3)]
    )
    return Column(weights, threshold=6, base_response=BASE)


def make_trained_service():
    registry = ModelRegistry()
    service = TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
    )
    plane = TrainingPlane(
        service,
        make_column(),
        alias=ALIAS,
        rule=STDPRule(a_plus=1, a_minus=1),
        seed=3,
        snapshot_every=5,
        model_name="tiny",
    )
    service.training = plane
    plane.start()
    return service


def make_plain_service():
    registry = ModelRegistry()
    from repro.serve.demo import demo_column

    registry.register(demo_column(0, smoke=True)[0], name="demo")
    return TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=8, max_wait_s=0.001),
    )


async def request(reader, writer, message):
    writer.write(encode_line(message))
    await writer.drain()
    return json.loads(await reader.readline())


def run_session(session, *, make_service=make_trained_service):
    async def main():
        service = make_service()
        ready = asyncio.get_running_loop().create_future()
        server_task = asyncio.ensure_future(
            run_server_async(service, port=0, ready=ready)
        )
        port = await ready
        # Serialized documents can exceed asyncio's 64 KiB default
        # readline limit; model_doc clients must raise it.
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", port, limit=16 << 20
        )
        try:
            result = await session(reader, writer, service)
        finally:
            await request(reader, writer, {"op": "shutdown"})
            writer.close()
            await asyncio.wait_for(server_task, timeout=15)
        return result

    return asyncio.run(main())


def training_volleys(count, seed=1):
    rng = random.Random(seed)
    return [
        [rng.randint(0, 2) for _ in range(N_INPUTS)] for _ in range(count)
    ]


async def wait_presented(service, count, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while service.training.stats()["presented"] < count:
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"plane presented {service.training.stats()['presented']} "
                f"of {count}"
            )
        await asyncio.sleep(0.02)


class TestTrainOp:
    def test_train_accepted_and_consumed(self):
        async def session(reader, writer, service):
            for i, volley in enumerate(training_volleys(12)):
                reply = await request(
                    reader,
                    writer,
                    {"op": "train", "id": i, "volley": volley, "label": 0},
                )
                assert reply == {"id": i, "ok": True, "accepted": True}
            await wait_presented(service, 12)

        run_session(session)

    def test_wrong_arity_rejected(self):
        async def session(reader, writer, service):
            reply = await request(
                reader, writer, {"op": "train", "id": 1, "volley": [0, 1]}
            )
            assert reply["ok"] is False and reply["code"] == "bad-request"
            assert str(N_INPUTS) in reply["error"]

        run_session(session)

    def test_train_without_plane_rejected(self):
        async def session(reader, writer, service):
            reply = await request(
                reader, writer, {"op": "train", "id": 1, "volley": [0, 1]}
            )
            assert reply["ok"] is False and reply["code"] == "bad-request"
            assert "training plane" in reply["error"]

        run_session(session, make_service=make_plain_service)


class TestLineageOp:
    def test_full_document(self):
        async def session(reader, writer, service):
            for i, volley in enumerate(training_volleys(10)):
                await request(
                    reader, writer, {"op": "train", "id": i, "volley": volley}
                )
            await wait_presented(service, 10)
            reply = await request(reader, writer, {"op": "lineage", "id": 90})
            assert reply["ok"] and reply["id"] == 90
            lineage = reply["lineage"]
            assert lineage["format"] == "repro.lineage/1"
            assert lineage["alias"] == ALIAS
            assert lineage["snapshots"] >= 2  # seed + at least one cadence
            assert lineage["records"][0]["parent"] is None
            assert lineage["head"] == service.training.live_fingerprint

        run_session(session)

    def test_chain_for_one_model(self):
        async def session(reader, writer, service):
            live = service.training.live_fingerprint
            reply = await request(
                reader, writer, {"op": "lineage", "model": live}
            )
            assert reply["ok"]
            assert reply["lineage"]["records"][-1]["child"] == live

        run_session(session)

    def test_unknown_model_rejected(self):
        async def session(reader, writer, service):
            reply = await request(
                reader, writer, {"op": "lineage", "model": "f" * 64}
            )
            assert reply["ok"] is False and reply["code"] == "no-such-model"

        run_session(session)

    def test_without_plane_rejected(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "lineage"})
            assert reply["ok"] is False and reply["code"] == "bad-request"

        run_session(session, make_service=make_plain_service)


class TestPromoteOp:
    def test_self_promotion_over_the_wire(self):
        async def session(reader, writer, service):
            live = service.training.live_fingerprint
            reply = await request(
                reader,
                writer,
                {"op": "promote", "id": 7, "alias": ALIAS, "model": live},
            )
            assert reply["ok"] and reply["id"] == 7
            assert reply["alias"] == ALIAS
            assert reply["model"] == live
            assert reply["warmed"] is True
            assert reply["retired"] is None

        run_session(session)

    def test_unknown_target_rejected(self):
        async def session(reader, writer, service):
            reply = await request(
                reader,
                writer,
                {"op": "promote", "id": 8, "alias": ALIAS, "model": "f" * 64},
            )
            assert reply["ok"] is False and reply["code"] == "no-such-model"

        run_session(session)


class TestModelDocOp:
    def test_document_rebuilds_to_the_same_fingerprint(self):
        async def session(reader, writer, service):
            live = service.training.live_fingerprint
            reply = await request(
                reader, writer, {"op": "model_doc", "id": 3, "model": ALIAS}
            )
            assert reply["ok"] and reply["model"] == live
            rebuilt = serialize.loads(reply["document"])
            assert rebuilt.fingerprint() == live

        run_session(session)

    def test_unknown_model_rejected(self):
        async def session(reader, writer, service):
            reply = await request(
                reader, writer, {"op": "model_doc", "model": "f" * 64}
            )
            assert reply["ok"] is False and reply["code"] == "no-such-model"

        run_session(session)


class TestTelemetry:
    def test_eval_with_want_model_id(self):
        async def session(reader, writer, service):
            live = service.training.live_fingerprint
            volley = [0] * N_INPUTS
            reply = await request(
                reader,
                writer,
                {
                    "op": "eval",
                    "id": 1,
                    "model": ALIAS,
                    "volley": volley,
                    "want_model_id": True,
                },
            )
            assert reply["ok"] and reply["model"] == live

        run_session(session)

    def test_models_op_reports_aliases(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "models"})
            assert reply["ok"]
            assert reply["aliases"][ALIAS] == service.training.live_fingerprint

        run_session(session)

    def test_metrics_training_section(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "metrics"})
            training = reply["serve"]["training"]
            assert training["alias"] == ALIAS
            assert training["live"] == service.training.live_fingerprint

        run_session(session)

    def test_metrics_text_training_gauges(self):
        async def session(reader, writer, service):
            reply = await request(reader, writer, {"op": "metrics_text"})
            assert reply["ok"]
            text = reply["text"]
            for gauge in (
                "repro_training_presented",
                "repro_training_applied",
                "repro_training_snapshots",
                "repro_training_promotions",
                "repro_training_queue_depth",
                "repro_training_queue_dropped",
            ):
                assert gauge in text

        run_session(session)
