"""Tests for the sharded worker pool (worker body, process pool, inline)."""

import multiprocessing as mp
import threading

import numpy as np
import pytest

from repro.network.compile_plan import INF_I64, evaluate_batch
from repro.serve.demo import demo_column
from repro.serve.pool import (
    InlineWorkerPool,
    Job,
    ProcessWorkerPool,
    _decode_params,
    _worker_main,
)
from repro.serve.protocol import ServeError
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register(demo_column(0, smoke=True)[0], name="demo")
    return reg


@pytest.fixture(scope="module")
def model_id(registry):
    return registry.resolve("demo").model_id


def encoded_volleys(network, volleys):
    from repro.network.compile_plan import encode_volleys

    return encode_volleys(volleys, arity=len(network.input_ids))


class TestDecodeParams:
    def test_sentinel_roundtrip(self):
        from repro.core.value import INF

        assert _decode_params({"mu": INF_I64, "nu": 0}) == {"mu": INF, "nu": 0}


class TestWorkerBody:
    """Run ``_worker_main`` in a thread over a real duplex pipe.

    This covers the exact code a child process executes — load, verify
    fingerprint, warm, serve — inside this process where coverage sees it.
    """

    def run_worker(self, registry):
        parent, child = mp.Pipe(duplex=True)
        thread = threading.Thread(
            target=_worker_main,
            args=(child, registry.documents(), True),
            daemon=True,
        )
        thread.start()
        ready = parent.recv()
        assert ready[0] == "ready"
        return parent, thread

    def test_ready_lists_models(self, registry, model_id):
        parent, thread = self.run_worker(registry)
        try:
            parent.send(("ping", 42))
            assert parent.recv() == ("pong", 42)
        finally:
            parent.send(("stop",))
            thread.join(timeout=5)

    def test_eval_matches_direct(self, registry, model_id):
        network = registry.resolve("demo").network
        matrix = encoded_volleys(network, [(0, 1), (2, 3)])
        parent, thread = self.run_worker(registry)
        try:
            parent.send(("eval", 7, model_id, matrix, {}))
            op, job_id, result = parent.recv()
            assert (op, job_id) == ("ok", 7)
            np.testing.assert_array_equal(
                result, evaluate_batch(network, matrix)
            )
        finally:
            parent.send(("stop",))
            thread.join(timeout=5)

    def test_unknown_model_is_an_error_reply(self, registry):
        parent, thread = self.run_worker(registry)
        try:
            parent.send(("eval", 1, "f" * 64, np.zeros((1, 2), np.int64), {}))
            op, job_id, reason = parent.recv()
            assert op == "err" and "not loaded" in reason
        finally:
            parent.send(("stop",))
            thread.join(timeout=5)

    def test_load_op_adds_model(self, registry):
        network, _ = demo_column(5, smoke=True)
        from repro.network import serialize

        parent, thread = self.run_worker(registry)
        try:
            parent.send(("load", network.fingerprint(), serialize.dumps(network)))
            op, model_id, warmups = parent.recv()
            assert (op, model_id) == ("loaded", network.fingerprint())
            assert warmups["int64"] == warmups["native"] == 2
            matrix = encoded_volleys(network, [(1, 2)])
            parent.send(("eval", 2, network.fingerprint(), matrix, {}))
            op, _job, result = parent.recv()
            assert op == "ok"
            np.testing.assert_array_equal(result, evaluate_batch(network, matrix))
        finally:
            parent.send(("stop",))
            thread.join(timeout=5)

    def test_unknown_op_reported(self, registry):
        parent, thread = self.run_worker(registry)
        try:
            parent.send(("mystery",))
            op, _job, reason = parent.recv()
            assert op == "err" and "mystery" in reason
        finally:
            parent.send(("stop",))
            thread.join(timeout=5)

    def test_fingerprint_mismatch_rejected(self, registry):
        from repro.network import serialize

        network, _ = demo_column(6, smoke=True)
        parent, child = mp.Pipe(duplex=True)
        with pytest.raises(ValueError, match="does not match model id"):
            _worker_main(child, {"0" * 64: serialize.dumps(network)}, True)


def _completion_recorder():
    done = threading.Event()
    box = {}

    def on_done(result):
        box["result"] = result
        done.set()

    def on_fail(reason):
        box["reason"] = reason
        done.set()

    return done, box, on_done, on_fail


class TestProcessPool:
    def test_eval_and_crash_restart(self, registry, model_id):
        network = registry.resolve("demo").network
        pool = ProcessWorkerPool(registry.documents(), n_workers=2)
        try:
            assert pool.alive_count() == 2
            from repro.core.value import INF

            matrix = encoded_volleys(network, [(0, 1), (2, INF)])

            done, box, on_done, on_fail = _completion_recorder()
            pool.submit(Job(1, model_id, matrix, {}, on_done, on_fail))
            assert done.wait(timeout=20), "no completion from worker"
            np.testing.assert_array_equal(
                box["result"], evaluate_batch(network, matrix)
            )

            # Crash a worker; the pool must notice and restart it.
            pool.inject_crash(0)
            deadline = threading.Event()
            for _ in range(200):
                if pool.restarts >= 1 and pool.alive_count() == 2:
                    break
                deadline.wait(timeout=0.05)
            assert pool.restarts >= 1
            assert pool.alive_count() == 2

            # The restarted worker serves correctly.
            done2, box2, on_done2, on_fail2 = _completion_recorder()
            pool.submit(Job(2, model_id, matrix, {}, on_done2, on_fail2))
            assert done2.wait(timeout=20)
            np.testing.assert_array_equal(
                box2["result"], evaluate_batch(network, matrix)
            )
        finally:
            pool.shutdown()

    def test_submit_after_shutdown_rejected(self, registry, model_id):
        pool = ProcessWorkerPool(registry.documents(), n_workers=1)
        pool.shutdown()
        done, _box, on_done, on_fail = _completion_recorder()
        with pytest.raises(ServeError, match="shutting down"):
            pool.submit(
                Job(1, model_id, np.zeros((1, 2), np.int64), {}, on_done, on_fail)
            )

    def test_needs_at_least_one_worker(self, registry):
        with pytest.raises(ValueError, match="at least one"):
            ProcessWorkerPool(registry.documents(), n_workers=0)


class TestWarmBarrier:
    def test_wait_warm_idle_pool(self, registry):
        pool = ProcessWorkerPool(registry.documents(), n_workers=2)
        try:
            assert pool.wait_warm(timeout=20.0)
        finally:
            pool.shutdown()

    def test_wait_warm_after_load_serves_immediately(self, registry):
        from repro.network import serialize

        network, _ = demo_column(8, smoke=True)
        pool = ProcessWorkerPool(registry.documents(), n_workers=2)
        try:
            pool.add_model(network.fingerprint(), serialize.dumps(network))
            # The barrier orders behind the pipelined load on every
            # worker (FIFO pipes), so a post-barrier eval cannot race it.
            assert pool.wait_warm(timeout=20.0)
            matrix = encoded_volleys(network, [(1, 2)])
            done, box, on_done, on_fail = _completion_recorder()
            pool.submit(
                Job(1, network.fingerprint(), matrix, {}, on_done, on_fail)
            )
            assert done.wait(timeout=20)
            np.testing.assert_array_equal(
                box["result"], evaluate_batch(network, matrix)
            )
        finally:
            pool.shutdown()

    def test_inline_pool_is_always_warm(self, registry):
        pool = InlineWorkerPool(registry.documents())
        assert pool.wait_warm() is True


class TestEngines:
    def test_ready_reports_warmups(self, registry):
        parent, child = mp.Pipe(duplex=True)
        thread = threading.Thread(
            target=_worker_main,
            args=(child, registry.documents(), True),
            daemon=True,
        )
        thread.start()
        try:
            ready = parent.recv()
            assert ready[0] == "ready"
            assert ready[3] == {"int64": 1, "native": 1}
        finally:
            parent.send(("stop",))
            thread.join(timeout=5)

    def test_worker_int64_engine_matches_native(self, registry, model_id):
        from repro.core.value import INF

        network = registry.resolve("demo").network
        matrix = encoded_volleys(network, [(0, 1), (2, 3), (INF, 0)])
        results = {}
        for engine in ("native", "int64"):
            parent, child = mp.Pipe(duplex=True)
            thread = threading.Thread(
                target=_worker_main,
                args=(child, registry.documents(), True, engine),
                daemon=True,
            )
            thread.start()
            try:
                assert parent.recv()[0] == "ready"
                parent.send(("eval", 1, model_id, matrix, {}))
                op, _job, result = parent.recv()
                assert op == "ok"
                results[engine] = result
            finally:
                parent.send(("stop",))
                thread.join(timeout=5)
        np.testing.assert_array_equal(results["native"], results["int64"])
        np.testing.assert_array_equal(
            results["native"], evaluate_batch(network, matrix)
        )

    def test_bad_engine_rejected(self, registry):
        with pytest.raises(ValueError, match="engine"):
            InlineWorkerPool(registry.documents(), engine="tpu")
        with pytest.raises(ValueError, match="engine"):
            ProcessWorkerPool(registry.documents(), engine="tpu")

    def test_inline_pool_warmups_and_engine(self, registry):
        pool = InlineWorkerPool(registry.documents())
        assert pool.engine == "native"
        assert pool.warmups() == [{"int64": 1, "native": 1}]


class TestInlinePool:
    def test_eval_matches_direct(self, registry, model_id):
        network = registry.resolve("demo").network
        pool = InlineWorkerPool(registry.documents())
        matrix = encoded_volleys(network, [(3, 0)])
        done, box, on_done, on_fail = _completion_recorder()
        pool.submit(Job(1, model_id, matrix, {}, on_done, on_fail))
        assert done.is_set()  # synchronous
        np.testing.assert_array_equal(box["result"], evaluate_batch(network, matrix))

    def test_int64_engine_eval(self, registry, model_id):
        network = registry.resolve("demo").network
        pool = InlineWorkerPool(registry.documents(), engine="int64")
        matrix = encoded_volleys(network, [(2, 5)])
        done, box, on_done, on_fail = _completion_recorder()
        pool.submit(Job(1, model_id, matrix, {}, on_done, on_fail))
        np.testing.assert_array_equal(box["result"], evaluate_batch(network, matrix))

    def test_unknown_model_fails_job(self, registry):
        pool = InlineWorkerPool(registry.documents())
        done, box, on_done, on_fail = _completion_recorder()
        pool.submit(Job(1, "f" * 64, np.zeros((1, 2), np.int64), {}, on_done, on_fail))
        assert "not loaded" in box["reason"]

    def test_add_model(self, registry):
        from repro.network import serialize

        network, _ = demo_column(7, smoke=True)
        pool = InlineWorkerPool(registry.documents())
        pool.add_model(network.fingerprint(), serialize.dumps(network))
        matrix = encoded_volleys(network, [(1, 1)])
        done, box, on_done, on_fail = _completion_recorder()
        pool.submit(Job(1, network.fingerprint(), matrix, {}, on_done, on_fail))
        np.testing.assert_array_equal(box["result"], evaluate_batch(network, matrix))

    def test_no_crashable_workers(self, registry):
        pool = InlineWorkerPool(registry.documents())
        with pytest.raises(RuntimeError, match="no crashable"):
            pool.inject_crash(0)

    def test_shutdown_stops_admission(self, registry, model_id):
        pool = InlineWorkerPool(registry.documents())
        pool.shutdown()
        assert pool.alive_count() == 0
        done, _box, on_done, on_fail = _completion_recorder()
        with pytest.raises(ServeError, match="shutting down"):
            pool.submit(
                Job(1, model_id, np.zeros((1, 2), np.int64), {}, on_done, on_fail)
            )
