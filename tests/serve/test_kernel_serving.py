"""Serving stdlib kernel demos: registration, targeting, byte-identity."""

import asyncio

from repro.kernels import KernelError, demo_network, kernel_names
from repro.serve.batcher import BatchPolicy
from repro.serve.loadgen import run_loadgen
from repro.serve.pool import InlineWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.server import run_server_async
from repro.serve.service import TNNService


def make_kernel_service(*names):
    registry = ModelRegistry()
    for name in names:
        registry.register(demo_network(name), name=f"kernel:{name}")
    return TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=16, max_wait_s=0.001),
    )


def drive_kernel(kernel, *, served=None, **loadgen_kwargs):
    """Serve the kernel demo in-process and loadgen it with --kernel."""

    async def main():
        service = make_kernel_service(*(served or [kernel]))
        ready = asyncio.get_running_loop().create_future()
        server_task = asyncio.ensure_future(
            run_server_async(service, port=0, ready=ready)
        )
        port = await ready
        loadgen_kwargs.setdefault("shutdown", True)
        try:
            return await run_loadgen(
                port=port, kernel=kernel, **loadgen_kwargs
            )
        finally:
            await asyncio.wait_for(server_task, timeout=20)

    return asyncio.run(main())


class TestKernelServing:
    def test_barrier_round_trip_byte_identical(self):
        report = drive_kernel("barrier", requests=40, concurrency=4)
        assert report["ok"] == 40
        assert report["mismatches"] == 0
        assert report["failed"] == 0

    def test_multi_kernel_registry_targets_the_right_model(self):
        report = drive_kernel(
            "accumulator",
            served=["barrier", "accumulator", "latch"],
            requests=30,
            concurrency=3,
        )
        assert report["ok"] == 30
        assert report["mismatches"] == 0

    def test_fingerprint_handshake_rejects_wrong_kernel(self):
        import pytest

        from repro.serve.loadgen import LoadgenError

        with pytest.raises(LoadgenError, match="fingerprint"):
            # Server has the router demo registered under the name the
            # loadgen targets; the local latch oracle must refuse it.
            async def main():
                registry = ModelRegistry()
                registry.register(demo_network("router"), name="kernel:latch")
                service = TNNService(
                    registry,
                    InlineWorkerPool(registry.documents()),
                    policy=BatchPolicy(max_batch=16, max_wait_s=0.001),
                )
                ready = asyncio.get_running_loop().create_future()
                server_task = asyncio.ensure_future(
                    run_server_async(service, port=0, ready=ready)
                )
                port = await ready
                try:
                    return await run_loadgen(
                        port=port, kernel="latch", requests=5, concurrency=1
                    )
                finally:
                    r, w = await asyncio.open_connection("127.0.0.1", port)
                    w.write(b'{"op":"shutdown"}\n')
                    await w.drain()
                    await r.readline()
                    w.close()
                    await asyncio.wait_for(server_task, timeout=20)

            asyncio.run(main())

    def test_every_registry_kernel_serves(self):
        for name in kernel_names():
            report = drive_kernel(name, requests=10, concurrency=2)
            assert report["ok"] == 10, name
            assert report["mismatches"] == 0, name

    def test_unknown_kernel_name_raises(self):
        import pytest

        with pytest.raises(KernelError, match="unknown kernel"):
            asyncio.run(run_loadgen(port=1, kernel="bogus", requests=1))
