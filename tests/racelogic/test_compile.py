"""Tests for the s-t → GRL compiler: hardware equals semantics."""

import random

import pytest

from repro.core.function import enumerate_domain
from repro.core.synthesis import max_from_min_lt, synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_network
from repro.neuron.wta import build_wta_network
from repro.racelogic.compile import GRLExecutor, compile_network


class TestStructureMapping:
    def test_gate_counts(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.lt(b.inc(b.min(x, y), 3), b.max(x, y)))
        circuit = compile_network(b.build())
        kinds = circuit.counts_by_kind()
        assert kinds["and"] == 1  # min
        assert kinds["or"] == 1  # max
        assert kinds["lt"] == 1
        assert kinds["dff"] == 3  # inc(+3)

    def test_params_become_inputs(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        circuit = compile_network(b.build())
        assert set(circuit.input_names) == {"x", "mu"}


class TestSemanticsPreservation:
    def test_fig7_network_exhaustive(self):
        net = synthesize(FIG7_TABLE)
        executor = GRLExecutor(net)
        for vec in enumerate_domain(3, 4):
            bound = dict(zip(net.input_names, vec))
            assert executor.outputs(bound) == evaluate(net, bound), vec

    def test_lemma2_exhaustive(self):
        net = max_from_min_lt()
        executor = GRLExecutor(net)
        for vec in enumerate_domain(2, 5):
            bound = dict(zip(net.input_names, vec))
            assert executor.outputs(bound) == evaluate(net, bound), vec

    def test_wta_network(self):
        net = build_wta_network(3, window=2)
        executor = GRLExecutor(net)
        rng = random.Random(0)
        for _ in range(40):
            vec = tuple(
                INF if rng.random() < 0.3 else rng.randint(0, 6)
                for _ in range(3)
            )
            bound = dict(zip(net.input_names, vec))
            assert executor.outputs(bound) == evaluate(net, bound), vec

    def test_srm0_neuron_in_silicon(self):
        # The paper's headline: a spiking neuron implemented with
        # off-the-shelf digital gates.
        base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)
        neuron = SRM0Neuron.homogeneous(
            2, [2, 1], base_response=base, threshold=3
        )
        net = build_srm0_network(neuron)
        executor = GRLExecutor(net)
        for vec in enumerate_domain(2, 4):
            bound = dict(zip(net.input_names, vec))
            want = neuron.fire_time(vec)
            assert executor.outputs(bound)["y"] == want, vec

    @pytest.mark.parametrize("seed", range(3))
    def test_random_synthesized_tables(self, seed):
        table = NormalizedTable.random(
            3, window=3, n_rows=4, rng=random.Random(seed)
        )
        net = synthesize(table)
        executor = GRLExecutor(net)
        rng = random.Random(seed + 50)
        for _ in range(40):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 6)
                for _ in range(3)
            )
            bound = dict(zip(net.input_names, vec))
            assert executor.outputs(bound) == evaluate(net, bound), vec

    def test_microweight_params_in_hardware(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        executor = GRLExecutor(b.build())
        assert executor.outputs({"x": 4}, params={"mu": INF})["z"] == 4
        assert executor.outputs({"x": 4}, params={"mu": 0})["z"] is INF

    def test_unbound_param_rejected(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        executor = GRLExecutor(b.build())
        with pytest.raises(ValueError, match="unbound"):
            executor.run({"x": 4})
