"""Tests for race-logic shortest paths vs Dijkstra."""

import random

import networkx as nx
import pytest

from repro.core.value import INF
from repro.racelogic.shortest_path import (
    WeightedDAG,
    build_race_network,
    dijkstra,
    race_shortest_paths,
    race_shortest_paths_digital,
    random_dag,
)


def diamond():
    g = WeightedDAG()
    g.add_edge("s", "a", 2)
    g.add_edge("s", "b", 5)
    g.add_edge("a", "t", 4)
    g.add_edge("b", "t", 0)
    g.add_edge("a", "b", 1)
    return g


class TestDAG:
    def test_negative_weight_rejected(self):
        g = WeightedDAG()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1)

    def test_topological_order(self):
        order = diamond().topological_order()
        assert order.index("s") < order.index("a") < order.index("t")

    def test_cycle_detected(self):
        g = WeightedDAG()
        g.add_edge(0, 1, 1)
        g.add_edge(1, 0, 1)
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_counts(self):
        g = diamond()
        assert g.edge_count == 5
        assert g.total_weight == 12


class TestDijkstraBaseline:
    def test_diamond(self):
        d = dijkstra(diamond(), "s")
        assert d == {"s": 0, "a": 2, "b": 3, "t": 3}

    def test_unreachable_is_inf(self):
        g = WeightedDAG()
        g.add_edge(0, 1, 1)
        g.edges.setdefault(2, [])
        d = dijkstra(g, 0)
        assert d[2] is INF

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            dijkstra(diamond(), "missing")

    def test_matches_networkx(self):
        rng = random.Random(11)
        for _ in range(5):
            g = random_dag(10, edge_probability=0.4, rng=rng)
            nxg = nx.DiGraph()
            nxg.add_nodes_from(g.edges)
            for u, out in g.edges.items():
                for v, w in out:
                    if nxg.has_edge(u, v):
                        w = min(w, nxg[u][v]["weight"])
                    nxg.add_edge(u, v, weight=w)
            ref = nx.single_source_dijkstra_path_length(nxg, 0)
            ours = dijkstra(g, 0)
            for node in g.edges:
                if node in ref:
                    assert ours[node] == ref[node], node
                else:
                    assert ours[node] is INF, node


class TestRaceLogic:
    def test_diamond_distances(self):
        assert race_shortest_paths(diamond(), "s") == dijkstra(diamond(), "s")

    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_match_dijkstra(self, seed):
        rng = random.Random(seed)
        g = random_dag(rng.randint(2, 14), edge_probability=0.35, rng=rng)
        assert race_shortest_paths(g, 0) == dijkstra(g, 0)

    def test_invariance_of_injection_time(self):
        # Distances ride on top of the injection time: the solver is an
        # s-t function of its start input.
        from repro.network.simulator import evaluate

        g = diamond()
        net = build_race_network(g, "s")
        at0 = evaluate(net, {"start": 0})
        at5 = evaluate(net, {"start": 5})
        for name in net.output_names:
            if at0[name] is INF:
                assert at5[name] is INF
            else:
                assert at5[name] == at0[name] + 5

    def test_network_uses_min_and_inc_only(self):
        net = build_race_network(diamond(), "s")
        kinds = set(net.counts_by_kind())
        assert kinds <= {"input", "min", "inc", "lt"}
        # lt only appears for the never-fires output of unreachable nodes.

    def test_digital_implementation_matches(self):
        rng = random.Random(21)
        for _ in range(4):
            g = random_dag(rng.randint(2, 8), edge_probability=0.4, rng=rng)
            distances, toggles = race_shortest_paths_digital(g, 0)
            assert distances == dijkstra(g, 0)
            assert toggles >= 0

    def test_unreachable_node_in_circuit(self):
        g = WeightedDAG()
        g.add_edge(0, 1, 2)
        g.edges.setdefault(5, [])
        distances, _ = race_shortest_paths_digital(g, 0)
        assert distances[5] is INF

    def test_flipflops_equal_total_weight(self):
        from repro.racelogic.compile import compile_network

        g = diamond()
        circuit = compile_network(build_race_network(g, "s"))
        assert circuit.flipflop_count == g.total_weight


class TestRandomDag:
    def test_edges_forward_only(self):
        g = random_dag(12, rng=random.Random(0))
        for u, out in g.edges.items():
            for v, _ in out:
                assert v > u

    def test_validation(self):
        with pytest.raises(ValueError):
            random_dag(0)
