"""Tests for the cycle-accurate GRL simulator and circuit netlists."""

import pytest

from repro.core.value import INF
from repro.racelogic.circuit import Circuit, CircuitBuilder, CircuitError, Gate
from repro.racelogic.digital import run_circuit


class TestCircuitBuilder:
    def test_basic(self):
        b = CircuitBuilder("c")
        x = b.input("x")
        y = b.input("y")
        b.output("z", b.and_(x, y))
        c = b.build()
        assert c.input_names == ["x", "y"]
        assert c.output_names == ["z"]

    def test_duplicate_input(self):
        b = CircuitBuilder()
        b.input("x")
        with pytest.raises(CircuitError):
            b.input("x")

    def test_no_outputs(self):
        b = CircuitBuilder()
        b.input("x")
        with pytest.raises(CircuitError, match="no outputs"):
            b.build()

    def test_delay_builds_dff_chain(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.output("y", b.delay(x, 3))
        c = b.build()
        assert c.flipflop_count == 3

    def test_single_source_gates_elided(self):
        b = CircuitBuilder()
        x = b.input("x")
        assert b.and_(x) == x
        assert b.or_(x) == x

    def test_invalid_reference(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.and_(0, 1)


class TestGateValidation:
    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            Gate(0, "xor", sources=(0,))

    def test_feedforward_enforced(self):
        with pytest.raises(CircuitError, match="feedforward"):
            Gate(1, "and", sources=(1, 2))

    def test_arities(self):
        with pytest.raises(CircuitError):
            Gate(2, "not", sources=(0, 1))
        with pytest.raises(CircuitError):
            Gate(1, "lt", sources=(0,))

    def test_dense_ids(self):
        gates = [Gate(0, "input", name="x")]
        with pytest.raises(CircuitError, match="dense"):
            Circuit([Gate(1, "input", name="y")], {"y": 0})
        Circuit(gates, {"y": 0})  # fine


class TestSimulation:
    def test_and_min_semantics(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.and_(x, y))
        c = b.build()
        assert run_circuit(c, {"x": 3, "y": 7}).outputs["z"] == 3
        assert run_circuit(c, {"x": INF, "y": 7}).outputs["z"] == 7

    def test_or_max_semantics(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.or_(x, y))
        c = b.build()
        assert run_circuit(c, {"x": 3, "y": 7}).outputs["z"] == 7
        assert run_circuit(c, {"x": 3, "y": INF}).outputs["z"] is INF

    def test_dff_delays_by_cycles(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.output("z", b.delay(x, 4))
        c = b.build()
        assert run_circuit(c, {"x": 2}).outputs["z"] == 6

    def test_lt_latch_semantics(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.lt(x, y))
        c = b.build()
        assert run_circuit(c, {"x": 2, "y": 5}).outputs["z"] == 2
        assert run_circuit(c, {"x": 5, "y": 2}).outputs["z"] is INF
        assert run_circuit(c, {"x": 3, "y": 3}).outputs["z"] is INF
        assert run_circuit(c, {"x": 3, "y": INF}).outputs["z"] == 3

    def test_latch_holds_after_b_falls(self):
        # The latch's raison d'être: output must not bounce back at b.
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.lt(x, y))
        result = run_circuit(b.build(), {"x": 1, "y": 4}, horizon=10)
        # If the latch failed, the z wire would show 2 transitions.
        z_gate = b.build().outputs["z"]
        assert result.outputs["z"] == 1

    def test_unbound_input_rejected(self):
        b = CircuitBuilder()
        b.input("x")
        b.input("y")
        b.output("z", 0)
        with pytest.raises(CircuitError, match="unbound"):
            run_circuit(b.build(), {"x": 1})

    def test_horizon_auto_sizing_covers_dffs(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.output("z", b.delay(x, 10))
        # Input falls late; auto horizon must still catch the output.
        assert run_circuit(b.build(), {"x": 9}).outputs["z"] == 19

    def test_transition_counting_minimal(self):
        # One input falling through one AND: exactly 2 data transitions.
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.and_(x, y))
        result = run_circuit(b.build(), {"x": 2, "y": INF})
        assert result.transition_count == 2

    def test_silent_run_has_zero_transitions(self):
        b = CircuitBuilder()
        x, y = b.input("x"), b.input("y")
        b.output("z", b.and_(x, y))
        result = run_circuit(b.build(), {"x": INF, "y": INF})
        assert result.transition_count == 0

    def test_repr(self):
        b = CircuitBuilder("mini")
        x = b.input("x")
        b.output("z", b.delay(x, 1))
        assert "dff" in repr(b.build())
