"""Tests for the delay-based (asynchronous) GRL variant (§V.B)."""

import random

import pytest

from repro.core.function import enumerate_domain
from repro.core.synthesis import max_from_min_lt, synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate
from repro.racelogic.asynchronous import (
    AsyncGate,
    compile_async,
    run_async,
)
from repro.racelogic.circuit import CircuitError


class TestGateValidation:
    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            AsyncGate(0, "nand", sources=(0,))

    def test_negative_delay(self):
        with pytest.raises(CircuitError, match="non-negative"):
            AsyncGate(1, "delay", sources=(0,), delay=-1)

    def test_feedforward(self):
        with pytest.raises(CircuitError, match="feedforward"):
            AsyncGate(1, "and", sources=(1, 2))


class TestIdealEquivalence:
    """With zero gate latency the async circuit equals the algebra."""

    def test_fig7_exhaustive(self):
        net = synthesize(FIG7_TABLE)
        circuit = compile_async(net)
        for vec in enumerate_domain(3, 4):
            bound = dict(zip(net.input_names, vec))
            assert run_async(circuit, bound).outputs == evaluate(net, bound), vec

    def test_lemma2_exhaustive(self):
        net = max_from_min_lt()
        circuit = compile_async(net)
        for vec in enumerate_domain(2, 5):
            bound = dict(zip(net.input_names, vec))
            assert run_async(circuit, bound).outputs == evaluate(net, bound), vec

    @pytest.mark.parametrize("seed", range(3))
    def test_random_tables(self, seed):
        table = NormalizedTable.random(
            3, window=3, n_rows=5, rng=random.Random(seed)
        )
        net = synthesize(table)
        circuit = compile_async(net)
        rng = random.Random(seed + 10)
        for _ in range(60):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 6)
                for _ in range(3)
            )
            bound = dict(zip(net.input_names, vec))
            assert run_async(circuit, bound).outputs == evaluate(net, bound), vec

    def test_no_clock_no_flipflops(self):
        net = synthesize(FIG7_TABLE)
        circuit = compile_async(net)
        kinds = circuit.counts_by_kind()
        assert "dff" not in kinds
        assert kinds.get("delay", 0) > 0
        assert circuit.total_designed_delay == sum(
            n.amount for n in net.nodes if n.kind == "inc"
        )

    def test_transition_counts_sane(self):
        net = synthesize(FIG7_TABLE)
        circuit = compile_async(net)
        result = run_async(circuit, dict(zip(net.input_names, (0, 1, 2))))
        assert result.transition_count > 0
        silent = run_async(circuit, dict(zip(net.input_names, (INF,) * 3)))
        assert silent.transition_count == 0

    def test_unbound_input(self):
        net = max_from_min_lt()
        circuit = compile_async(net)
        with pytest.raises(CircuitError, match="unbound"):
            run_async(circuit, {"a": 1})


class TestGateLatencySkew:
    """The §V.B caveat: nonzero gate latencies skew results."""

    def test_min_chain_accumulates_latency(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.min(b.min(x, y), y))
        net = b.build()
        ideal = compile_async(net, gate_delay=0)
        slow = compile_async(net, gate_delay=1)
        bound = {"x": 2, "y": 5}
        t_ideal = run_async(ideal, bound).outputs["o"]
        t_slow = run_async(slow, bound).outputs["o"]
        assert t_slow > t_ideal  # two gate latencies on the path

    def test_skew_grows_with_depth(self):
        # A chain of k min stages skews by ~k with unit gate delay.
        def chain(depth):
            b = NetworkBuilder()
            x, y = b.inputs("x", "y")
            cur = x
            for _ in range(depth):
                cur = b.min(cur, y)
            b.output("o", cur)
            return b.build()

        skews = []
        for depth in (1, 3, 6):
            net = chain(depth)
            bound = {"x": 1, "y": 9}
            ideal = run_async(compile_async(net, gate_delay=0), bound)
            slow = run_async(compile_async(net, gate_delay=1), bound)
            skews.append(int(slow.outputs["o"]) - int(ideal.outputs["o"]))
        assert skews == [1, 3, 6]

    def test_latency_can_flip_a_race(self):
        # lt(a, b+delta): with ideal gates a=3 < b-path... gate latency on
        # the b path changes which signal wins a tight race.
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("o", b.lt(b.min(x, x), y))  # min adds latency to the a path
        net = b.build()
        bound = {"x": 2, "y": 3}
        ideal = run_async(compile_async(net, gate_delay=0), bound)
        slow = run_async(compile_async(net, gate_delay=1), bound)
        assert ideal.outputs["o"] == 2  # 2 < 3: passes
        assert slow.outputs["o"] is INF  # a delayed to 3: tie, blocked

    def test_settle_time_reported(self):
        net = synthesize(FIG7_TABLE)
        circuit = compile_async(net)
        result = run_async(circuit, dict(zip(net.input_names, (0, 1, 2))))
        assert result.settle_time >= 0
