"""Tests for transition-count energy accounting (§VI claims)."""

import pytest

from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.core.value import INF
from repro.racelogic.energy import (
    CommunicationCost,
    communication_sweep,
    measure_energy,
)


class TestMeasureEnergy:
    def test_sparse_inputs_fewer_transitions(self):
        # The paper's §VI conjecture: sparse codings mean many signals
        # undergo zero transitions.
        net = synthesize(FIG7_TABLE)
        names = net.input_names
        dense = measure_energy(net, [dict(zip(names, (0, 1, 2)))])
        sparse = measure_energy(net, [dict(zip(names, (0, INF, INF)))])
        assert sparse.total_transitions < dense.total_transitions

    def test_silent_run_is_free(self):
        net = synthesize(FIG7_TABLE)
        names = net.input_names
        report = measure_energy(net, [dict(zip(names, (INF, INF, INF)))])
        assert report.total_transitions == 0

    def test_activity_factor_bounded(self):
        # Data wires switch at most once; the latch internals (NOT gates)
        # can add a second toggle, but the average stays near one.
        net = synthesize(FIG7_TABLE)
        names = net.input_names
        report = measure_energy(net, [dict(zip(names, (0, 1, 2)))])
        assert 0.0 < report.activity_factor <= 2.0

    def test_accumulates_over_runs(self):
        net = synthesize(FIG7_TABLE)
        names = net.input_names
        one = measure_energy(net, [dict(zip(names, (0, 1, 2)))])
        two = measure_energy(net, [dict(zip(names, (0, 1, 2)))] * 2)
        assert two.total_transitions == 2 * one.total_transitions
        assert two.transitions_per_run == one.transitions_per_run

    def test_dff_clock_events_counted(self):
        net = synthesize(FIG7_TABLE)
        names = net.input_names
        report = measure_energy(net, [dict(zip(names, (0, 1, 2)))])
        assert report.flipflop_count > 0
        assert report.dff_clock_events == report.flipflop_count * report.total_cycles

    def test_str(self):
        net = synthesize(FIG7_TABLE)
        report = measure_energy(net, [dict(zip(net.input_names, (0, 1, 2)))])
        assert "transitions/run" in str(report)


class TestCommunicationModel:
    def test_direct_always_one_transition(self):
        for bits in (1, 3, 8):
            assert CommunicationCost(bits).direct_transitions == 1

    def test_time_penalty_exponential(self):
        penalties = [CommunicationCost(b).time_penalty for b in (2, 3, 4)]
        assert penalties == [4.0, 8.0, 16.0]

    def test_energy_advantage_linear(self):
        advantages = [CommunicationCost(b).energy_advantage for b in (2, 4, 8)]
        assert advantages == [1.0, 2.0, 4.0]

    def test_sweep(self):
        sweep = communication_sweep(4)
        assert [c.resolution_bits for c in sweep] == [1, 2, 3, 4]

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            communication_sweep(0)

    def test_low_resolution_sweet_spot(self):
        # At 3–4 bits the time penalty (8–16x) is tolerable while the
        # energy advantage (1.5–2x) is real — the paper's design point.
        c3 = CommunicationCost(3)
        assert c3.direct_message_time <= 16
        assert c3.energy_advantage >= 1.5
