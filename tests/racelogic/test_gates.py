"""Tests for GRL gate semantics (Fig. 16) against the algebra."""

import pytest

from repro.core.algebra import lt, maximum, minimum
from repro.core.function import enumerate_domain
from repro.core.value import INF
from repro.racelogic.gates import (
    and_gate,
    dff_chain,
    lt_latch,
    lt_unlatched_waveform,
    not_gate,
    or_gate,
)
from repro.racelogic.signals import EdgeSignal, waveform_from_levels


class TestGateAlgebraCorrespondence:
    """AND = min, OR = max, DFF chain = inc, latch = lt — exhaustively."""

    def test_and_is_min(self):
        for a, b in enumerate_domain(2, 6):
            assert and_gate(a, b) == minimum(a, b), (a, b)

    def test_or_is_max(self):
        for a, b in enumerate_domain(2, 6):
            assert or_gate(a, b) == maximum(a, b), (a, b)

    def test_lt_latch_is_lt(self):
        for a, b in enumerate_domain(2, 6):
            assert lt_latch(a, b) == lt(a, b), (a, b)

    def test_dff_chain_is_inc(self):
        for t in [0, 1, 5, INF]:
            for n in (0, 1, 3):
                expected = INF if t is INF else t + n
                assert dff_chain(t, n) == expected

    def test_variadic(self):
        assert and_gate(5, 2, 9) == 2
        assert or_gate(5, 2, 9) == 9
        assert or_gate(5, INF) is INF

    def test_dff_validation(self):
        with pytest.raises(ValueError):
            dff_chain(0, -1)


class TestLatchNecessity:
    """The reason Fig. 16's lt has a latch: the raw gate glitches."""

    def test_unlatched_output_glitches_back(self):
        # a = 2 < b = 5: raw (a OR NOT b) falls at 2 but rises again at 5.
        levels = lt_unlatched_waveform(2, 5, horizon=8)
        assert levels[2] == 0  # correct fall
        assert levels[5] == 1  # the glitch the latch suppresses
        with pytest.raises(ValueError, match="rises"):
            waveform_from_levels(levels)

    def test_unlatched_correct_when_b_never_falls(self):
        levels = lt_unlatched_waveform(2, INF, horizon=8)
        signal = waveform_from_levels(levels)
        assert signal.fall_time == 2

    def test_unlatched_stays_high_when_b_first(self):
        levels = lt_unlatched_waveform(5, 2, horizon=8)
        assert all(level == 1 for level in levels)


class TestNotGate:
    def test_not_is_rising(self):
        initial, rise = not_gate(4)
        assert initial == 0
        assert rise == 4


class TestEdgeSignal:
    def test_levels(self):
        s = EdgeSignal(3)
        assert s.trace(5) == [1, 1, 1, 0, 0, 0]

    def test_never_falls(self):
        s = EdgeSignal.never()
        assert s.trace(3) == [1, 1, 1, 1]
        assert s.transitions == 0

    def test_single_transition_property(self):
        assert EdgeSignal(0).transitions == 1

    def test_roundtrip(self):
        for t in [0, 2, 7, INF]:
            s = EdgeSignal.from_time(t)
            assert waveform_from_levels(s.trace(10)).fall_time == (
                t if t is not INF else INF
            )

    def test_waveform_validation(self):
        with pytest.raises(ValueError):
            waveform_from_levels([1, 0, 1])
        with pytest.raises(ValueError):
            waveform_from_levels([2])

    def test_negative_cycle_is_high(self):
        assert EdgeSignal(0).level(-1) == 1
