"""Tests for the behavioral SRM0 neuron and its Fig. 12 compilation."""

import random

import pytest

from repro.core.function import enumerate_domain
from repro.core.properties import check_bounded_history, verify
from repro.core.value import INF
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_from_weights, build_srm0_network

PWL = ResponseFunction.piecewise_linear(amplitude=3, rise=2, fall=4)


class TestBehavioral:
    def test_single_strong_input_fires(self):
        neuron = SRM0Neuron.homogeneous(1, [2], base_response=PWL, threshold=3)
        t = neuron.fire_time((5,))
        assert t == 6  # 2*PWL reaches 3 at offset 1 (value 2*1.5 -> 3)

    def test_threshold_never_crossed(self):
        neuron = SRM0Neuron.homogeneous(2, [1, 1], base_response=PWL, threshold=100)
        assert neuron.fire_time((0, 0)) is INF

    def test_silence_in_silence_out(self):
        neuron = SRM0Neuron.homogeneous(3, [2, 2, 2], base_response=PWL, threshold=1)
        assert neuron.fire_time((INF, INF, INF)) is INF

    def test_coincident_spikes_fire_earlier_than_dispersed(self):
        # The core TNN computational principle: temporal coincidence wins.
        neuron = SRM0Neuron.homogeneous(3, [1, 1, 1], base_response=PWL, threshold=6)
        together = neuron.fire_time((0, 0, 0))
        spread = neuron.fire_time((0, 3, 6))
        assert together < spread or spread is INF

    def test_potential_is_sum_of_responses(self):
        neuron = SRM0Neuron.homogeneous(2, [1, 2], base_response=PWL, threshold=1)
        t = 3
        expected = PWL(3 - 0) + 2 * PWL(3 - 1)
        assert neuron.potential((0, 1), t) == expected

    def test_inhibitory_synapse_delays_firing(self):
        excite = PWL.scaled(2)
        inhibit = PWL.negated()
        plain = SRM0Neuron([excite], threshold=3)
        mixed = SRM0Neuron([excite, inhibit], threshold=3)
        t_plain = plain.fire_time((0,))
        t_mixed = mixed.fire_time((0, 0))
        assert t_mixed is INF or t_mixed >= t_plain

    def test_trace(self):
        neuron = SRM0Neuron.homogeneous(1, [1], base_response=PWL, threshold=10)
        trace = neuron.trace((0,), PWL.t_max)
        assert trace == [PWL(t) for t in range(PWL.t_max + 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            SRM0Neuron([], threshold=1)
        with pytest.raises(ValueError):
            SRM0Neuron([PWL], threshold=0)
        neuron = SRM0Neuron([PWL], threshold=1)
        with pytest.raises(TypeError):
            neuron.fire_time((0, 0))

    def test_is_space_time_function(self):
        neuron = SRM0Neuron.homogeneous(2, [2, 1], base_response=PWL, threshold=3)
        report = verify(neuron.as_function(), window=4)
        assert report.ok, report.violations[:3]

    def test_is_bounded(self):
        # The paper's point in §III.E: a realistic neuron has bounded
        # history — here the response's t_max.
        neuron = SRM0Neuron.homogeneous(2, [2, 2], base_response=PWL, threshold=3)
        vecs = list(enumerate_domain(2, PWL.t_max + 3))
        report = check_bounded_history(neuron.as_function(), vecs, PWL.t_max)
        assert report.ok, report.violations[:3]


class TestFig12Equivalence:
    """The construction theorem: network fire time == behavioral fire time."""

    @pytest.mark.parametrize("threshold", [1, 2, 4, 6, 9])
    def test_threshold_sweep_exhaustive(self, threshold):
        neuron = SRM0Neuron.homogeneous(
            2, [2, 1], base_response=PWL, threshold=threshold
        )
        f = build_srm0_network(neuron).as_function()
        for vec in enumerate_domain(2, 5):
            assert f(*vec) == neuron.fire_time(vec), (threshold, vec)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_neurons(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 4)
        weights = [rng.randint(0, 3) for _ in range(n)]
        threshold = rng.randint(1, 8)
        neuron = SRM0Neuron.homogeneous(
            n, weights, base_response=PWL, threshold=threshold
        )
        f = build_srm0_network(neuron).as_function()
        for _ in range(60):
            vec = tuple(
                INF if rng.random() < 0.3 else rng.randint(0, 7)
                for _ in range(n)
            )
            assert f(*vec) == neuron.fire_time(vec), (seed, vec)

    def test_biexponential_neuron(self):
        base = ResponseFunction.biexponential(amplitude=3, t_max=8)
        neuron = SRM0Neuron.homogeneous(2, [1, 2], base_response=base, threshold=4)
        f = build_srm0_network(neuron).as_function()
        for vec in enumerate_domain(2, 4):
            assert f(*vec) == neuron.fire_time(vec), vec

    def test_inhibitory_mix(self):
        neuron = SRM0Neuron(
            [PWL.scaled(2), PWL.negated()], threshold=2, name="mix"
        )
        f = build_srm0_network(neuron).as_function()
        for vec in enumerate_domain(2, 5):
            assert f(*vec) == neuron.fire_time(vec), vec

    def test_never_firing_network(self):
        neuron = SRM0Neuron.homogeneous(1, [1], base_response=PWL, threshold=50)
        f = build_srm0_network(neuron).as_function()
        assert f(0) is INF
        assert f(INF) is INF

    def test_odd_even_variant(self):
        neuron = SRM0Neuron.homogeneous(2, [2, 2], base_response=PWL, threshold=4)
        bitonic = build_srm0_network(neuron, algorithm="bitonic").as_function()
        odd_even = build_srm0_network(neuron, algorithm="odd-even").as_function()
        for vec in enumerate_domain(2, 4):
            assert bitonic(*vec) == odd_even(*vec), vec

    def test_uses_only_primitives(self):
        neuron = SRM0Neuron.homogeneous(2, [2, 1], base_response=PWL, threshold=3)
        net = build_srm0_network(neuron)
        kinds = set(net.counts_by_kind())
        assert kinds <= {"input", "inc", "min", "max", "lt"}

    def test_from_weights_convenience(self):
        net = build_srm0_from_weights([2, 1], threshold=3, base_response=PWL)
        neuron = SRM0Neuron.homogeneous(2, [2, 1], base_response=PWL, threshold=3)
        assert net.as_function()(0, 1) == neuron.fire_time((0, 1))
