"""Tests for micro-weight synapses (Figs. 13–14)."""

import pytest

from repro.core.function import enumerate_domain
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.weights import (
    build_programmable_neuron,
    microweight_synapse,
    response_family,
    weight_settings,
)

BASE = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)


class TestMicroWeightGate:
    """Fig. 13: μ=∞ enables, μ=0 disables."""

    def test_enable_disable(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        net = b.build()
        assert evaluate(net, {"x": 5}, params={"mu": INF})["z"] == 5
        assert evaluate(net, {"x": 5}, params={"mu": 0})["z"] is INF

    def test_disabled_blocks_even_time_zero(self):
        b = NetworkBuilder()
        x = b.input("x")
        mu = b.param("mu")
        b.output("z", b.gate(x, mu))
        net = b.build()
        assert evaluate(net, {"x": 0}, params={"mu": 0})["z"] is INF


class TestSynapseWires:
    def test_weight_zero_response_must_be_zero(self):
        b = NetworkBuilder()
        x = b.input("x")
        with pytest.raises(ValueError, match="identically zero"):
            microweight_synapse(b, x, [BASE, BASE])

    def test_level_count(self):
        b = NetworkBuilder()
        x = b.input("x")
        wires = microweight_synapse(b, x, response_family(BASE, 3))
        assert len(wires.param_names) == 3

    def test_settings_recipe(self):
        b = NetworkBuilder()
        x = b.input("x")
        wires = microweight_synapse(b, x, response_family(BASE, 4))
        # The paper's example: weight 3 -> mu1..mu3 = ∞, mu4 = 0.
        settings = wires.settings_for_weight(3)
        names = wires.param_names
        assert settings[names[0]] is INF
        assert settings[names[1]] is INF
        assert settings[names[2]] is INF
        assert settings[names[3]] == 0

    def test_weight_out_of_range(self):
        b = NetworkBuilder()
        x = b.input("x")
        wires = microweight_synapse(b, x, response_family(BASE, 2))
        with pytest.raises(ValueError):
            wires.settings_for_weight(3)
        with pytest.raises(ValueError):
            wires.settings_for_weight(-1)


class TestProgrammableNeuron:
    """Fig. 14 + Fig. 12: micro-weights select the behavioral weight."""

    @pytest.mark.parametrize("w1", range(4))
    @pytest.mark.parametrize("w2", range(4))
    def test_all_weight_settings_match_behavioral(self, w1, w2):
        net, synapses = build_programmable_neuron(
            2, base_response=BASE, max_weight=3, threshold=3
        )
        params = weight_settings(synapses, [w1, w2])
        behavioral = SRM0Neuron.homogeneous(
            2, [w1, w2], base_response=BASE, threshold=3
        )
        for vec in [(0, 0), (0, 2), (2, 0), (1, 3), (0, INF), (INF, INF)]:
            want = behavioral.fire_time(vec)
            got = evaluate(net, dict(zip(net.input_names, vec)), params=params)["y"]
            assert want == got, ((w1, w2), vec)

    def test_weight_zero_everywhere_is_silent(self):
        net, synapses = build_programmable_neuron(
            2, base_response=BASE, max_weight=3, threshold=1
        )
        params = weight_settings(synapses, [0, 0])
        out = evaluate(net, {"x1": 0, "x2": 0}, params=params)
        assert out["y"] is INF

    def test_heavier_weight_fires_no_later(self):
        net, synapses = build_programmable_neuron(
            1, base_response=BASE, max_weight=3, threshold=3
        )
        times = []
        for w in range(4):
            out = evaluate(
                net, {"x1": 0}, params=weight_settings(synapses, [w])
            )
            times.append(out["y"])
        for light, heavy in zip(times, times[1:]):
            assert heavy <= light

    def test_settings_length_mismatch(self):
        _, synapses = build_programmable_neuron(
            2, base_response=BASE, max_weight=2, threshold=2
        )
        with pytest.raises(ValueError):
            weight_settings(synapses, [1])

    def test_invariance_with_fixed_weights(self):
        # With micro-weights pinned, the configured network is an s-t
        # function of its data inputs.
        from repro.core.properties import verify

        net, synapses = build_programmable_neuron(
            2, base_response=BASE, max_weight=2, threshold=2
        )
        f = net.as_function(params=weight_settings(synapses, [2, 1]))
        report = verify(f, window=3)
        assert report.ok, report.violations[:3]
