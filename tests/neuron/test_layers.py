"""Tests for multi-layer TNNs."""

import random

import numpy as np
import pytest

from repro.core.value import INF, Infinity
from repro.network.simulator import evaluate_vector
from repro.neuron.column import Column
from repro.neuron.layers import LayeredTNN, compile_layered, train_layerwise
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.step(amplitude=1, width=8)


def two_layer():
    l1 = Column(
        np.array([[4, 0, 0], [0, 4, 0], [0, 0, 4]]),
        threshold=4,
        base_response=BASE,
        wta_window=2,
    )
    l2 = Column(
        np.array([[4, 4, 0], [0, 4, 4]]),
        threshold=4,
        base_response=BASE,
        wta_window=2,
    )
    return LayeredTNN([l1, l2])


class TestStack:
    def test_shapes(self):
        tnn = two_layer()
        assert tnn.n_layers == 2
        assert tnn.n_inputs == 3
        assert tnn.n_outputs == 2

    def test_width_mismatch_rejected(self):
        l1 = Column(np.ones((2, 3), dtype=np.int64), threshold=1, base_response=BASE)
        l2 = Column(np.ones((1, 5), dtype=np.int64), threshold=1, base_response=BASE)
        with pytest.raises(ValueError, match="width"):
            LayeredTNN([l1, l2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LayeredTNN([])

    def test_forward_composes_layers(self):
        tnn = two_layer()
        volley = (0, 0, INF)
        manual = tnn.columns[1].forward(tnn.columns[0].forward(volley))
        assert tnn.forward(volley) == manual

    def test_activations_trace(self):
        tnn = two_layer()
        trace = tnn.activations((0, 1, INF))
        assert len(trace) == 2
        assert trace[-1] == tnn.forward((0, 1, INF))

    def test_silence_propagates(self):
        tnn = two_layer()
        assert all(t is INF for t in tnn.forward((INF, INF, INF)))

    def test_random_factory(self):
        tnn = LayeredTNN.random([8, 6, 4], seed=3)
        assert tnn.n_inputs == 8
        assert tnn.n_outputs == 4
        out = tnn.forward(tuple([0] * 8))
        assert len(out) == 4

    def test_random_needs_two_widths(self):
        with pytest.raises(ValueError):
            LayeredTNN.random([8])


class TestCompileLayered:
    def test_compiled_equals_behavioral(self):
        tnn = two_layer()
        net = compile_layered(tnn)
        rng = random.Random(4)
        for _ in range(40):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 4)
                for _ in range(3)
            )
            want = tnn.forward(vec)
            got = tuple(
                evaluate_vector(net, vec)[f"y{i + 1}"] for i in range(2)
            )
            assert got == want, vec

    def test_compiled_uses_only_primitives(self):
        net = compile_layered(two_layer())
        assert set(net.counts_by_kind()) <= {"input", "inc", "min", "max", "lt"}

    def test_k_wta_layer_rejected(self):
        l1 = Column(
            np.ones((2, 2), dtype=np.int64), threshold=1, base_response=BASE, k=1
        )
        with pytest.raises(ValueError, match="window-WTA"):
            compile_layered(LayeredTNN([l1]))


class TestLayerwiseTraining:
    def test_training_changes_weights(self):
        tnn = LayeredTNN.random([12, 6, 3], seed=0)
        before = [c.weights.copy() for c in tnn.columns]
        rng = random.Random(0)
        volleys = [
            tuple(rng.randint(0, 5) for _ in range(12)) for _ in range(20)
        ]
        train_layerwise(tnn, volleys, epochs_per_layer=1, seed=0)
        changed = any(
            not (c.weights == b).all()
            for c, b in zip(tnn.columns, before)
        )
        assert changed

    def test_training_restores_thresholds(self):
        tnn = LayeredTNN.random([10, 5], seed=1)
        base_thresholds = list(tnn.columns[0].thresholds)
        rng = random.Random(1)
        volleys = [
            tuple(rng.randint(0, 5) for _ in range(10)) for _ in range(15)
        ]
        train_layerwise(tnn, volleys, epochs_per_layer=1, seed=1)
        assert tnn.columns[0].thresholds == base_thresholds

    def test_deep_stack_still_responds_after_training(self):
        tnn = LayeredTNN.random([12, 8, 4], threshold_fraction=0.2, seed=2)
        rng = random.Random(2)
        patterns = [
            tuple(rng.randint(0, 3) for _ in range(12)) for _ in range(4)
        ]
        volleys = [p for p in patterns for _ in range(8)]
        train_layerwise(tnn, volleys, epochs_per_layer=2, seed=2)
        responding = sum(
            1
            for p in patterns
            if any(not isinstance(t, Infinity) for t in tnn.forward(p))
        )
        assert responding >= 2
