"""Tests for WTA columns and whole-column compilation (Lemma 1 at scale)."""

import random

import numpy as np
import pytest

from repro.core.value import INF
from repro.network.simulator import evaluate_vector
from repro.neuron.column import Column, compile_column
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)


def make_column(**kwargs):
    weights = np.array([[3, 1, 0], [0, 3, 1], [1, 1, 3]])
    defaults = dict(threshold=4, base_response=BASE)
    defaults.update(kwargs)
    return Column(weights, **defaults)


class TestColumn:
    def test_shapes(self):
        col = make_column()
        assert col.n_neurons == 3
        assert col.n_inputs == 3

    def test_excitation_is_per_neuron_fire_time(self):
        col = make_column()
        raw = col.excitation((0, 0, 0))
        for i, t in enumerate(raw):
            assert t == col.neurons[i].fire_time((0, 0, 0))

    def test_forward_applies_wta(self):
        col = make_column()
        raw = col.excitation((0, 2, 5))
        out = col.forward((0, 2, 5))
        finite_raw = [t for t in raw if t is not INF]
        if finite_raw:
            earliest = min(finite_raw)
            for r, o in zip(raw, out):
                if o is not INF:
                    assert o == r == earliest

    def test_neuron_tuned_to_pattern_wins(self):
        # Neuron 0 is tuned to input 0, neuron 1 to input 1.
        weights = np.array([[4, 0], [0, 4]])
        col = Column(weights, threshold=4, base_response=BASE)
        out0 = col.forward((0, INF))
        out1 = col.forward((INF, 0))
        assert out0[0] is not INF and out0[1] is INF
        assert out1[1] is not INF and out1[0] is INF

    def test_k_wta_column(self):
        col = make_column(k=2)
        out = col.forward((0, 0, 0))
        survivors = sum(1 for t in out if t is not INF)
        assert survivors <= 2

    def test_set_weights_validates_shape(self):
        col = make_column()
        with pytest.raises(ValueError):
            col.set_weights(np.zeros((2, 3), dtype=np.int64))

    def test_set_weights_changes_behaviour(self):
        col = make_column()
        silent = np.zeros_like(col.weights)
        col.set_weights(silent)
        assert all(t is INF for t in col.excitation((0, 0, 0)))

    def test_input_arity_checked(self):
        col = make_column()
        with pytest.raises(ValueError):
            col.forward((0, 0))

    def test_weights_must_be_2d(self):
        with pytest.raises(ValueError):
            Column(np.array([1, 2, 3]), threshold=1)


class TestCompileColumn:
    def test_compiled_equals_behavioral(self):
        col = make_column()
        net = compile_column(col)
        rng = random.Random(9)
        for _ in range(50):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 5)
                for _ in range(3)
            )
            want = col.forward(vec)
            got = tuple(
                evaluate_vector(net, vec)[f"y{i + 1}"] for i in range(3)
            )
            assert want == got, vec

    def test_compiled_uses_only_primitives(self):
        net = compile_column(make_column())
        assert set(net.counts_by_kind()) <= {"input", "inc", "min", "max", "lt"}

    def test_k_wta_not_compilable_here(self):
        with pytest.raises(ValueError, match="window-WTA"):
            compile_column(make_column(k=1))

    def test_compile_single_neuron(self):
        col = Column(np.array([[2, 2]]), threshold=2, base_response=BASE)
        net = compile_column(col)
        out = evaluate_vector(net, (0, 0))
        assert out["y1"] == col.forward((0, 0))[0]
