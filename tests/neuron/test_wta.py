"""Tests for winner-take-all inhibition (Fig. 15)."""

import random

import pytest

from repro.core.value import INF
from repro.network.simulator import evaluate_vector
from repro.neuron.wta import (
    build_k_wta_network,
    build_wta_network,
    first_winner,
    k_wta,
    winners,
    wta,
)


def net_out(net, vec):
    out = evaluate_vector(net, vec)
    return tuple(out[f"y{i + 1}"] for i in range(len(vec)))


class TestOneWTA:
    """The paper's Fig. 15: only spikes at relative time 0 pass."""

    def test_single_winner(self):
        net = build_wta_network(4, window=1)
        assert net_out(net, (3, 5, 4, 6)) == (3, INF, INF, INF)

    def test_tied_winners_all_pass(self):
        net = build_wta_network(3, window=1)
        assert net_out(net, (2, 2, 5)) == (2, 2, INF)

    def test_all_silent(self):
        net = build_wta_network(3, window=1)
        assert net_out(net, (INF, INF, INF)) == (INF, INF, INF)

    def test_behavioral_matches_network(self):
        net = build_wta_network(5, window=1)
        rng = random.Random(0)
        for _ in range(80):
            vec = tuple(
                INF if rng.random() < 0.3 else rng.randint(0, 6)
                for _ in range(5)
            )
            assert net_out(net, vec) == wta(vec, window=1), vec


class TestTauWTA:
    def test_wider_window_admits_more(self):
        vec = (0, 1, 2, 5)
        assert wta(vec, window=1) == (0, INF, INF, INF)
        assert wta(vec, window=2) == (0, 1, INF, INF)
        assert wta(vec, window=3) == (0, 1, 2, INF)

    def test_network_matches_behavioral_tau3(self):
        net = build_wta_network(4, window=3)
        rng = random.Random(1)
        for _ in range(60):
            vec = tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 8)
                for _ in range(4)
            )
            assert net_out(net, vec) == wta(vec, window=3), vec

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            build_wta_network(3, window=0)
        with pytest.raises(ValueError):
            wta((0,), window=0)


class TestKWTA:
    def test_pass_first_k(self):
        assert k_wta((4, 0, 2, 9), 2) == (INF, 0, 2, INF)

    def test_ties_at_cutoff_inhibited(self):
        # Two spikes tie at the k-th place: neither passes (documented
        # tie semantics — no spatial tie-breaker exists).
        assert k_wta((0, 1, 1, 5), 2) == (0, INF, INF, INF)

    def test_fewer_spikes_than_k(self):
        assert k_wta((3, INF, INF), 2) == (3, INF, INF)

    def test_network_matches_behavioral(self):
        for k in (1, 2, 3):
            net = build_k_wta_network(4, k)
            rng = random.Random(k)
            for _ in range(60):
                vec = tuple(
                    INF if rng.random() < 0.25 else rng.randint(0, 7)
                    for _ in range(4)
                )
                assert net_out(net, vec) == k_wta(vec, k), (k, vec)

    def test_k_geq_lines_passes_everything(self):
        net = build_k_wta_network(3, 5)
        assert net_out(net, (4, 1, INF)) == (4, 1, INF)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_wta((0,), 0)
        with pytest.raises(ValueError):
            build_k_wta_network(3, 0)


class TestReadout:
    def test_first_winner_unique(self):
        assert first_winner((5, 2, 9)) == 1

    def test_first_winner_tie_is_none(self):
        assert first_winner((2, 2, 9)) is None

    def test_first_winner_silent_is_none(self):
        assert first_winner((INF, INF)) is None

    def test_winners_list(self):
        assert winners((3, 1, 1, INF)) == [1, 2]
        assert winners((INF, INF)) == []


class TestSpaceTimeProperties:
    def test_wta_outputs_are_space_time(self):
        from repro.core.properties import verify

        net = build_wta_network(3, window=1)
        for out in net.output_names:
            report = verify(net.as_function(output=out), window=3)
            assert report.ok, (out, report.violations[:2])
