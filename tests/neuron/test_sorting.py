"""Tests for bitonic / odd-even sorting networks (Fig. 10)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.properties import verify
from repro.core.value import INF
from repro.network.simulator import evaluate_vector
from repro.neuron.sorting import (
    comparator_count,
    sort_network,
    theoretical_bitonic_comparators,
)


def run_sort(net, vec):
    out = evaluate_vector(net, vec)
    return [out[f"s{i}"] for i in range(len(vec))]


def reference_sort(vec):
    return sorted(vec, key=lambda v: float("inf") if v is INF else v)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8])
    @pytest.mark.parametrize("algorithm", ["bitonic", "odd-even"])
    def test_exhaustive_binary_inputs(self, n, algorithm):
        # Zero-one principle: a comparator network sorts all inputs iff it
        # sorts all 0/1 inputs. ∞ plays the role of 1.
        net = sort_network(n, algorithm=algorithm)
        for mask in range(2**n):
            vec = tuple(INF if mask & (1 << i) else 0 for i in range(n))
            assert run_sort(net, vec) == reference_sort(vec), vec

    @pytest.mark.parametrize("algorithm", ["bitonic", "odd-even"])
    def test_random_values(self, algorithm):
        rng = random.Random(7)
        for _ in range(60):
            n = rng.randint(1, 12)
            net = sort_network(n, algorithm=algorithm)
            vec = tuple(
                INF if rng.random() < 0.3 else rng.randint(0, 15)
                for _ in range(n)
            )
            assert run_sort(net, vec) == reference_sort(vec), vec

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.one_of(st.integers(min_value=0, max_value=20), st.just(INF)),
            min_size=1,
            max_size=10,
        )
    )
    def test_hypothesis_sorts(self, values):
        net = sort_network(len(values))
        assert run_sort(net, tuple(values)) == reference_sort(values)

    def test_duplicates(self):
        net = sort_network(6)
        assert run_sort(net, (3, 3, 1, 3, 1, 1)) == [1, 1, 1, 3, 3, 3]


class TestSpaceTimeProperties:
    def test_sort_outputs_are_space_time_functions(self):
        # The paper: sort is causal and invariant. Check output s1 of a
        # 3-sorter (the median — the most interesting one).
        net = sort_network(3)
        report = verify(net.as_function(output="s1"), window=4)
        assert report.ok, report.violations[:3]

    def test_min_output_is_first_arrival(self):
        net = sort_network(4)
        f = verify(net.as_function(output="s0"), window=3)
        assert f.ok


class TestStructure:
    def test_only_min_max_nodes(self):
        net = sort_network(8)
        kinds = net.counts_by_kind()
        assert set(kinds) <= {"input", "min", "max"}

    def test_power_of_two_comparator_count(self):
        for n in (2, 4, 8, 16):
            net = sort_network(n)
            assert comparator_count(net) == theoretical_bitonic_comparators(n)

    def test_padding_reduces_comparators(self):
        # A 5-sorter via virtual padding must be cheaper than a full
        # 8-sorter: folded comparators are never emitted.
        assert comparator_count(sort_network(5)) < comparator_count(
            sort_network(8)
        )

    def test_odd_even_cheaper_than_bitonic(self):
        # The classic result, and our ablation: Batcher's odd-even merge
        # sort uses fewer comparators than bitonic sort.
        for n in (8, 16, 32):
            assert comparator_count(
                sort_network(n, algorithm="odd-even")
            ) < comparator_count(sort_network(n, algorithm="bitonic"))

    def test_theoretical_count_requires_power_of_two(self):
        with pytest.raises(ValueError):
            theoretical_bitonic_comparators(6)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            sort_network(4, algorithm="quicksort")

    def test_zero_inputs_rejected(self):
        with pytest.raises(ValueError):
            sort_network(0)
