"""Tests for response functions and the Fig. 11 step decomposition."""

import pytest

from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate_vector
from repro.neuron.response import (
    FIG11_RESPONSE,
    ResponseFunction,
    StepTrain,
    fanout_network,
)


class TestBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ResponseFunction([])

    def test_extension_beyond_tmax(self):
        r = ResponseFunction([0, 2, 1])
        assert r(2) == 1
        assert r(100) == 1  # holds final value

    def test_zero_before_spike(self):
        r = ResponseFunction([0, 2, 1])
        assert r(-1) == 0
        assert r(-100) == 0

    def test_extrema(self):
        r = ResponseFunction([0, 3, 5, 2, -1])
        assert r.r_max == 5
        assert r.r_min == -1
        assert r.t_max == 4
        assert r.final_value == -1

    def test_equality_and_hash(self):
        a = ResponseFunction([0, 1, 2])
        b = ResponseFunction([0, 1, 2], name="other")
        assert a == b
        assert hash(a) == hash(b)


class TestTransforms:
    def test_scaled(self):
        r = ResponseFunction([0, 1, 2]).scaled(3)
        assert r.values == (0, 3, 6)

    def test_negated_is_inhibitory(self):
        r = ResponseFunction([0, 2, 1]).negated()
        assert r.values == (0, -2, -1)
        assert r.r_max == 0

    def test_delayed(self):
        r = ResponseFunction([1, 2]).delayed(2)
        assert r.values == (0, 0, 1, 2)

    def test_delayed_negative_rejected(self):
        with pytest.raises(ValueError):
            ResponseFunction([1]).delayed(-1)


class TestStandardShapes:
    def test_biexponential_shape(self):
        r = ResponseFunction.biexponential(amplitude=5, t_max=12)
        assert r(0) == 0  # starts at zero
        assert r.r_max == 5  # peak equals amplitude
        assert r.final_value == 0  # decays back
        # Rises early, decays late.
        peak_index = r.values.index(5)
        assert 1 <= peak_index <= 5

    def test_fig11_constants(self):
        # The paper's running example: r_max = 5, t_max = 12, c = 0.
        assert FIG11_RESPONSE.r_max == 5
        assert FIG11_RESPONSE.t_max == 12
        assert FIG11_RESPONSE.final_value == 0

    def test_biexponential_tau_ordering(self):
        with pytest.raises(ValueError):
            ResponseFunction.biexponential(tau_slow=2.0, tau_fast=6.0)

    def test_piecewise_linear_shape(self):
        r = ResponseFunction.piecewise_linear(amplitude=4, rise=2, fall=4)
        assert r(0) == 0
        assert r(2) == 4  # peak at end of rise
        assert r(6) == 0  # back to zero after fall
        assert r.t_max == 6

    def test_piecewise_linear_validation(self):
        with pytest.raises(ValueError):
            ResponseFunction.piecewise_linear(rise=0)

    def test_step_response(self):
        r = ResponseFunction.step(amplitude=2, width=3)
        assert r.values == (2, 2, 2, 0)


class TestStepDecomposition:
    def test_simple(self):
        r = ResponseFunction([0, 2, 2, 1])
        train = r.steps()
        assert train.ups == (1, 1)
        assert train.downs == (3,)

    def test_initial_jump(self):
        r = ResponseFunction([3, 3, 0])
        train = r.steps()
        assert train.ups == (0, 0, 0)
        assert train.downs == (2, 2, 2)

    def test_inhibitory_steps(self):
        r = ResponseFunction([0, -2, 0])
        train = r.steps()
        assert train.ups == (2, 2)
        assert train.downs == (1, 1)

    def test_roundtrip(self):
        for r in [
            FIG11_RESPONSE,
            ResponseFunction.piecewise_linear(),
            ResponseFunction.step(amplitude=3),
            ResponseFunction([1, -1, 4, 4, 0]),
        ]:
            rebuilt = ResponseFunction.from_steps(r.steps())
            for t in range(r.t_max + 2):
                assert rebuilt(t) == r(t), (r.name, t)

    def test_net_amplitude(self):
        train = StepTrain(ups=(0, 1, 1), downs=(2,))
        assert train.net_amplitude_at(0) == 1
        assert train.net_amplitude_at(1) == 3
        assert train.net_amplitude_at(2) == 2

    def test_total_steps(self):
        assert FIG11_RESPONSE.steps().total_steps == 10


class TestFanoutNetwork:
    def test_wires_carry_incremented_times(self):
        b = NetworkBuilder("fanout")
        x = b.input("x")
        r = ResponseFunction([0, 2, 1])  # ups at 1,1; down at 2
        ups, downs = fanout_network(b, x, r)
        for i, w in enumerate(ups):
            b.output(f"u{i}", w)
        for i, w in enumerate(downs):
            b.output(f"d{i}", w)
        net = b.build()
        out = evaluate_vector(net, (5,))
        assert out["u0"] == 6 and out["u1"] == 6
        assert out["d0"] == 7

    def test_absent_input_yields_no_steps(self):
        b = NetworkBuilder("fanout")
        x = b.input("x")
        ups, downs = fanout_network(b, x, FIG11_RESPONSE)
        b.output("u0", ups[0])
        net = b.build()
        assert evaluate_vector(net, (INF,))["u0"] is INF

    def test_step_counts_match_decomposition(self):
        b = NetworkBuilder("fanout")
        x = b.input("x")
        ups, downs = fanout_network(b, x, FIG11_RESPONSE)
        train = FIG11_RESPONSE.steps()
        assert len(ups) == len(train.ups)
        assert len(downs) == len(train.downs)
