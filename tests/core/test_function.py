"""Tests for the SpaceTimeFunction model and domain enumeration."""

import pytest

from repro.core.algebra import inc, lt, minimum
from repro.core.function import (
    SpaceTimeFunction,
    enumerate_domain,
    enumerate_normalized_domain,
    st_function,
)
from repro.core.value import INF


def make_min2():
    return SpaceTimeFunction(lambda a, b: minimum(a, b), 2, name="min2")


class TestWrapper:
    def test_call(self):
        f = make_min2()
        assert f(3, 1) == 1

    def test_arity_enforced(self):
        f = make_min2()
        with pytest.raises(TypeError):
            f(1)
        with pytest.raises(TypeError):
            f(1, 2, 3)

    def test_inputs_validated(self):
        f = make_min2()
        with pytest.raises(ValueError):
            f(-1, 2)

    def test_output_validated(self):
        bad = SpaceTimeFunction(lambda a: "oops", 1, name="bad")
        with pytest.raises(TypeError):
            bad(1)

    def test_zero_arity_rejected(self):
        # A source with no inputs would be a spontaneous spike generator,
        # which causality forbids.
        with pytest.raises(ValueError):
            SpaceTimeFunction(lambda: 0, 0)

    def test_on_vector(self):
        f = make_min2()
        assert f.on_vector([4, 2]) == 2

    def test_decorator(self):
        @st_function(1)
        def plus_two(x):
            return inc(x, 2)

        assert plus_two.arity == 1
        assert plus_two.name == "plus_two"
        assert plus_two(3) == 5

    def test_repr_mentions_name(self):
        assert "min2" in repr(make_min2())


class TestCompose:
    def test_fig6b_example(self):
        # Fig. 6b: y = lt(inc(min(a, b)), b') ... we reproduce the shape
        # lt(min(x1, x2) + 1, x3) as a composition.
        lt_f = SpaceTimeFunction(lt, 2, name="lt")
        min_inc = SpaceTimeFunction(lambda a, b: inc(minimum(a, b)), 2)
        ident = SpaceTimeFunction(lambda x: x, 1, name="id")
        composed = lt_f.compose(min_inc, ident)
        assert composed.arity == 3
        assert composed(2, 4, 9) == 3  # min(2,4)+1 = 3 < 9
        assert composed(2, 4, 3) is INF  # 3 < 3 fails

    def test_compose_arity_mismatch(self):
        f = make_min2()
        with pytest.raises(ValueError):
            f.compose(make_min2())

    def test_equal_on(self):
        f = make_min2()
        g = SpaceTimeFunction(lambda a, b: minimum(b, a), 2)
        assert f.equal_on(g, enumerate_domain(2, 3))

    def test_equal_on_detects_difference(self):
        f = make_min2()
        h = SpaceTimeFunction(lambda a, b: inc(minimum(a, b), 0 if a == b else 1), 2)
        assert not f.equal_on(h, enumerate_domain(2, 3))

    def test_equal_on_arity_mismatch_is_false(self):
        f = make_min2()
        ident = SpaceTimeFunction(lambda x: x, 1)
        assert not f.equal_on(ident, enumerate_domain(2, 2))


class TestEnumeration:
    def test_domain_size(self):
        vecs = list(enumerate_domain(2, 3))
        # (window + 2)^arity = 5^2
        assert len(vecs) == 25
        assert (INF, INF) in vecs
        assert (0, 0) in vecs

    def test_domain_without_inf(self):
        vecs = list(enumerate_domain(2, 3, include_inf=False))
        assert len(vecs) == 16
        assert all(INF not in v for v in vecs)

    def test_normalized_domain_has_zero(self):
        vecs = list(enumerate_normalized_domain(3, 2))
        assert vecs
        assert all(any(x == 0 for x in v) for v in vecs)

    def test_normalized_is_subset(self):
        full = set(enumerate_domain(2, 2))
        normalized = set(enumerate_normalized_domain(2, 2))
        assert normalized < full
