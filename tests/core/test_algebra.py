"""Tests for the primitive operations (paper Fig. 6 semantics)."""

import pytest

from repro.core.algebra import (
    PRIMITIVES,
    add,
    delay,
    eq,
    first_n,
    inc,
    le,
    lt,
    maximum,
    minimum,
)
from repro.core.value import INF


class TestInc:
    def test_unit_increment(self):
        assert inc(4) == 5

    def test_constant_increment(self):
        assert inc(4, 3) == 7

    def test_zero_increment_is_identity(self):
        assert inc(4, 0) == 4

    def test_no_spike_stays_absent(self):
        assert inc(INF) is INF
        assert inc(INF, 100) is INF

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            inc(1, -1)

    def test_delay_alias(self):
        assert delay(2, 5) == 7


class TestMinimum:
    def test_first_arrival(self):
        assert minimum(4, 2, 9) == 2

    def test_inf_is_identity(self):
        assert minimum(INF, 3) == 3

    def test_all_absent(self):
        assert minimum(INF, INF) is INF

    def test_empty_meet_is_top(self):
        assert minimum() is INF

    def test_single(self):
        assert minimum(5) == 5


class TestMaximum:
    def test_last_arrival(self):
        assert maximum(4, 2, 9) == 9

    def test_waits_forever_for_missing_spike(self):
        # max must observe all inputs; one absent spike means no output.
        assert maximum(3, INF) is INF

    def test_empty_join_is_bottom(self):
        assert maximum() == 0

    def test_single(self):
        assert maximum(5) == 5


class TestLt:
    def test_passes_strictly_earlier(self):
        assert lt(2, 5) == 2

    def test_blocks_ties(self):
        assert lt(3, 3) is INF

    def test_blocks_later(self):
        assert lt(5, 2) is INF

    def test_finite_beats_absent(self):
        assert lt(4, INF) == 4

    def test_absent_never_passes(self):
        assert lt(INF, 4) is INF
        assert lt(INF, INF) is INF


class TestDerivedOps:
    def test_le_passes_ties(self):
        assert le(3, 3) == 3

    def test_le_blocks_later(self):
        assert le(5, 2) is INF

    def test_le_matches_lt_inc_identity(self):
        for a in [0, 1, 4, INF]:
            for b in [0, 1, 4, INF]:
                assert le(a, b) == lt(a, inc(b))

    def test_eq_passes_simultaneous(self):
        assert eq(2, 2) == 2

    def test_eq_blocks_absent_pair(self):
        # Two never-spikes produce no event to time-stamp.
        assert eq(INF, INF) is INF

    def test_eq_blocks_mismatch(self):
        assert eq(2, 3) is INF


class TestFirstN:
    def test_first_is_min(self):
        vec = (5, 2, 9, INF)
        assert first_n(vec, 1) == minimum(*vec)

    def test_nth_spike(self):
        assert first_n((5, 2, 9), 2) == 5
        assert first_n((5, 2, 9), 3) == 9

    def test_too_few_spikes(self):
        assert first_n((5, INF, INF), 2) is INF

    def test_counts_duplicates(self):
        assert first_n((3, 3, 7), 2) == 3

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            first_n((1,), 0)


class TestAdd:
    def test_finite(self):
        assert add(2, 3) == 5

    def test_absorbing(self):
        assert add(INF, 3) is INF
        assert add(3, INF) is INF

    def test_add_is_not_invariant(self):
        # The paper's point: (a+1) + (b+1) != (a+b) + 1.
        a, b = 2, 3
        assert add(a + 1, b + 1) != add(a, b) + 1


def test_primitive_registry():
    assert set(PRIMITIVES) == {"inc", "min", "max", "lt"}
    assert PRIMITIVES["min"](4, 1) == 1
    assert PRIMITIVES["lt"](1, 4) == 1
