"""Tests for the N0∞ value domain."""

import pickle

import pytest

from repro.core.value import (
    INF,
    Infinity,
    as_time,
    check_time,
    check_vector,
    finite_values,
    is_finite,
    is_normalized,
    is_time,
    normalize,
    shift,
    t_max,
    t_min,
)


class TestInfinity:
    def test_singleton(self):
        assert Infinity() is INF

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(INF)) is INF

    def test_greater_than_any_natural(self):
        for n in (0, 1, 10, 10**9):
            assert INF > n
            assert n < INF
            assert not (INF < n)
            assert not (INF <= n)
            assert n <= INF

    def test_equals_itself_only(self):
        assert INF == INF
        assert INF == Infinity()
        assert INF != 0
        assert INF != 10**12

    def test_equals_float_inf(self):
        assert INF == float("inf")

    def test_not_less_than_itself(self):
        assert not (INF < INF)
        assert INF <= INF
        assert INF >= INF

    def test_absorbing_addition(self):
        assert INF + 5 is INF
        assert 5 + INF is INF
        assert INF + INF is INF

    def test_subtracting_finite_keeps_infinity(self):
        assert INF - 3 is INF

    def test_infinity_minus_infinity_undefined(self):
        with pytest.raises(ArithmeticError):
            INF - INF

    def test_hashable(self):
        assert len({INF, Infinity()}) == 1

    def test_repr_and_str(self):
        assert repr(INF) == "INF"
        assert str(INF) == "∞"


class TestMembership:
    def test_naturals_are_times(self):
        assert is_time(0)
        assert is_time(7)
        assert is_time(INF)

    def test_negatives_are_not(self):
        assert not is_time(-1)

    def test_bools_are_not(self):
        assert not is_time(True)
        assert not is_time(False)

    def test_floats_are_not(self):
        assert not is_time(1.0)

    def test_check_time_passes_members(self):
        assert check_time(3) == 3
        assert check_time(INF) is INF

    def test_check_time_rejects_negative(self):
        with pytest.raises(ValueError):
            check_time(-2)

    def test_check_time_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_time(True)
        with pytest.raises(TypeError):
            check_time(2.5)

    def test_check_vector_reports_position(self):
        with pytest.raises(ValueError, match=r"\[2\]"):
            check_vector([0, 1, -3])


class TestAsTime:
    def test_none_means_no_spike(self):
        assert as_time(None) is INF

    def test_float_inf_coerces(self):
        assert as_time(float("inf")) is INF

    def test_integral_float_coerces(self):
        assert as_time(4.0) == 4

    def test_fractional_float_rejected(self):
        with pytest.raises(ValueError):
            as_time(1.5)


class TestVectorOps:
    def test_t_min_empty_is_top(self):
        assert t_min([]) is INF

    def test_t_max_empty_is_bottom(self):
        assert t_max([]) == 0

    def test_t_min_ignores_inf(self):
        assert t_min([INF, 4, 9]) == 4

    def test_t_max_saturates_at_inf(self):
        assert t_max([1, INF, 3]) is INF

    def test_shift_forward(self):
        assert shift((0, 2, INF), 3) == (3, 5, INF)

    def test_shift_backward(self):
        assert shift((3, 5, INF), -3) == (0, 2, INF)

    def test_shift_below_zero_rejected(self):
        with pytest.raises(ValueError):
            shift((1, 2), -2)

    def test_is_finite(self):
        assert is_finite(0)
        assert not is_finite(INF)

    def test_finite_values(self):
        assert finite_values([3, INF, 0, INF]) == [3, 0]


class TestNormalize:
    def test_paper_example(self):
        # The paper's table walkthrough: [3, 4, 5] normalizes to [0, 1, 2].
        vec, lo = normalize((3, 4, 5))
        assert vec == (0, 1, 2)
        assert lo == 3

    def test_already_normalized(self):
        vec, lo = normalize((0, 3, INF))
        assert vec == (0, 3, INF)
        assert lo == 0

    def test_all_inf_has_no_anchor(self):
        vec, lo = normalize((INF, INF))
        assert vec == (INF, INF)
        assert lo is INF

    def test_is_normalized(self):
        assert is_normalized((0, 5))
        assert not is_normalized((1, 5))
        assert not is_normalized((INF, INF))

    def test_roundtrip(self):
        original = (7, 9, INF, 12)
        vec, lo = normalize(original)
        assert shift(vec, lo) == original
