"""Tests for normalized function tables (§III.F, Fig. 7)."""

import random

import pytest

from repro.core.function import SpaceTimeFunction
from repro.core.properties import verify
from repro.core.table import FIG7_TABLE, NormalizedTable, TableError
from repro.core.value import INF


class TestNormalForm:
    def test_row_without_zero_rejected(self):
        with pytest.raises(TableError, match="no 0 entry"):
            NormalizedTable({(1, 2): 3})

    def test_inf_output_rejected(self):
        with pytest.raises(TableError, match="∞"):
            NormalizedTable({(0, 1): INF})

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(TableError, match="arity"):
            NormalizedTable([((0, 1), 2), ((0, 1, 2), 3)])

    def test_duplicate_conflicting_rows_rejected(self):
        with pytest.raises(TableError, match="twice"):
            NormalizedTable([((0, 1), 2), ((0, 1), 3)])

    def test_duplicate_identical_rows_merge(self):
        t = NormalizedTable([((0, 1), 2), ((0, 1), 2)])
        assert len(t) == 1

    def test_empty_table_rejected(self):
        with pytest.raises(TableError):
            NormalizedTable({})

    def test_all_inf_row_rejected(self):
        # No 0 entry by definition.
        with pytest.raises(TableError):
            NormalizedTable({(INF, INF): 1})


class TestEvaluation:
    def test_paper_walkthrough(self):
        # §III.F: input [3,4,5] normalizes to [0,1,2] -> 3, so output 6.
        assert FIG7_TABLE.evaluate((3, 4, 5)) == 6

    def test_direct_rows(self):
        assert FIG7_TABLE.evaluate((0, 1, 2)) == 3
        assert FIG7_TABLE.evaluate((1, 0, INF)) == 2
        assert FIG7_TABLE.evaluate((2, 2, 0)) == 2

    def test_missing_row_is_inf(self):
        assert FIG7_TABLE.evaluate((0, 0, 0)) is INF

    def test_shifted_row_with_inf(self):
        assert FIG7_TABLE.evaluate((6, 5, INF)) == 7

    def test_all_inf_input(self):
        assert FIG7_TABLE.evaluate((INF, INF, INF)) is INF

    def test_wrong_arity(self):
        with pytest.raises(TypeError):
            FIG7_TABLE.evaluate((0, 1))

    def test_as_function_is_space_time(self):
        report = verify(FIG7_TABLE.as_causal_function(), window=4)
        assert report.ok, report.violations[:3]


class TestCausalSemantics:
    def test_late_spike_matches_inf_coordinate(self):
        # Row (1, 0, ∞) -> 2: a spike at x3 later than 2 is unobservable
        # before the output fires, so it must not change the result.
        assert FIG7_TABLE.evaluate_causal((1, 0, 7)) == 2
        assert FIG7_TABLE.evaluate_causal((1, 0, 3)) == 2

    def test_early_spike_suppresses_inf_match(self):
        assert FIG7_TABLE.evaluate_causal((1, 0, 2)) is INF
        assert FIG7_TABLE.evaluate_causal((1, 0, 0)) is INF

    def test_literal_semantics_differ_on_late_spike(self):
        assert FIG7_TABLE.evaluate((1, 0, 7)) is INF

    def test_agree_without_inf_rows(self):
        t = NormalizedTable({(0, 1): 2, (1, 0): 1})
        for a in [0, 1, 2, 3, INF]:
            for b in [0, 1, 2, 3, INF]:
                assert t.evaluate((a, b)) == t.evaluate_causal((a, b))

    def test_min_combines_overlapping_matches(self):
        # Both rows match (0, 3): the exact row gives 3, the ∞-row gives 1
        # (3 > 1). The earlier output wins, as the final min of the minterm
        # form dictates.
        t = NormalizedTable({(0, INF): 1, (0, 3): 3})
        assert t.evaluate_causal((0, 3)) == 1
        assert t.evaluate((0, 3)) == 3


class TestCanonicalForm:
    def test_fig7_is_canonical(self):
        assert FIG7_TABLE.is_canonical()

    def test_non_canonical_detected(self):
        t = NormalizedTable({(0, 5): 2})
        assert not t.is_canonical()

    def test_canonicalize_rewrites_late_coordinates(self):
        t = NormalizedTable({(0, 5): 2}).canonicalize()
        assert t.rows == {(0, INF): 2}

    def test_canonicalize_conflict_raises(self):
        t = NormalizedTable({(0, 5): 2, (0, INF): 3})
        with pytest.raises(TableError, match="realizable"):
            t.canonicalize()

    def test_canonicalize_merges_identical(self):
        t = NormalizedTable({(0, 5): 2, (0, 6): 2}).canonicalize()
        assert t.rows == {(0, INF): 2}


class TestFromFunction:
    def test_roundtrip_min(self):
        min2 = SpaceTimeFunction(lambda a, b: min(a, b), 2, name="min")
        t = NormalizedTable.from_function(min2, window=3)
        # Every normalized vector with a finite min maps to it.
        assert t.evaluate((0, 2)) == 0
        assert t.evaluate((4, 7)) == 4

    def test_roundtrip_table(self):
        t = NormalizedTable.random(3, window=3, n_rows=6, rng=random.Random(3))
        back = NormalizedTable.from_function(t.as_function(), window=t.max_entry())
        assert back == t

    def test_causal_roundtrip(self):
        t = NormalizedTable.random(2, window=3, n_rows=4, rng=random.Random(5))
        f = t.as_causal_function()
        back = NormalizedTable.from_function(f, window=t.max_entry() + 1)
        # The recovered literal table must agree with the causal semantics
        # everywhere in the window.
        for vec, y in back:
            assert t.evaluate_causal(vec) == y


class TestRandomTables:
    def test_random_is_canonical(self):
        for seed in range(5):
            t = NormalizedTable.random(
                3, window=4, n_rows=8, rng=random.Random(seed)
            )
            assert t.is_canonical()

    def test_random_row_count(self):
        t = NormalizedTable.random(3, window=4, n_rows=8, rng=random.Random(0))
        assert 1 <= len(t) <= 8

    def test_random_deterministic(self):
        a = NormalizedTable.random(2, window=3, n_rows=5, rng=random.Random(9))
        b = NormalizedTable.random(2, window=3, n_rows=5, rng=random.Random(9))
        assert a == b


class TestDiagnostics:
    def test_max_entry(self):
        assert FIG7_TABLE.max_entry() == 3

    def test_causality_violations_on_good_table(self):
        assert FIG7_TABLE.is_causal()

    def test_causality_violation_detected(self):
        t = NormalizedTable({(0, 5): 2})
        violations = t.causality_violations()
        assert violations
        assert not t.is_causal()

    def test_pretty_renders_rows(self):
        text = FIG7_TABLE.pretty()
        assert "x1" in text and "y" in text
        assert "∞" in text

    def test_repr(self):
        assert "rows=3" in repr(FIG7_TABLE)

    def test_hash_and_eq(self):
        t1 = NormalizedTable({(0, 1): 1})
        t2 = NormalizedTable({(0, 1): 1})
        assert t1 == t2
        assert hash(t1) == hash(t2)
        assert t1 != NormalizedTable({(0, 1): 2})
