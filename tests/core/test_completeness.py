"""Tests for the incompleteness remarks made executable."""

import random

import pytest

from repro.core.algebra import lt, minimum
from repro.core.completeness import (
    ADDITION,
    MULTIPLICATION,
    NEGATION_LIKE,
    NON_IMPLEMENTABLE,
    TIME_REVERSAL,
    Classification,
    classify_function,
    implementable_fraction,
)
from repro.core.function import SpaceTimeFunction
from repro.core.synthesis import max_from_min_lt


class TestClassify:
    def test_primitives_are_space_time(self):
        assert classify_function(
            SpaceTimeFunction(minimum, 2, name="min")
        ).is_space_time
        assert classify_function(
            SpaceTimeFunction(lt, 2, name="lt")
        ).is_space_time

    def test_lemma2_construction_is_space_time(self):
        verdict = classify_function(max_from_min_lt().as_function())
        assert verdict.is_space_time
        assert "space-time function" in str(verdict)

    @pytest.mark.parametrize(
        "func", NON_IMPLEMENTABLE, ids=lambda f: f.name
    )
    def test_canonical_counterexamples_rejected(self, func):
        verdict = classify_function(func)
        assert not verdict.is_space_time
        assert verdict.witness is not None
        assert "NOT" in str(verdict)

    def test_negation_breaks_a_property(self):
        # t -> 7 - t: time flows backwards; also turns silence into a
        # spontaneous spike — causality catches it first.
        verdict = classify_function(NEGATION_LIKE)
        assert verdict.failed_property in ("causality", "invariance")

    def test_addition_is_not_invariant(self):
        # The paper's explicit remark: (a+1) + (b+1) != (a+b) + 1.
        verdict = classify_function(ADDITION)
        assert verdict.failed_property == "invariance"

    def test_multiplication_rejected(self):
        assert not classify_function(MULTIPLICATION).is_space_time

    def test_time_reversal_breaks_causality(self):
        assert classify_function(TIME_REVERSAL).failed_property == "causality"

    def test_classification_dataclass(self):
        ok = Classification(is_space_time=True)
        assert ok.failed_property is None


class TestFraction:
    def test_exhaustive_tiny_window(self):
        hits, total = implementable_fraction(arity=1, window=1)
        assert total == 64  # 4 outputs ^ 3 domain points
        assert 0 < hits < total
        # Identity, inc(+1), inc(+2), and never are among them.
        assert hits >= 4

    def test_fraction_shrinks_with_window(self):
        small_hits, small_total = implementable_fraction(arity=1, window=1)
        large_hits, large_total = implementable_fraction(arity=1, window=2)
        assert large_hits / large_total < small_hits / small_total

    def test_sampled_mode(self):
        hits, total = implementable_fraction(
            arity=2, window=1, samples=500, rng=random.Random(1)
        )
        assert total == 500
        assert hits < total * 0.25  # s-t functions are rare

    def test_deterministic_sampling(self):
        a = implementable_fraction(
            arity=2, window=1, samples=200, rng=random.Random(3)
        )
        b = implementable_fraction(
            arity=2, window=1, samples=200, rng=random.Random(3)
        )
        assert a == b
