"""Tests for the causality/invariance/boundedness checkers (§III.C/E)."""

import random

import pytest

from repro.core.algebra import add, inc, lt, maximum, minimum
from repro.core.function import SpaceTimeFunction, enumerate_domain
from repro.core.properties import (
    check_bounded_history,
    check_causality,
    check_invariance,
    check_totality,
    sample_vectors,
    verify,
)
from repro.core.value import INF, Infinity

MIN2 = SpaceTimeFunction(lambda a, b: minimum(a, b), 2, name="min")
MAX2 = SpaceTimeFunction(lambda a, b: maximum(a, b), 2, name="max")
LT2 = SpaceTimeFunction(lt, 2, name="lt")
INC1 = SpaceTimeFunction(lambda x: inc(x, 2), 1, name="inc2")


class TestPrimitivesAreSpaceTime:
    """The paper's Fig. 6 claim: the primitives satisfy all properties."""

    @pytest.mark.parametrize("func", [MIN2, MAX2, LT2, INC1], ids=lambda f: f.name)
    def test_primitive_passes_all_checks(self, func):
        report = verify(func, window=5)
        assert report.ok, str(report.violations[:3])

    def test_min_is_bounded_with_k0(self):
        # min fires at the first spike; later inputs are causality-masked,
        # so nothing observable is ever stale: bounded with k = 0.
        vecs = list(enumerate_domain(2, 5))
        report = check_bounded_history(MIN2, vecs, 0)
        assert report.ok, report.violations[:3]

    def test_max_is_not_bounded(self):
        # max(0, 6) = 6: the early spike at 0 is observable (not after the
        # output) yet masking it changes the output to ∞ — max must
        # remember arbitrarily old spikes, so no finite window suffices.
        # (Lemma 2 holds anyway — it doesn't need boundedness.)
        vecs = [(0, 6)]
        report = check_bounded_history(MAX2, vecs, 3)
        assert not report.ok


class TestCausality:
    def test_detects_spontaneous_spike(self):
        ghost = SpaceTimeFunction(lambda x: 0, 1, name="ghost")
        vecs = [(3,)]
        report = check_causality(ghost, vecs)
        assert not report.ok
        assert "spontaneous" in report.violations[0].detail

    def test_detects_future_dependence(self):
        # Output at min time but *value* depends on the later input: a
        # clairvoyant block.
        def clairvoyant(a, b):
            if isinstance(b, Infinity):
                return a
            lo = minimum(a, b)
            return INF if isinstance(lo, Infinity) else lo + (b % 2)

        f = SpaceTimeFunction(clairvoyant, 2, name="clairvoyant")
        report = check_causality(f, list(enumerate_domain(2, 4)))
        assert not report.ok

    def test_all_inf_output_finite_is_flagged(self):
        always_seven = SpaceTimeFunction(lambda a: 7, 1, name="seven")
        report = check_causality(always_seven, [(INF,)])
        assert not report.ok


class TestInvariance:
    def test_add_constant_is_invariant(self):
        report = check_invariance(INC1, list(enumerate_domain(1, 5)))
        assert report.ok

    def test_sum_is_not_invariant(self):
        summed = SpaceTimeFunction(add, 2, name="sum")
        report = check_invariance(summed, list(enumerate_domain(2, 3)))
        assert not report.ok

    def test_halver_is_not_invariant(self):
        halver = SpaceTimeFunction(
            lambda x: INF if isinstance(x, Infinity) else x // 2, 1, name="half"
        )
        report = check_invariance(halver, list(enumerate_domain(1, 5)))
        assert not report.ok

    def test_larger_shifts_catch_sneaky_functions(self):
        # Invariant for shift 1 on the sampled points but not shift 3 —
        # impossible for honest functions, so construct one that cheats on
        # specific values.
        def cheat(x):
            if isinstance(x, Infinity):
                return INF
            return x + (1 if x % 3 == 0 else 1)  # actually invariant

        f = SpaceTimeFunction(cheat, 1, name="cheat")
        report = check_invariance(f, [(0,), (1,), (2,)], shifts=(1, 3))
        assert report.ok  # sanity: the shifts parameter is exercised


class TestTotality:
    def test_raising_function_reported(self):
        def boom(x):
            raise RuntimeError("no output")

        f = SpaceTimeFunction(boom, 1, name="boom")
        report = check_totality(f, [(0,), (1,)])
        assert len(report.violations) == 2
        assert report.violations[0].prop == "totality"


class TestBoundedHistory:
    def test_windowed_min_is_bounded(self):
        # A "recent min": ignores spikes more than k=2 older than the
        # latest input. This *is* bounded with k=2.
        def recent_min(a, b):
            finite = [v for v in (a, b) if not isinstance(v, Infinity)]
            if not finite:
                return INF
            newest = max(finite)
            recent = [v for v in finite if v >= newest - 2]
            return min(recent)

        f = SpaceTimeFunction(recent_min, 2, name="recent_min")
        report = check_bounded_history(f, list(enumerate_domain(2, 6)), 2)
        assert report.ok

    def test_latching_function_violates_any_window(self):
        # "Pass b if a arrived at or before b": needs a latch remembering
        # a forever — stale a still affects the output, any finite k.
        def latched_pass(a, b):
            if isinstance(b, Infinity):
                return INF
            return b if a <= b else INF

        f = SpaceTimeFunction(latched_pass, 2, name="latched")
        report = check_bounded_history(f, [(0, 9)], 3)
        assert not report.ok
        assert "stale" in report.violations[0].detail


class TestSampling:
    def test_sample_shape(self):
        vecs = sample_vectors(4, count=50, max_time=9, rng=random.Random(1))
        assert len(vecs) == 50
        assert all(len(v) == 4 for v in vecs)

    def test_inf_probability_zero(self):
        vecs = sample_vectors(3, count=30, max_time=5, inf_probability=0.0)
        assert all(INF not in v for v in vecs)

    def test_inf_probability_one(self):
        vecs = sample_vectors(3, count=5, max_time=5, inf_probability=1.0)
        assert all(all(x is INF for x in v) for v in vecs)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            sample_vectors(2, count=1, max_time=3, inf_probability=1.5)

    def test_deterministic_with_seed(self):
        a = sample_vectors(3, count=20, max_time=9, rng=random.Random(7))
        b = sample_vectors(3, count=20, max_time=9, rng=random.Random(7))
        assert a == b


class TestVerifyFacade:
    def test_custom_vectors(self):
        report = verify(MIN2, vectors=[(0, 1), (2, 2)])
        assert report.ok
        # totality + causality + invariance all ran over both vectors
        assert report.checked_vectors == 6

    def test_report_string(self):
        report = verify(MIN2, window=2)
        assert "min" in str(report)
        assert "OK" in str(report)
