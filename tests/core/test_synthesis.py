"""Tests for Lemma 2 and Theorem 1 constructions (§III.G, Figs. 8–9)."""

import random

import pytest

from repro.core.algebra import maximum
from repro.core.function import enumerate_domain
from repro.core.properties import verify
from repro.core.synthesis import (
    max_from_min_lt,
    max_tree,
    synthesis_cost,
    synthesize,
)
from repro.core.table import FIG7_TABLE, NormalizedTable, TableError
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate_vector


class TestLemma2:
    def test_exhaustive_equivalence(self):
        f = max_from_min_lt().as_function()
        for a, b in enumerate_domain(2, 8):
            assert f(a, b) == maximum(a, b), (a, b)

    def test_three_paper_cases(self):
        f = max_from_min_lt().as_function()
        assert f(2, 5) == 5  # case 1: a < b -> c = b
        assert f(4, 4) == 4  # case 2: a = b -> c = a = b
        assert f(7, 3) == 7  # case 3: a > b -> c = a

    def test_uses_only_min_and_lt(self):
        net = max_from_min_lt()
        kinds = net.counts_by_kind()
        assert kinds.get("max", 0) == 0
        assert kinds.get("inc", 0) == 0
        assert kinds["lt"] == 4
        assert kinds["min"] == 1

    def test_is_space_time_function(self):
        report = verify(max_from_min_lt().as_function(), window=5)
        assert report.ok

    def test_max_tree_wide(self):
        b = NetworkBuilder("tree")
        srcs = [b.input(f"x{i}") for i in range(5)]
        b.output("y", max_tree(b, srcs))
        net = b.build()
        assert net.counts_by_kind().get("max", 0) == 0
        rng = random.Random(2)
        for _ in range(50):
            vec = tuple(
                INF if rng.random() < 0.2 else rng.randint(0, 9) for _ in range(5)
            )
            assert evaluate_vector(net, vec)["y"] == maximum(*vec)

    def test_max_tree_needs_sources(self):
        b = NetworkBuilder("empty")
        with pytest.raises(ValueError):
            max_tree(b, [])


class TestTheorem1Fig9:
    """The paper's worked example: synthesizing the Fig. 7 table."""

    def test_minterm1_passes(self):
        net = synthesize(FIG7_TABLE)
        assert evaluate_vector(net, (0, 1, 2))["y"] == 3

    def test_other_rows(self):
        net = synthesize(FIG7_TABLE)
        assert evaluate_vector(net, (1, 0, INF))["y"] == 2
        assert evaluate_vector(net, (2, 2, 0))["y"] == 2

    def test_shifted_inputs(self):
        net = synthesize(FIG7_TABLE)
        assert evaluate_vector(net, (3, 4, 5))["y"] == 6

    def test_non_matching_is_inf(self):
        net = synthesize(FIG7_TABLE)
        assert evaluate_vector(net, (0, 0, 0))["y"] is INF

    def test_absent_coordinate_boundary(self):
        # Fig. 9 narrative: an x3 value greater than the minterm's output
        # (2) has no effect; <= 2 forces ∞.
        net = synthesize(FIG7_TABLE)
        assert evaluate_vector(net, (1, 0, 3))["y"] == 2
        assert evaluate_vector(net, (1, 0, 2))["y"] is INF
        assert evaluate_vector(net, (1, 0, 1))["y"] is INF

    def test_equals_causal_semantics_exhaustively(self):
        net = synthesize(FIG7_TABLE)
        f = net.as_function()
        for vec in enumerate_domain(3, 5):
            assert f(*vec) == FIG7_TABLE.evaluate_causal(vec), vec


class TestTheorem1Random:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_tables_synthesize_exactly(self, seed):
        table = NormalizedTable.random(
            3, window=3, n_rows=5, rng=random.Random(seed)
        )
        net = synthesize(table)
        f = net.as_function()
        window = table.max_entry() + 2
        for vec in enumerate_domain(3, window):
            assert f(*vec) == table.evaluate_causal(vec), (seed, vec)

    def test_synthesized_networks_are_space_time(self):
        table = NormalizedTable.random(2, window=3, n_rows=4, rng=random.Random(11))
        report = verify(synthesize(table).as_function(), window=5)
        assert report.ok

    def test_pure_primitive_variant(self):
        # use_max_primitive=False expands max via Lemma 2: the strict
        # min/lt/inc completeness claim of Theorem 1.
        table = NormalizedTable.random(3, window=3, n_rows=4, rng=random.Random(4))
        net = synthesize(table, use_max_primitive=False)
        assert net.counts_by_kind().get("max", 0) == 0
        f = net.as_function()
        g = synthesize(table).as_function()
        for vec in enumerate_domain(3, table.max_entry() + 1):
            assert f(*vec) == g(*vec), vec

    def test_single_row_single_input(self):
        table = NormalizedTable({(0,): 2})
        f = synthesize(table).as_function()
        assert f(0) == 2
        assert f(5) == 7
        assert f(INF) is INF


class TestStrictness:
    def test_non_canonical_rejected_by_default(self):
        t = NormalizedTable({(0, 5): 2})
        with pytest.raises(TableError, match="canonical"):
            synthesize(t)

    def test_non_strict_canonicalizes(self):
        t = NormalizedTable({(0, 5): 2})
        net = synthesize(t, strict=False)
        f = net.as_function()
        assert f(0, 9) == 2
        assert f(0, INF) == 2
        assert f(0, 1) is INF


class TestCost:
    def test_cost_matches_built_network(self):
        table = NormalizedTable.random(3, window=3, n_rows=5, rng=random.Random(8))
        cost = synthesis_cost(table)
        net = synthesize(table)
        kinds = net.counts_by_kind()
        assert kinds.get("inc", 0) == cost["inc"]
        assert kinds.get("lt", 0) == cost["lt"]
        assert kinds.get("max", 0) == cost["max"]

    def test_cost_scales_linearly_in_rows(self):
        small = NormalizedTable.random(3, window=3, n_rows=3, rng=random.Random(1))
        big = NormalizedTable.random(3, window=3, n_rows=12, rng=random.Random(1))
        assert synthesis_cost(big)["lt"] > synthesis_cost(small)["lt"]
