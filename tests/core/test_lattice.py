"""Tests for the bounded distributive lattice structure (§III.D)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import (
    BOTTOM,
    TOP,
    check_lattice_laws,
    has_complement,
    join,
    leq,
    meet,
    standard_domain,
)
from repro.core.value import INF

times = st.one_of(st.integers(min_value=0, max_value=50), st.just(INF))


class TestBounds:
    def test_bottom_and_top(self):
        assert BOTTOM == 0
        assert TOP is INF

    def test_meet_with_top_is_identity(self):
        assert meet(7, TOP) == 7

    def test_join_with_bottom_is_identity(self):
        assert join(7, BOTTOM) == 7

    def test_meet_with_bottom_annihilates(self):
        assert meet(7, BOTTOM) == 0

    def test_join_with_top_annihilates(self):
        assert join(7, TOP) is INF


class TestExhaustiveLaws:
    def test_all_laws_hold_on_window(self):
        violations = check_lattice_laws(standard_domain(5))
        assert violations == []

    def test_checker_detects_broken_domain(self):
        # A deliberately perverse check: laws are stated over N0∞; feeding
        # the checker a domain is fine, but we verify it *can* fail by
        # checking its internals against a fake law. Instead, simply ensure
        # the violation type renders usefully.
        from repro.core.lattice import LawViolation

        v = LawViolation("absorption(∧∨)", (1, 2), "a∧(a∨b) != a")
        assert "absorption" in str(v)
        assert "(1, 2)" in str(v)


class TestHypothesisLaws:
    @given(times, times)
    def test_commutativity(self, a, b):
        assert meet(a, b) == meet(b, a)
        assert join(a, b) == join(b, a)

    @given(times, times, st.one_of(st.integers(min_value=0, max_value=50), st.just(INF)))
    def test_distributivity(self, a, b, c):
        assert meet(a, join(b, c)) == join(meet(a, b), meet(a, c))
        assert join(a, meet(b, c)) == meet(join(a, b), join(a, c))

    @given(times, times)
    def test_absorption(self, a, b):
        assert meet(a, join(a, b)) == a
        assert join(a, meet(a, b)) == a

    @given(times)
    def test_idempotence(self, a):
        assert meet(a, a) == a
        assert join(a, a) == a

    @given(times, times)
    def test_total_order(self, a, b):
        # S is a chain: any two elements are comparable.
        assert leq(a, b) or leq(b, a)

    @given(times, times)
    def test_meet_join_consistency(self, a, b):
        # In a chain, meet and join select the two elements.
        assert {meet(a, b), join(a, b)} <= {a, b} or a == b


class TestComplementation:
    def test_bottom_and_top_complement_each_other(self):
        domain = standard_domain(6)
        assert has_complement(BOTTOM, domain)
        assert has_complement(TOP, domain)

    def test_interior_elements_have_no_complement(self):
        # The paper: S is not complemented — complementation would be time
        # flowing backwards.
        domain = standard_domain(6)
        for a in range(1, 7):
            assert not has_complement(a, domain)
