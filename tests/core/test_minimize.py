"""Tests for normalized-table minimization."""

import random

import pytest

from repro.core.function import enumerate_domain, enumerate_normalized_domain
from repro.core.minimize import minimize, minimize_with_generalization
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF


def assert_causally_equal(a, b, *, window):
    for vec in enumerate_domain(a.arity, window):
        assert a.evaluate_causal(vec) == b.evaluate_causal(vec), vec


class TestMinimize:
    def test_redundant_exact_row_dropped(self):
        # (0, 3) -> 3 is dominated by (0, ∞) -> 1 everywhere it matches.
        table = NormalizedTable({(0, INF): 1, (0, 3): 3})
        minimal = minimize(table)
        assert minimal.rows == {(0, INF): 1}
        assert_causally_equal(table, minimal, window=5)

    def test_non_redundant_rows_kept(self):
        minimal = minimize(FIG7_TABLE)
        assert minimal == FIG7_TABLE

    def test_early_row_not_dropped(self):
        # (0, 3) -> 3 matches (0, 3); the ∞ row requires x2 > 4, so it
        # does NOT cover the exact row.
        table = NormalizedTable({(0, INF): 4, (0, 3): 3})
        minimal = minimize(table)
        assert len(minimal) == 2

    @pytest.mark.parametrize("seed", range(8))
    def test_exactness_on_random_tables(self, seed):
        table = NormalizedTable.random(
            3, window=3, n_rows=10, rng=random.Random(seed)
        )
        minimal = minimize(table)
        assert len(minimal) <= len(table)
        assert_causally_equal(table, minimal, window=table.max_entry() + 1)

    def test_single_row_table_unchanged(self):
        table = NormalizedTable({(0, 1): 2})
        assert minimize(table) == table

    def test_minimization_shrinks_synthesis(self):
        table = NormalizedTable(
            {(0, INF): 1, (0, 2): 3, (0, 3): 3, (0, 4): 4}
        )
        minimal = minimize(table)
        assert len(minimal) < len(table)
        full = synthesize(table)
        small = synthesize(minimal)
        assert small.size < full.size
        f, g = full.as_function(), small.as_function()
        for vec in enumerate_domain(2, 6):
            assert f(*vec) == g(*vec), vec


class TestGeneralization:
    def test_widening_merges_tail_rows(self):
        # Rows (0, t) -> t for every t in 2..4 plus (0, ∞) -> ... pattern:
        # the exact rows beyond the output are representable as one ∞ row.
        table = NormalizedTable({(0, 2): 2, (0, 3): 2, (0, 4): 2, (0, INF): 2})
        minimal = minimize_with_generalization(table, window=7)
        assert len(minimal) < len(table)
        assert_causally_equal(table, minimal, window=7)

    def test_never_changes_semantics(self):
        for seed in range(4):
            table = NormalizedTable.random(
                2, window=3, n_rows=6, rng=random.Random(seed)
            )
            minimal = minimize_with_generalization(table)
            assert_causally_equal(table, minimal, window=table.max_entry() + 2)

    def test_rows_stay_normalized(self):
        table = NormalizedTable.random(
            3, window=3, n_rows=8, rng=random.Random(5)
        )
        minimal = minimize_with_generalization(table)
        for vec, _ in minimal:
            assert any(v == 0 for v in vec)
