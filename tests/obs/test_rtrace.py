"""Tests for request-scoped tracing: spans, exports, flight recorder."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import rtrace
from repro.obs.rtrace import (
    CANONICAL_ATTRS,
    FlightRecorder,
    RequestTrace,
    canonical_jsonl,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    well_formed,
)


def make_trace(trace_id="t1", *, retries=0):
    """A deterministic request lifecycle (clock passed in, never read)."""
    t = 0.0
    trace = RequestTrace(trace_id, model="demo", now=t)
    for attempt in range(1, retries + 2):
        trace.begin("queue", now=t)
        t += 0.001
        trace.end("queue", now=t)
        attempt_id = trace.begin("attempt", now=t, attempt=attempt)
        t += 0.002
        if attempt <= retries:
            trace.end("attempt", now=t, error="synthetic crash")
        else:
            trace.add("engine", t - 0.0015, t, parent=attempt_id)
            trace.end("attempt", now=t)
    trace.finish("ok", now=t)
    return trace


class TestEnableFlag:
    def test_default_off_and_toggle(self):
        assert not rtrace.rtrace_enabled()
        rtrace.enable_rtrace(True)
        try:
            assert rtrace.rtrace_enabled()
        finally:
            rtrace.enable_rtrace(False)
        assert not rtrace.rtrace_enabled()

    def test_context_manager_nests(self):
        with rtrace.rtracing():
            assert rtrace.rtrace_enabled()
            with rtrace.rtracing():
                assert rtrace.rtrace_enabled()
            assert rtrace.rtrace_enabled()  # inner exit must not disarm
        assert not rtrace.rtrace_enabled()


class TestRequestTrace:
    def test_lifecycle(self):
        trace = make_trace()
        assert trace.finished and trace.outcome == "ok"
        assert trace.spans[0].name == "request"
        assert trace.spans[0].attrs["model"] == "demo"
        assert [s.name for s in trace.spans] == [
            "request", "queue", "attempt", "engine"
        ]
        assert not well_formed(trace)

    def test_span_ids_are_creation_order(self):
        trace = make_trace(retries=1)
        assert [s.span_id for s in trace.spans] == list(range(len(trace.spans)))

    def test_finish_closes_stragglers(self):
        trace = RequestTrace("t", now=0.0)
        trace.begin("queue", now=0.0)
        trace.finish("deadline", now=1.0)
        assert all(s.end is not None for s in trace.spans)
        assert trace.outcome == "deadline"

    def test_end_unknown_span_is_noop(self):
        trace = RequestTrace("t", now=0.0)
        trace.end("never-opened", now=1.0)  # must not raise

    def test_retry_attempts_share_the_trace_id(self):
        trace = make_trace(retries=1)
        attempts = [s for s in trace.spans if s.name == "attempt"]
        assert len(attempts) == 2
        assert attempts[0].attrs["error"] == "synthetic crash"
        assert {s.trace_id for s in trace.spans} == {trace.trace_id}
        assert not well_formed(trace)


class TestWellFormed:
    def test_negative_duration_flagged(self):
        trace = RequestTrace("t", now=5.0)
        trace.begin("queue", now=5.0)
        trace.end("queue", now=4.0)
        trace.finish("ok", now=6.0)
        assert any("negative duration" in p for p in well_formed(trace))

    def test_bad_parent_flagged(self):
        trace = RequestTrace("t", now=0.0)
        trace.add("orphan", 0.1, 0.2, parent=99)
        trace.finish("ok", now=1.0)
        assert any("bad parent" in p for p in well_formed(trace))

    def test_child_outside_parent_flagged(self):
        trace = RequestTrace("t", now=0.0)
        trace.finish("ok", now=1.0)
        trace.add("late", 0.5, 2.0)  # ends after the root closed
        assert any("ends after parent" in p for p in well_formed(trace))


@settings(max_examples=50, deadline=None)
@given(
    retries=st.integers(min_value=0, max_value=3),
    n_traces=st.integers(min_value=1, max_value=5),
)
def test_property_generated_lifecycles_are_well_formed(retries, n_traces):
    """Any bounded-retry lifecycle yields well-formed span intervals."""
    traces = [make_trace(f"t{i}", retries=retries) for i in range(n_traces)]
    for trace in traces:
        assert not well_formed(trace)
        # Every span interval nests inside the root's.
        root = trace.spans[0]
        for span in trace.spans:
            assert span.start >= root.start - 1e-9
            assert span.end is not None and span.end <= root.end + 1e-9


class TestExports:
    def test_jsonl_round_trip_is_byte_identical(self):
        traces = [make_trace("a", retries=1), make_trace("b")]
        doc = to_jsonl(traces)
        assert to_jsonl(from_jsonl(doc)) == doc

    def test_canonical_is_byte_stable_across_identical_runs(self):
        doc1 = canonical_jsonl([make_trace("t1", retries=1)])
        doc2 = canonical_jsonl([make_trace("t1", retries=1)])
        assert doc1 == doc2

    def test_canonical_strips_clock_fields(self):
        doc = canonical_jsonl([make_trace()])
        for line in doc.splitlines():
            record = json.loads(line)
            assert "t0_us" not in record and "t1_us" not in record
            for key in record.get("attrs", {}):
                assert key in CANONICAL_ATTRS

    def test_canonical_differs_when_structure_differs(self):
        assert canonical_jsonl([make_trace(retries=0)]) != canonical_jsonl(
            [make_trace(retries=1)]
        )

    def test_chrome_trace_shape(self):
        chrome = to_chrome_trace([make_trace("a"), make_trace("b")], label="x")
        events = chrome["traceEvents"]
        assert events[0]["args"]["name"] == "x"
        names = [e["name"] for e in events if e["ph"] == "M"]
        assert "thread_name" in names
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 2 * len(make_trace().spans)
        assert all(e["dur"] >= 0 for e in spans)
        json.dumps(chrome)  # must be serializable


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(make_trace(f"t{i}"))
        traces = recorder.traces()
        assert len(traces) == 4
        assert [t.trace_id for t in traces] == ["t6", "t7", "t8", "t9"]
        assert recorder.stats()["recorded"] == 10

    def test_trips_counted_by_reason(self):
        recorder = FlightRecorder()
        recorder.trip("worker-crash")
        recorder.trip("worker-crash")
        recorder.trip("deadline-miss")
        assert recorder.stats()["trips"] == {
            "deadline-miss": 1,
            "worker-crash": 2,
        }

    def test_dump_to_writes_jsonl_and_chrome(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(make_trace("t1", retries=1))
        paths = recorder.dump_to(str(tmp_path / "dump"), reason="test-reason")
        jsonl_path, chrome_path = paths
        assert jsonl_path.endswith(".jsonl")
        assert chrome_path.endswith(".trace.json")
        # The JSONL dump round-trips through from_jsonl.
        text = (tmp_path / "dump.jsonl").read_text()
        rebuilt = from_jsonl(text)
        assert [t.trace_id for t in rebuilt] == ["t1"]
        assert to_jsonl(rebuilt) == text
        chrome = json.loads((tmp_path / "dump.trace.json").read_text())
        assert chrome["otherData"]["reason"] == "test-reason"
        assert chrome["otherData"]["stats"]["trips"]["test-reason"] == 1

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.record(make_trace())
        recorder.trip("x")
        recorder.clear()
        stats = recorder.stats()
        assert stats["recorded"] == 0 and not stats["trips"]
        assert not recorder.traces()


def test_module_flight_recorder_exists():
    assert isinstance(rtrace.FLIGHT, FlightRecorder)
    assert rtrace.FLIGHT.stats()["capacity"] == rtrace.FLIGHT_CAPACITY
