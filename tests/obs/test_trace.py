"""Tests for canonical spike tracing across all four backends."""

import json
import random

from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.compile_plan import evaluate_batch
from repro.network.events import simulate
from repro.network.simulator import evaluate_all_interpreted
from repro.obs.trace import (
    RecordingSink,
    TraceEvent,
    first_divergence,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
)
from repro.testing.oracles import default_oracles


def _tiny_net():
    b = NetworkBuilder("tiny")
    x, y = b.inputs("x", "y")
    m = b.min(x, y)
    b.output("z", b.inc(m, 2))
    return b.build()


class TestCauses:
    def _events(self, net, inputs):
        sink = RecordingSink()
        evaluate_all_interpreted(net, inputs, sink=sink)
        return {e.node_id: e for e in sink.canonical()}

    def test_min_names_earliest_source(self):
        net = _tiny_net()
        events = self._events(net, {"x": 5, "y": 2})
        assert events[2].cause == "min<-1"  # y (node 1) wins
        assert events[2].time == 2

    def test_min_tie_names_lowest_id(self):
        net = _tiny_net()
        events = self._events(net, {"x": 3, "y": 3})
        assert events[2].cause == "min<-0"

    def test_inc_cause_carries_amount_and_source(self):
        net = _tiny_net()
        events = self._events(net, {"x": 1, "y": 4})
        assert events[3].cause == "inc+2<-2"
        assert events[3].time == 3

    def test_max_names_latest_source(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.max(x, y))
        events = self._events(b.build(), {"x": 5, "y": 2})
        assert events[2].cause == "max<-0"

    def test_max_with_absent_source_never_fires(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.max(x, y))
        events = self._events(b.build(), {"x": 5, "y": INF})
        assert 2 not in events

    def test_lt_fires_via_first_operand(self):
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("z", b.lt(x, y))
        events = self._events(b.build(), {"x": 1, "y": 4})
        assert events[2].cause == "lt<-0"

    def test_all_inf_volley_is_an_empty_trace(self):
        net = _tiny_net()
        assert self._events(net, {"x": INF, "y": INF}) == {}

    def test_zero_source_max_is_const0(self):
        b = NetworkBuilder()
        b.input("x")
        b.output("zero", b.max())
        events = self._events(b.build(), {"x": INF})
        assert events[1].cause == "const0"
        assert events[1].time == 0


class TestCrossBackendIdentity:
    """The tentpole guarantee: byte-identical JSONL on agreement."""

    def _documents(self, net, volley, params=None):
        docs = {}
        for oracle in default_oracles():
            trace = oracle.trace(net, volley, params=params)
            if trace is not None:
                docs[oracle.name] = to_jsonl(trace, net)
        return docs

    def test_fig7_network_all_five_backends(self):
        net = synthesize(FIG7_TABLE)
        docs = self._documents(net, (0, 1, 2))
        assert set(docs) == {
            "interpreted",
            "compiled-batch",
            "event-driven",
            "grl-circuit",
            "native",
        }
        assert len(set(docs.values())) == 1
        assert docs["interpreted"]  # non-empty

    def test_random_networks_three_fast_backends(self):
        rng = random.Random(7)
        for trial in range(5):
            b = NetworkBuilder(f"rand{trial}")
            pool = [b.input(f"x{i}") for i in range(3)]
            for _ in range(12):
                op = rng.choice(["inc", "min", "max", "lt"])
                if op == "inc":
                    pool.append(b.inc(rng.choice(pool), rng.randint(1, 3)))
                elif op == "lt":
                    pool.append(b.lt(rng.choice(pool), rng.choice(pool)))
                else:
                    pool.append(getattr(b, op)(rng.choice(pool), rng.choice(pool)))
            b.output("y", pool[-1])
            net = b.build()
            volley = tuple(
                INF if rng.random() < 0.2 else rng.randint(0, 6)
                for _ in range(3)
            )
            docs = self._documents(net, volley)
            assert len(set(docs.values())) == 1, (trial, volley)

    def test_batched_trace_row_selects_volley(self):
        net = _tiny_net()
        sink = RecordingSink()
        plan_input = [(9, 4), (1, 7)]
        from repro.network.compile_plan import compile_plan, encode_volleys

        plan = compile_plan(net)
        matrix = encode_volleys(plan_input, arity=2)
        plan.run(matrix, sink=sink, trace_row=1)
        events = {e.node_id: e for e in sink.canonical()}
        assert events[0].time == 1  # row 1, not row 0
        assert events[2].cause == "min<-0"


class TestExports:
    def test_jsonl_roundtrip(self):
        net = synthesize(FIG7_TABLE)
        sink = RecordingSink()
        evaluate_all_interpreted(
            net, dict(zip(net.input_names, (0, 1, 2))), sink=sink
        )
        text = to_jsonl(sink.canonical(), net)
        assert from_jsonl(text) == sink.canonical()

    def test_jsonl_lines_are_valid_json(self):
        net = _tiny_net()
        sink = RecordingSink()
        evaluate_all_interpreted(net, {"x": 1, "y": 2}, sink=sink)
        for line in to_jsonl(sink.canonical(), net).splitlines():
            record = json.loads(line)
            assert set(record) == {"t", "node", "kind", "name", "cause"}

    def test_chrome_trace_shape(self):
        net = _tiny_net()
        sink = RecordingSink()
        evaluate_all_interpreted(net, {"x": 1, "y": 2}, sink=sink)
        doc = to_chrome_trace(sink.canonical(), net)
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(sink.canonical())
        # one process_name plus one thread_name per firing node
        assert len(metadata) == 1 + len({e.node_id for e in sink.canonical()})
        json.dumps(doc)  # serializable

    def test_sink_param_defaults_to_off(self):
        # The plain entry points must not require (or build) a sink.
        net = _tiny_net()
        evaluate_all_interpreted(net, {"x": 1, "y": 2})
        evaluate_batch(net, [(1, 2)])
        simulate(net, {"x": 1, "y": 2})


class TestDivergence:
    def test_agreeing_traces_have_no_divergence(self):
        left = [TraceEvent(0, 0, "input"), TraceEvent(1, 2, "min<-0")]
        assert first_divergence(left, list(left)) is None

    def test_time_difference_found_at_earlier_time(self):
        left = [TraceEvent(0, 0, "input"), TraceEvent(5, 2, "min<-0")]
        right = [TraceEvent(0, 0, "input"), TraceEvent(3, 2, "min<-1")]
        split = first_divergence(left, right)
        assert split.node_id == 2
        assert split.left.time == 5
        assert split.right.time == 3

    def test_missing_spike_found(self):
        left = [TraceEvent(0, 0, "input"), TraceEvent(2, 1, "inc+2<-0")]
        right = [TraceEvent(0, 0, "input")]
        split = first_divergence(left, right)
        assert split.node_id == 1
        assert split.right is None
        assert "no spike" in split.describe()

    def test_earliest_divergence_wins(self):
        left = [TraceEvent(1, 3, "min<-0"), TraceEvent(4, 5, "max<-3")]
        right = [TraceEvent(2, 3, "min<-1"), TraceEvent(9, 5, "max<-3")]
        split = first_divergence(left, right)
        assert split.node_id == 3  # earliest disagreement, not node 5

    def test_conformance_attaches_divergence_on_injected_fault(self):
        from repro.testing.conformance import run_case
        from repro.testing.faults import FaultedOracle, drop_lines
        from repro.testing.generators import ConformanceCase
        from repro.testing.oracles import InterpretedOracle

        # min(x, y) with a volley where line 0 wins: dropping it is visible.
        case = ConformanceCase(
            seed=0,
            family="handmade",
            network=_tiny_net(),
            volleys=((1, 4),),
        )
        faulted = FaultedOracle(
            InterpretedOracle(),
            label="drop0",
            volley_transform=lambda v: drop_lines(v, [0]),
        )
        _, mismatches = run_case(
            case, oracles=[InterpretedOracle(), faulted], shrink=False
        )
        assert mismatches, "fault must be caught"
        flagged = [m for m in mismatches if m.divergence is not None]
        assert flagged, "divergence must be attached"
        text = str(flagged[0])
        assert "first divergent node" in text
