"""Tests for the log-bucketed sliding-window latency histograms."""

import pytest

from repro.obs.hist import (
    BUCKET_BOUNDS_S,
    DEFAULT_EPOCH_S,
    HistogramVault,
    LatencyHistogram,
    merge_bucket_counts,
)


class TestBuckets:
    def test_bounds_are_geometric_and_monotone(self):
        assert BUCKET_BOUNDS_S[0] == pytest.approx(1e-4)
        for low, high in zip(BUCKET_BOUNDS_S, BUCKET_BOUNDS_S[1:]):
            assert high == pytest.approx(low * 2.0)
        assert BUCKET_BOUNDS_S[-1] > 1.0  # covers second-scale latencies

    def test_observation_lands_in_the_right_bucket(self):
        h = LatencyHistogram(now=0.0)
        h.observe(1.5e-4, now=0.0)  # between bound 0 (1e-4) and 1 (2e-4)
        counts = h.window_counts(now=0.0)
        assert counts[1] == 1 and sum(counts) == 1

    def test_overflow_bucket_catches_slow_requests(self):
        h = LatencyHistogram(now=0.0)
        h.observe(60.0, now=0.0)
        counts = h.window_counts(now=0.0)
        assert counts[-1] == 1
        # The overflow quantile floors at the largest finite bound.
        assert h.quantile(0.99, now=0.0) == BUCKET_BOUNDS_S[-1]


class TestQuantiles:
    def test_empty_histogram_reports_zero(self):
        h = LatencyHistogram(now=0.0)
        assert h.quantile(0.5, now=0.0) == 0.0
        snap = h.snapshot(now=0.0)
        assert snap["count"] == 0 and snap["p99_ms"] == 0.0

    def test_quantile_interpolates_within_the_bucket(self):
        h = LatencyHistogram(now=0.0)
        for _ in range(100):
            h.observe(3e-4, now=0.0)  # bucket (2e-4, 4e-4]
        p50 = h.quantile(0.50, now=0.0)
        assert 2e-4 < p50 <= 4e-4

    def test_quantiles_are_ordered(self):
        h = LatencyHistogram(now=0.0)
        for i in range(200):
            h.observe(1e-4 * (1 + i % 50), now=0.0)
        p50, p90, p99 = (
            h.quantile(q, now=0.0) for q in (0.50, 0.90, 0.99)
        )
        assert p50 <= p90 <= p99

    def test_snapshot_shape(self):
        h = LatencyHistogram(now=0.0)
        h.observe(0.002, now=0.0)
        snap = h.snapshot(now=0.0)
        assert set(snap) == {
            "count", "window", "sum_s", "p50_ms", "p90_ms", "p99_ms", "max_ms"
        }
        assert snap["count"] == snap["window"] == 1
        assert snap["max_ms"] == pytest.approx(2.0)


class TestEpochRotation:
    def test_window_forgets_but_lifetime_does_not(self):
        h = LatencyHistogram(epoch_s=1.0, n_epochs=3, now=0.0)
        h.observe(0.001, now=0.0)
        # After more than n_epochs * epoch_s, the observation has rotated out.
        assert sum(h.window_counts(now=10.0)) == 0
        assert h.count == 1  # lifetime count survives the window

    def test_window_spans_recent_epochs(self):
        h = LatencyHistogram(epoch_s=1.0, n_epochs=3, now=0.0)
        h.observe(0.001, now=0.0)
        h.observe(0.001, now=1.5)  # next epoch
        # At t=2.2 both epochs are still inside the 3-epoch window.
        assert sum(h.window_counts(now=2.2)) == 2

    def test_idle_gap_snaps_forward_instead_of_spinning(self):
        h = LatencyHistogram(epoch_s=1.0, n_epochs=3, now=0.0)
        h.observe(0.001, now=0.0)
        h.observe(0.002, now=1e6)  # a huge idle gap must not loop 1e6 times
        assert sum(h.window_counts(now=1e6)) == 1

    def test_burst_then_quiet_keeps_the_tail(self):
        """The reservoir bias this design fixes: bursts must not evict."""
        h = LatencyHistogram(epoch_s=10.0, n_epochs=6, now=0.0)
        h.observe(1.0, now=0.0)  # one slow request
        for _ in range(10_000):  # then a burst of fast ones, same window
            h.observe(1e-4, now=1.0)
        assert h.quantile(1.0, now=1.0) >= 0.5  # the tail is still there


class TestVault:
    def test_series_keyed_by_model_stage_outcome(self):
        vault = HistogramVault()
        vault.observe(0.001, model="a", stage="total", outcome="ok", now=0.0)
        vault.observe(0.002, model="a", stage="total", outcome="deadline", now=0.0)
        vault.observe(0.003, model="b", stage="queue", outcome="ok", now=0.0)
        assert len(vault.series()) == 3
        assert vault.get(model="a", stage="total", outcome="ok").count == 1
        assert vault.get(model="z") is None

    def test_merged_is_exact_bucket_summation(self):
        vault = HistogramVault()
        for _ in range(10):
            vault.observe(1.5e-4, model="a", now=0.0)
        for _ in range(10):
            vault.observe(1.5e-4, model="b", now=0.0)
        merged = vault.merged(stage="total", outcome="ok", now=0.0)
        assert merged["count"] == 20 and merged["window"] == 20
        # All mass in one bucket: the merged quantile stays in its range.
        assert 0.1 < merged["p99_ms"] <= 0.2

    def test_merged_filters_by_outcome(self):
        vault = HistogramVault()
        vault.observe(0.001, model="a", outcome="ok", now=0.0)
        vault.observe(0.5, model="a", outcome="deadline", now=0.0)
        ok_only = vault.merged(outcome="ok", now=0.0)
        assert ok_only["count"] == 1
        both = vault.merged(outcome=None, now=0.0)
        assert both["count"] == 2

    def test_nested_snapshot_shape(self):
        vault = HistogramVault()
        vault.observe(0.001, model="demo", stage="total", outcome="ok", now=0.0)
        snap = vault.snapshot(now=0.0)
        assert snap["demo"]["total"]["ok"]["count"] == 1

    def test_reset(self):
        vault = HistogramVault()
        vault.observe(0.001, now=0.0)
        vault.reset()
        assert not vault.series()


class TestPrometheusLines:
    def test_exposition_format(self):
        vault = HistogramVault()
        for seconds in (1e-4, 2e-3, 0.5):
            vault.observe(seconds, model="demo", now=0.0)
        lines = vault.prometheus_lines(now=0.0)
        assert lines[0].startswith("# HELP repro_serve_latency_seconds")
        assert lines[1] == "# TYPE repro_serve_latency_seconds histogram"
        buckets = [l for l in lines if "_bucket{" in l]
        # One line per finite bound plus +Inf.
        assert len(buckets) == len(BUCKET_BOUNDS_S) + 1
        assert 'le="+Inf"' in buckets[-1]
        # Cumulative counts are monotone and end at the total.
        values = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert values == sorted(values)
        assert values[-1] == 3
        assert any(l.startswith("repro_serve_latency_seconds_count{") for l in lines)
        assert any(l.startswith("repro_serve_latency_seconds_sum{") for l in lines)
        assert 'model="demo"' in buckets[0]

    def test_label_escaping(self):
        vault = HistogramVault()
        vault.observe(0.001, model='we"ird\\name', now=0.0)
        lines = vault.prometheus_lines(now=0.0)
        assert any('model="we\\"ird\\\\name"' in l for l in lines)


def test_merge_bucket_counts():
    a = [1] * (len(BUCKET_BOUNDS_S) + 1)
    b = [2] * (len(BUCKET_BOUNDS_S) + 1)
    assert merge_bucket_counts([a, b]) == [3] * (len(BUCKET_BOUNDS_S) + 1)


def test_default_window_covers_about_a_minute():
    assert DEFAULT_EPOCH_S * 6 == pytest.approx(60.0)
