"""Tests for the runtime metrics registry and profiling hooks."""

import time

from repro.obs.metrics import METRICS, MetricsRegistry, reset_metrics
from repro.obs.profile import phase, profiled, profiling_enabled


class TestRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b")
        assert reg.counter("a") == 5
        assert reg.counter("b") == 1
        assert reg.counter("missing") == 0

    def test_observe_max(self):
        reg = MetricsRegistry()
        reg.observe_max("depth", 3)
        reg.observe_max("depth", 9)
        reg.observe_max("depth", 5)
        assert reg.maximum("depth") == 9
        assert reg.maximum("missing") == 0

    def test_timers(self):
        reg = MetricsRegistry()
        reg.add_time("t", 0.25)
        reg.add_time("t", 0.75)
        calls, total = reg.timer("t")
        assert calls == 2
        assert total == 1.0
        assert reg.timer("missing") == (0, 0.0)

    def test_timeit_records_wall_clock(self):
        reg = MetricsRegistry()
        with reg.timeit("sleep"):
            time.sleep(0.01)
        calls, total = reg.timer("sleep")
        assert calls == 1
        assert total >= 0.005

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.add_time("t", 0.5)
        reg.observe_max("m", 7)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["timers"] == {"t": {"calls": 1, "total_s": 0.5}}
        assert snap["maxima"] == {"m": 7}

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap["counters"]["c"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.add_time("t", 1.0)
        reg.observe_max("m", 4)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}, "maxima": {}}

    def test_render_mentions_everything(self):
        reg = MetricsRegistry()
        reg.inc("my.counter", 3)
        reg.add_time("my.timer", 0.5)
        reg.observe_max("my.peak", 8)
        text = reg.render()
        assert "my.counter" in text
        assert "my.timer" in text
        assert "my.peak" in text


class TestGlobalRegistry:
    def test_backends_populate_global_metrics(self):
        from repro.network.builder import NetworkBuilder
        from repro.network.compile_plan import evaluate_batch
        from repro.network.events import simulate

        reset_metrics()
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.min(x, y))
        net = b.build()
        evaluate_batch(net, [(1, 2), (3, 0)])
        simulate(net, {"x": 1, "y": 2})
        assert METRICS.counter("evaluate_batch.calls") == 1
        assert METRICS.counter("evaluate_batch.volleys") == 2
        assert METRICS.counter("plan.runs") == 1
        assert METRICS.counter("events.runs") == 1
        assert METRICS.counter("events.spikes") == 3
        assert METRICS.maximum("events.queue_peak") >= 1
        reset_metrics()


class TestProfiling:
    def test_disabled_by_default(self):
        assert not profiling_enabled()

    def test_phase_is_noop_when_disabled(self):
        reset_metrics()
        with phase("nothing"):
            pass
        assert METRICS.timer("phase.nothing") == (0, 0.0)

    def test_profiled_records_phases(self):
        reset_metrics()
        with profiled():
            assert profiling_enabled()
            with phase("work"):
                time.sleep(0.001)
        assert not profiling_enabled()
        calls, total = METRICS.timer("phase.work")
        assert calls == 1
        assert total > 0.0
        reset_metrics()

    def test_profiled_nests(self):
        with profiled():
            with profiled():
                assert profiling_enabled()
            assert profiling_enabled()
        assert not profiling_enabled()

    def test_profiled_evaluate_batch_attributes_phases(self):
        from repro.network.builder import NetworkBuilder
        from repro.network.compile_plan import evaluate_batch

        reset_metrics()
        b = NetworkBuilder()
        x, y = b.inputs("x", "y")
        b.output("m", b.inc(b.min(x, y), 2))
        net = b.build()
        with profiled():
            evaluate_batch(net, [(1, 2)])
        for name in (
            "phase.evaluate_batch.plan",
            "phase.evaluate_batch.encode",
            "phase.evaluate_batch.run",
        ):
            calls, _ = METRICS.timer(name)
            assert calls == 1, name
        calls, _ = METRICS.timer("plan.group.min")
        assert calls >= 1
        reset_metrics()
