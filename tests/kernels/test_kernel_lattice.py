"""Lattice identities and ∞-sentinel saturation inside compositions.

Regression pins for the two classic cross-backend hazards, now embedded
*inside* composed kernel subprograms and pushed through the full pass
pipeline (canonicalize → fold-consts → fuse-inc → cse → dce):

* zero-source ``min`` is the constant ``∞`` and zero-source ``max`` the
  constant ``0`` (the lattice identities, §III.D) — composing them into
  kernel inputs must fold correctly and agree across backends;
* ``inc`` saturates at the int64 sentinel: a composed delay chain fed
  the last finite time must yield ``∞`` on every backend, before and
  after ``fuse-inc`` collapses the chain.
"""

import random

from repro.core.value import INF
from repro.ir.passes import optimize_program
from repro.ir.program import lower
from repro.kernels import (
    Kernel,
    barrier,
    compose,
    interval_min,
    interval_shift,
)
from repro.network.builder import NetworkBuilder
from repro.network.compile_plan import MAX_FINITE
from repro.testing.conformance import diff_backends
from repro.testing.generators import adversarial_volleys


def constants_kernel():
    """A kernel whose outputs are the zero-source lattice identities."""
    builder = NetworkBuilder("lattice-consts")
    builder.input("x")  # keeps the network non-degenerate
    builder.output("top", builder.min())   # zero-source min == ∞
    builder.output("bottom", builder.max())  # zero-source max == 0
    return Kernel.from_builder(builder, name="consts")


class TestLatticeIdentitiesInsideCompositions:
    def test_zero_source_constants_evaluate_as_identities(self):
        kernel = constants_kernel()
        for x in (0, 5, INF):
            out = kernel.evaluate((x,))
            assert out == {"top": INF, "bottom": 0}

    def test_composed_constants_feed_downstream_kernels(self):
        """min(a, ⊥)=⊥ and min(a, ⊤)=a, inside a composed subprogram."""
        consts = constants_kernel()
        stage = interval_min().renamed(
            inputs={"b_lo": "bottom", "b_hi": "top"}, name="meet"
        )
        composed = compose(consts, stage)
        assert composed.inputs == ["x", "a_lo", "a_hi"]
        for a_lo, a_hi in ((0, 4), (2, INF), (INF, INF)):
            out = composed.evaluate((0, a_lo, a_hi))
            assert out["lo_out"] == 0       # min(a_lo, 0) == 0
            assert out["hi_out"] == a_hi    # min(a_hi, ∞) == a_hi

    def test_pipeline_folds_composed_constants(self):
        consts = constants_kernel()
        stage = interval_min().renamed(
            inputs={"b_lo": "bottom", "b_hi": "top"}, name="meet"
        )
        composed = compose(consts, stage)
        optimized, report = optimize_program(composed.program)
        # fold-consts + dce collapse the meet with ⊥ to the constant and
        # the meet with ⊤ to a plain wire; no min node survives.
        assert all(node.kind != "min" for node in optimized.nodes)
        # semantics preserved: optimized and raw agree across backends
        volleys = adversarial_volleys(3, rng=random.Random(11), n_random=4)
        _, raw = diff_backends(composed.network(), volleys)
        _, opt = diff_backends(composed.network(), volleys, optimize=True)
        assert raw == [] and opt == []

    def test_constants_agree_across_backends_after_optimization(self):
        composed = compose(
            constants_kernel(),
            barrier(n=2, slack=1).renamed(
                inputs={"x0": "bottom", "x1": "y"}, name="sync"
            ),
        )
        volleys = adversarial_volleys(2, rng=random.Random(3), n_random=4)
        _, disagreements = diff_backends(
            composed.network(), volleys, optimize=True
        )
        assert disagreements == []
        # release = max(0, y) + 1 exactly
        for y in (0, 3, INF):
            out = composed.evaluate((0, y))
            assert out["release"] == (INF if y is INF else max(0, y) + 1)


class TestSentinelSaturationInsideCompositions:
    def chain(self):
        """Three composed +2 shifts — six total delay, fused by fuse-inc."""
        stages = [interval_shift(2)]
        stages.append(
            interval_shift(2).renamed(
                inputs={"lo": "lo_out", "hi": "hi_out"},
                outputs={"lo_out": "lo2", "hi_out": "hi2"},
                name="shift-b",
            )
        )
        stages.append(
            interval_shift(2).renamed(
                inputs={"lo": "lo2", "hi": "hi2"},
                outputs={"lo_out": "lo3", "hi_out": "hi3"},
                name="shift-c",
            )
        )
        return compose(*stages, name="shift-chain")

    def test_near_sentinel_inputs_saturate_to_infinity(self):
        composed = self.chain()
        out = composed.evaluate((MAX_FINITE, MAX_FINITE - 7))
        assert out["lo3"] is INF          # MAX_FINITE + 6 saturates
        assert out["hi3"] == MAX_FINITE - 1  # still finite, exact
        out = composed.evaluate((MAX_FINITE - 6, MAX_FINITE - 5))
        assert out["lo3"] == MAX_FINITE   # lands exactly on the last finite
        assert out["hi3"] is INF          # one past it saturates

    def test_fused_chain_still_saturates(self):
        composed = self.chain()
        optimized, _ = optimize_program(composed.program)
        # fuse-inc collapses each 3-deep delay chain onto the input with
        # the summed amount (intermediates stay live — compose exports
        # every stage's outputs — but no inc feeds another inc anymore).
        assert lower(composed.network()).depth == 3
        assert optimized.depth == 1
        inc_amounts = sorted(
            node.amount for node in optimized.nodes if node.kind == "inc"
        )
        assert inc_amounts == [2, 2, 4, 4, 6, 6]
        volleys = [
            (MAX_FINITE, MAX_FINITE),
            (MAX_FINITE - 6, MAX_FINITE - 5),
            (MAX_FINITE - 7, 0),
            (INF, MAX_FINITE),
        ]
        _, disagreements = diff_backends(
            composed.network(), volleys, optimize=True
        )
        assert disagreements == []

    def test_adversarial_sweep_on_the_chain(self):
        composed = self.chain()
        volleys = adversarial_volleys(2, rng=random.Random(17), n_random=6)
        for optimize in (False, True):
            _, disagreements = diff_backends(
                composed.network(), volleys, optimize=optimize
            )
            assert disagreements == []
