"""Property suite for the kernel composition operator.

The two ISSUE-level properties, plus their supporting invariants:

* **Monolithic equivalence** — a composed kernel's fire times are
  byte-identical to the equivalent monolithic network (same circuit
  authored in one ``NetworkBuilder``), and byte-identical across all
  five execution backends on random compositions;
* **Associativity** — ``compose`` is associative up to program
  fingerprint, both on the raw composition and after the pass pipeline
  runs to fingerprint fixpoint.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.value import INF
from repro.ir.passes import optimize_program
from repro.kernels import (
    KERNELS,
    build_kernel,
    compose,
    interval_intersect,
    kernel_attribution,
    latch,
)
from repro.network.builder import NetworkBuilder
from repro.testing.conformance import diff_backends
from repro.testing.generators import (
    adversarial_volleys,
    random_kernel_network,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_stages(seed, n_stages):
    """The same renaming-chain construction the generator family uses."""
    rng = random.Random(seed)
    stages = []
    available = []
    for index in range(n_stages):
        name = rng.choice(list(KERNELS))
        variant = dict(rng.choice(KERNELS[name].variants))
        kernel = build_kernel(name, **variant)
        out_map = {port: f"s{index}_{port}" for port in kernel.outputs}
        pool = list(available)
        rng.shuffle(pool)
        in_map = {}
        for port in kernel.inputs:
            if pool and rng.random() < 0.7:
                in_map[port] = pool.pop()
            else:
                in_map[port] = f"s{index}_in_{port}"
        stages.append(
            kernel.renamed(inputs=in_map, outputs=out_map, name=f"s{index}")
        )
        available.extend(out_map.values())
    return stages


def staged_outputs(stages, volley):
    """Evaluate the chain stage by stage, wiring outputs to inputs by name."""
    composed_inputs = []
    seen = set()
    for stage in stages:
        produced_so_far = {
            port for earlier in stages[: stages.index(stage)]
            for port in earlier.outputs
        }
        for port in stage.inputs:
            if port not in produced_so_far and port not in seen:
                seen.add(port)
                composed_inputs.append(port)
    bound = dict(zip(composed_inputs, volley))
    wires = dict(bound)
    for stage in stages:
        stage_out = stage.evaluate(tuple(wires[p] for p in stage.inputs))
        wires.update(stage_out)
    return wires


class TestMonolithicEquivalence:
    @SETTINGS
    @given(seed=seeds)
    def test_composed_equals_staged_evaluation(self, seed):
        """compose() wiring == evaluating the stages one at a time."""
        stages = random_stages(seed, n_stages=3)
        composed = compose(*stages)
        volleys = adversarial_volleys(
            composed.arity, rng=random.Random(seed ^ 0x5EED), n_random=2
        )
        for volley in volleys:
            by_stages = staged_outputs(stages, volley)
            whole = composed.evaluate(volley)
            assert whole == {port: by_stages[port] for port in whole}

    @SETTINGS
    @given(seed=seeds)
    def test_composed_network_agrees_across_five_backends(self, seed):
        network = random_kernel_network(seed=seed, smoke=True)
        volleys = adversarial_volleys(
            len(network.input_names),
            rng=random.Random(seed ^ 0xBEEF),
            n_random=3,
        )
        run, disagreements = diff_backends(network, volleys)
        assert disagreements == []
        assert "native" in run.results

    def test_composed_matches_hand_built_monolith(self):
        """One concrete circuit, authored both ways, byte-for-byte."""
        stage_a = interval_intersect()
        stage_b = latch(hold=1).renamed(
            inputs={"data": "proper", "close": "deadline"}
        )
        composed = compose(stage_a, stage_b, name="intersect-latch")

        mono = NetworkBuilder("monolith")
        a_lo, a_hi = mono.input("a_lo"), mono.input("a_hi")
        b_lo, b_hi = mono.input("b_lo"), mono.input("b_hi")
        lo = mono.max(a_lo, b_lo)
        hi = mono.min(a_hi, b_hi)
        proper = mono.lt(lo, hi)
        deadline = mono.input("deadline")
        mono.output("q", mono.inc(mono.lt(proper, deadline), 1))
        mono.output("missed", mono.lt(deadline, proper))
        monolith = mono.build()

        assert composed.inputs == list(monolith.input_names)
        volleys = adversarial_volleys(
            composed.arity, rng=random.Random(7), n_random=6
        )
        run, disagreements = diff_backends(monolith, volleys)
        assert disagreements == []
        from repro.network import evaluate_vector

        for volley in volleys:
            whole = composed.evaluate(volley)
            direct = evaluate_vector(monolith, volley)
            assert whole["q"] == direct["q"]
            assert whole["missed"] == direct["missed"]


class TestAssociativity:
    @SETTINGS
    @given(seed=seeds)
    def test_groupings_share_fingerprint_raw_and_optimized(self, seed):
        a, b, c = random_stages(seed, n_stages=3)
        left = compose(compose(a, b), c)
        right = compose(a, compose(b, c))
        flat = compose(a, b, c)
        assert left.program.fingerprint() == flat.program.fingerprint()
        assert right.program.fingerprint() == flat.program.fingerprint()
        left_opt, _ = optimize_program(left.program)
        right_opt, _ = optimize_program(right.program)
        assert left_opt.fingerprint() == right_opt.fingerprint()

    @SETTINGS
    @given(seed=seeds)
    def test_grouping_cannot_change_fire_times(self, seed):
        a, b, c = random_stages(seed, n_stages=3)
        left = compose(compose(a, b), c)
        right = compose(a, compose(b, c))
        assert left.inputs == right.inputs
        assert left.outputs == right.outputs
        volleys = adversarial_volleys(
            left.arity, rng=random.Random(seed ^ 0xACC), n_random=2
        )
        for volley in volleys:
            assert left.evaluate(volley) == right.evaluate(volley)


class TestProvenance:
    @SETTINGS
    @given(seed=seeds)
    def test_every_compute_node_attributes_to_a_stage(self, seed):
        stages = random_stages(seed, n_stages=2)
        composed = compose(*stages)
        attribution = kernel_attribution(composed.program)
        for node in composed.program.nodes:
            if node.kind in ("input", "param"):
                assert attribution[node.id] == ()
            else:
                assert attribution[node.id], node

    @SETTINGS
    @given(seed=seeds)
    def test_attribution_survives_the_pass_pipeline(self, seed):
        stages = random_stages(seed, n_stages=2)
        composed = compose(*stages)
        optimized, _ = optimize_program(composed.program)
        attribution = kernel_attribution(optimized, composed.program)
        stage_names = {stage.name for stage in stages}
        terminals = set(optimized.input_ids.values()) | set(
            optimized.param_ids.values()
        ) | set(optimized.const_ids)
        for node in optimized.nodes:
            if node.id in terminals:
                continue
            assert attribution[node.id], node
            assert set(attribution[node.id]) <= stage_names


def test_compose_rejects_duplicate_output_names():
    import pytest

    from repro.kernels import KernelError

    with pytest.raises(KernelError, match="output port"):
        compose(latch(), latch())


def test_compose_single_kernel_is_identity():
    kernel = latch()
    assert compose(kernel) is kernel


def test_compose_unifies_like_named_inputs():
    """Two stages reading an unmatched port named 'close' share one line."""
    first = latch().renamed(outputs={"q": "q1", "missed": "m1"}, name="l1")
    second = latch().renamed(
        inputs={"data": "q1"},
        outputs={"q": "q2", "missed": "m2"},
        name="l2",
    )
    composed = compose(first, second)
    # data, close from stage 1; stage 2's q1 is wired, its close unifies.
    assert composed.inputs == ["data", "close"]
    out = composed.evaluate((0, 5))
    assert out["q1"] == 0
    assert out["q2"] == 0  # q1=0 beats the shared close=5 again
    out = composed.evaluate((0, INF))
    assert out["q1"] == 0 and out["q2"] == 0
    out = composed.evaluate((3, 1))
    assert out["q1"] is INF and out["m1"] == 1 and out["q2"] is INF
