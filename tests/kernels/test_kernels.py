"""Per-kernel contracts for the s-t kernel stdlib.

Every registry kernel must: build (including all registry variants),
agree byte-for-byte across all five execution backends on the
adversarial volley batch, match its closed-form semantics exhaustively
over a bounded window, and ship an inferred function table per output
port.
"""

import random

import pytest

from repro.core.value import INF
from repro.kernels import (
    KERNELS,
    Kernel,
    KernelError,
    accumulator,
    barrier,
    build_kernel,
    demo_network,
    interval_intersect,
    interval_max,
    interval_min,
    interval_shift,
    interval_union,
    kernel_names,
    latch,
    router,
)
from repro.testing.conformance import diff_backends
from repro.testing.generators import adversarial_volleys


def window_vectors(arity, window):
    """Every vector over {0..window-1, ∞} of the given arity."""
    values = list(range(window)) + [INF]
    vectors = [()]
    for _ in range(arity):
        vectors = [vec + (v,) for vec in vectors for v in values]
    return vectors


def tmin(*xs):
    finite = [x for x in xs if x is not INF]
    return min(finite) if finite else INF


def tmax(*xs):
    if any(x is INF for x in xs):
        return INF
    return max(xs) if xs else 0


def tlt(a, b):
    if a is INF:
        return INF
    return a if (b is INF or a < b) else INF


class TestFiveBackendByteIdentity:
    """The acceptance criterion: every shipped kernel, every variant."""

    @pytest.mark.parametrize("name", kernel_names())
    def test_default_build_agrees_everywhere(self, name):
        kernel = build_kernel(name)
        volleys = adversarial_volleys(
            kernel.arity, rng=random.Random(1234), n_random=6
        )
        run, disagreements = diff_backends(kernel.network(), volleys)
        assert disagreements == []
        # The native fifth backend participated, not just skipped.
        assert "native" in run.results
        assert any(row is not None for row in run.results["native"])

    @pytest.mark.parametrize("name", kernel_names())
    def test_every_registry_variant_agrees(self, name):
        for kwargs in KERNELS[name].variants:
            kernel = build_kernel(name, **kwargs)
            volleys = adversarial_volleys(
                kernel.arity, rng=random.Random(99), n_random=3
            )
            _, disagreements = diff_backends(kernel.network(), volleys)
            assert disagreements == []

    @pytest.mark.parametrize("name", kernel_names())
    def test_optimized_program_agrees_everywhere(self, name):
        kernel = build_kernel(name)
        volleys = adversarial_volleys(
            kernel.arity, rng=random.Random(5), n_random=3
        )
        _, disagreements = diff_backends(
            kernel.network(), volleys, optimize=True
        )
        assert disagreements == []


class TestClosedFormSemantics:
    """Exhaustive window checks against the algebra's closed forms."""

    def test_interval_shift(self):
        kernel = interval_shift(2)
        for lo, hi in window_vectors(2, 3):
            out = kernel.evaluate((lo, hi))
            assert out["lo_out"] == (INF if lo is INF else lo + 2)
            assert out["hi_out"] == (INF if hi is INF else hi + 2)

    def test_interval_pointwise_and_sets(self):
        cases = {
            "interval-min": lambda a, b, c, d: (tmin(a, c), tmin(b, d)),
            "interval-max": lambda a, b, c, d: (tmax(a, c), tmax(b, d)),
            "interval-union": lambda a, b, c, d: (tmin(a, c), tmax(b, d)),
        }
        for name, expect in cases.items():
            kernel = build_kernel(name)
            for vec in window_vectors(4, 2):
                out = kernel.evaluate(vec)
                lo, hi = expect(*vec)
                assert (out["lo_out"], out["hi_out"]) == (lo, hi), (name, vec)

    def test_interval_intersect_witness(self):
        kernel = interval_intersect()
        for vec in window_vectors(4, 2):
            out = kernel.evaluate(vec)
            lo = tmax(vec[0], vec[2])
            hi = tmin(vec[1], vec[3])
            assert out["lo_out"] == lo
            assert out["hi_out"] == hi
            assert out["proper"] == tlt(lo, hi)

    def test_latch_races_data_against_close(self):
        kernel = latch(hold=1)
        for data, close in window_vectors(2, 4):
            out = kernel.evaluate((data, close))
            captured = tlt(data, close)
            assert out["q"] == (INF if captured is INF else captured + 1)
            assert out["missed"] == tlt(close, data)

    def test_latch_tie_is_silent_both_ways(self):
        out = latch().evaluate((3, 3))
        assert out == {"q": INF, "missed": INF}

    def test_barrier_is_max_plus_slack(self):
        kernel = barrier(n=3, slack=2)
        for vec in window_vectors(3, 2):
            out = kernel.evaluate(vec)
            release = tmax(*vec)
            assert out["release"] == (
                INF if release is INF else release + 2
            )
            assert out["first"] == tmin(*vec)

    def test_router_strict_one_wta(self):
        kernel = router(3)
        for vec in window_vectors(3, 2):
            out = kernel.evaluate(vec)
            for i in range(3):
                others = tmin(*(vec[j] for j in range(3) if j != i))
                assert out[f"y{i}"] == tlt(vec[i], others), (vec, i)

    def test_router_tie_has_no_winner(self):
        out = router(2).evaluate((1, 1))
        assert out == {"y0": INF, "y1": INF}

    @pytest.mark.parametrize("n,k", [(2, 1), (3, 2), (4, 2), (4, 3), (3, 3)])
    def test_accumulator_is_kth_order_statistic(self, n, k):
        kernel = accumulator(n=n, k=k)
        for vec in window_vectors(n, 2):
            ordered = sorted(vec, key=lambda t: (t is INF, 0 if t is INF else t))
            assert kernel.evaluate(vec)["kth"] == ordered[k - 1], vec

    def test_accumulator_silent_lines_never_count(self):
        kernel = accumulator(n=4, k=3)
        assert kernel.evaluate((0, 1, INF, INF))["kth"] == INF


class TestFunctionTableContract:
    @pytest.mark.parametrize("name", kernel_names())
    def test_contract_has_one_table_per_port(self, name):
        spec = KERNELS[name]
        kernel = spec.build()
        tables = kernel.contract(window=spec.table_window)
        assert sorted(tables) == sorted(kernel.outputs)
        assert all(len(table) > 0 for table in tables.values())

    def test_single_output_autoselects(self):
        table = accumulator(n=2, k=2).function_table(window=2)
        assert table.arity == 2

    def test_multi_output_requires_port(self):
        with pytest.raises(KernelError, match="output ports"):
            latch().function_table(window=2)

    def test_contract_is_deterministic(self):
        a = latch().contract(window=3)
        b = latch().contract(window=3)
        assert a == b


class TestKernelApi:
    def test_registry_entries_build_and_describe(self):
        for name in kernel_names():
            kernel = build_kernel(name)
            text = kernel.describe()
            assert f"kernel {name}" in text
            for port in kernel.inputs + kernel.outputs:
                assert port in text

    def test_unknown_kernel_lists_registry(self):
        with pytest.raises(KernelError, match="interval-shift"):
            build_kernel("bogus")

    def test_factory_argument_validation(self):
        with pytest.raises(KernelError):
            interval_shift(0)
        with pytest.raises(KernelError):
            barrier(n=1)
        with pytest.raises(KernelError):
            router(n=1)
        with pytest.raises(KernelError):
            accumulator(n=3, k=4)
        with pytest.raises(KernelError):
            latch(hold=-1)

    def test_evaluate_checks_arity(self):
        with pytest.raises(KernelError, match="2 input"):
            latch().evaluate((1, 2, 3))

    def test_renamed_rewires_ports_without_touching_structure(self):
        original = latch()
        renamed = original.renamed(
            inputs={"data": "d"}, outputs={"q": "out"}, name="l2"
        )
        assert renamed.inputs == ["d", "close"]
        assert sorted(renamed.outputs) == sorted(["out", "missed"])
        for volley in window_vectors(2, 3):
            assert (
                list(original.evaluate(volley).values())
                == list(renamed.evaluate(volley).values())
            )

    def test_renamed_rejects_unknown_and_colliding_ports(self):
        with pytest.raises(KernelError, match="unknown input"):
            latch().renamed(inputs={"nope": "x"})
        with pytest.raises(KernelError, match="unknown output"):
            latch().renamed(outputs={"nope": "x"})
        with pytest.raises(KernelError, match="collide"):
            latch().renamed(inputs={"data": "close"})
        with pytest.raises(KernelError, match="collide"):
            latch().renamed(outputs={"q": "missed"})

    def test_kernel_requires_outputs(self):
        from repro.ir.program import Program
        from repro.network.blocks import Node

        silent = Program((Node(0, "input", name="x"),), {})
        with pytest.raises(KernelError, match="no output ports"):
            Kernel(silent)

    def test_demo_network_is_pure_in_name(self):
        for name in kernel_names():
            assert (
                demo_network(name).fingerprint()
                == demo_network(name).fingerprint()
            )

    def test_demo_volley_arity_matches_kernel(self):
        for name, spec in KERNELS.items():
            assert len(spec.demo_volley) == spec.build().arity
