"""The fault harness keeps its teeth on kernel-built victims.

Re-runs the five fault classes (network mutation, plan reorder, spike
jitter, line drop, stuck-at-zero) with every victim case pinned to the
``kernels`` generator family — composed stdlib kernels, not hand-rolled
DAGs.  Every class must be detected, its witness shrunk, and a pytest
reproducer emitted.
"""

from repro.testing.conformance import run_fault_selfcheck
from repro.testing.faults import FAULT_CLASSES


class TestKernelVictims:
    def test_all_five_classes_detected_and_shrunk(self):
        report = run_fault_selfcheck(seed=0, smoke=True, family="kernels")
        assert len(report.detections) == len(FAULT_CLASSES) == 5
        assert report.ok, str(report)
        for detection in report.detections:
            assert detection.detected, detection.fault
            # every victim really was a kernel composition
            assert detection.case_name.startswith("kernels[")
            # the witness was shrunk and a reproducer emitted
            assert detection.witness is not None
            assert detection.regression_test
            assert "def test_" in detection.regression_test

    def test_detection_is_deterministic_per_seed(self):
        first = run_fault_selfcheck(seed=3, smoke=True, family="kernels")
        second = run_fault_selfcheck(seed=3, smoke=True, family="kernels")
        assert [d.witness for d in first.detections] == [
            d.witness for d in second.detections
        ]
        assert [d.case_name for d in first.detections] == [
            d.case_name for d in second.detections
        ]
