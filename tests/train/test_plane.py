"""Tests for the incremental trainer and the training plane.

The plane is exercised synchronously (train_step/snapshot are exactly
what the worker thread loops over) and once threaded end-to-end.
"""

import random
import time

import numpy as np
import pytest

from repro.core.value import INF
from repro.learning.stdp import STDPRule
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction
from repro.serve.batcher import BatchPolicy
from repro.serve.pool import InlineWorkerPool
from repro.serve.protocol import ServeError
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService
from repro.train import IncrementalTrainer, TrainingItem, TrainingPlane

BASE = ResponseFunction.step(amplitude=1, width=8)
ALIAS = "tiny@live"


def make_column(seed=0, n_inputs=8, n_neurons=3):
    rng = random.Random(seed)
    weights = np.array(
        [
            [rng.randint(1, 3) for _ in range(n_inputs)]
            for _ in range(n_neurons)
        ]
    )
    return Column(weights, threshold=6, base_response=BASE)


def learning_items(count, n_inputs=8, seed=1):
    """Volleys that reliably produce WTA winners (and so weight change)."""
    rng = random.Random(seed)
    return [
        TrainingItem(volley=tuple(rng.randint(0, 2) for _ in range(n_inputs)))
        for _ in range(count)
    ]


@pytest.fixture()
def service():
    registry = ModelRegistry()
    svc = TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=8, max_wait_s=0.002),
    )
    yield svc
    svc.close()


def make_plane(service, **kwargs):
    kwargs.setdefault("rule", STDPRule(a_plus=1, a_minus=1))
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("snapshot_every", 5)
    kwargs.setdefault("model_name", "tiny")
    return TrainingPlane(service, make_column(), alias=ALIAS, **kwargs)


class TestIncrementalTrainer:
    def test_presented_vs_applied(self):
        trainer = IncrementalTrainer(make_column(), seed=0)
        trainer.step(TrainingItem(volley=(INF,) * 8))  # silent: no winner
        trainer.step(TrainingItem(volley=(0,) * 8))
        assert trainer.presented == 2
        assert trainer.applied == 1

    def test_snapshot_resets_homeostatic_thresholds(self):
        column = make_column()
        base = list(column.thresholds)
        trainer = IncrementalTrainer(column, seed=0)
        for item in learning_items(10):
            trainer.step(item)
        assert list(column.thresholds) != base  # training inflated them
        trainer.compile_snapshot()
        assert list(column.thresholds) == base

    def test_foreign_trainer_rejected(self):
        from repro.learning.stdp import STDPTrainer

        with pytest.raises(ValueError, match="own column"):
            IncrementalTrainer(
                make_column(0), trainer=STDPTrainer(make_column(1))
            )


class TestPlaneLifecycle:
    def test_bootstrap_registers_and_aliases(self, service):
        plane = make_plane(service)
        fingerprint = plane.bootstrap()
        assert service.registry.resolve(ALIAS).model_id == fingerprint
        records = plane.lineage.records()
        assert len(records) == 1
        assert records[0].parent is None
        assert records[0].child == fingerprint

    def test_bootstrap_twice_rejected(self, service):
        plane = make_plane(service)
        plane.bootstrap()
        with pytest.raises(RuntimeError, match="bootstrapped"):
            plane.bootstrap()

    def test_cadence_snapshots_and_chains(self, service):
        plane = make_plane(service, snapshot_every=5)
        seed_fp = plane.bootstrap()
        for item in learning_items(10):
            plane.train_step(item)
        assert plane.snapshots >= 2  # seed + at least one cadence snapshot
        live = plane.live_fingerprint
        assert live != seed_fp
        chain = plane.lineage.chain(live)
        assert chain[0].child == seed_fp
        assert chain[-1].child == live
        assert service.registry.resolve(ALIAS).model_id == live

    def test_unchanged_snapshot_deduplicates(self, service):
        plane = make_plane(service)
        plane.bootstrap()
        before = len(plane.lineage)
        assert plane.snapshot() is None  # nothing trained since bootstrap
        assert len(plane.lineage) == before
        assert plane._since_snapshot == 0

    def test_promotion_retires_previous(self, service):
        plane = make_plane(service, snapshot_every=5)
        seed_fp = plane.bootstrap()
        for item in learning_items(5):
            plane.train_step(item)
        assert plane.live_fingerprint != seed_fp
        with pytest.raises(ServeError):
            service.registry.resolve(seed_fp)

    def test_alias_serves_the_live_model(self, service):
        plane = make_plane(service)
        plane.bootstrap()
        volley = (0, 1, 2, 0, 1, 2, 0, 1)
        future = service.submit(ALIAS, volley)
        assert future.result(timeout=10) == service.direct(ALIAS, [volley])[0]

    def test_probe_recorded_in_lineage(self, service):
        plane = make_plane(service, probe=lambda: 0.5)
        plane.bootstrap()
        assert plane.lineage.records()[0].accuracy == 0.5
        assert plane.last_accuracy == 0.5

    def test_stats_shape(self, service):
        plane = make_plane(service)
        plane.bootstrap()
        stats = plane.stats()
        assert stats["alias"] == ALIAS
        assert stats["live"] == plane.live_fingerprint
        assert set(stats) == {
            "alias",
            "live",
            "presented",
            "applied",
            "snapshots",
            "promotions",
            "last_accuracy",
            "queue",
            "lineage",
        }


class TestPlaneThreaded:
    def test_ingest_to_promotion_end_to_end(self, service):
        plane = make_plane(service, snapshot_every=5)
        service.training = plane
        plane.start()
        seed_fp = plane.live_fingerprint
        accepted = sum(plane.ingest(item) for item in learning_items(25))
        deadline = time.monotonic() + 10.0
        while plane.incremental.presented < accepted:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"trainer consumed {plane.incremental.presented} of "
                    f"{accepted} accepted items"
                )
            time.sleep(0.01)
        plane.stop()
        assert plane.incremental.presented == accepted
        assert plane.live_fingerprint != seed_fp
        assert service.registry.resolve(ALIAS).model_id == plane.live_fingerprint
        assert service.stats()["training"]["presented"] == accepted

    def test_stop_trains_the_remainder(self, service):
        plane = make_plane(service, snapshot_every=10_000)
        plane.bootstrap()
        for item in learning_items(7):
            plane.queue.put(item)
        plane.stop()  # never started: drain runs synchronously
        assert plane.incremental.presented == 7
