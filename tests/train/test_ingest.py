"""Tests for streaming ingestion: items, the bounded queue, file replay."""

import threading

import pytest

from repro.core.value import INF
from repro.obs.metrics import METRICS
from repro.train.ingest import (
    TrainingItem,
    TrainingQueue,
    file_source,
    items_from_labeled,
    save_items,
)


class TestTrainingItem:
    def test_wire_roundtrip_with_infinity(self):
        item = TrainingItem(volley=(3, INF, 0), label=2)
        wire = item.to_wire()
        assert wire == {"volley": [3, None, 0], "label": 2}
        assert TrainingItem.from_wire(wire) == item

    def test_unlabeled_omits_label(self):
        item = TrainingItem(volley=(1,))
        assert item.to_wire() == {"volley": [1]}
        assert TrainingItem.from_wire({"volley": [1]}).label is None

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            TrainingItem.from_wire({"volley": [1], "label": "two"})

    def test_bad_volley_rejected(self):
        with pytest.raises(ValueError):
            TrainingItem.from_wire({"volley": [-1]})


class TestTrainingQueue:
    def test_put_get_fifo(self):
        queue = TrainingQueue(capacity=4)
        items = [TrainingItem(volley=(i,)) for i in range(3)]
        assert all(queue.put(item) for item in items)
        assert [queue.get(timeout=0) for _ in range(3)] == items

    def test_full_queue_drops_and_counts(self):
        queue = TrainingQueue(capacity=2)
        dropped_before = METRICS.counter("train.queue.dropped")
        assert queue.put(TrainingItem(volley=(0,)))
        assert queue.put(TrainingItem(volley=(1,)))
        assert not queue.put(TrainingItem(volley=(2,)))  # dropped, not blocked
        stats = queue.stats()
        assert stats["depth"] == 2
        assert stats["accepted"] == 2
        assert stats["dropped"] == 1
        assert METRICS.counter("train.queue.dropped") == dropped_before + 1

    def test_get_times_out_empty(self):
        queue = TrainingQueue()
        assert queue.get(timeout=0.01) is None

    def test_get_wakes_on_put(self):
        queue = TrainingQueue()
        got = []

        def consumer():
            got.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        item = TrainingItem(volley=(7,))
        queue.put(item)
        thread.join(timeout=5.0)
        assert got == [item]

    def test_close_refuses_and_wakes(self):
        queue = TrainingQueue()
        queue.close()
        assert not queue.put(TrainingItem(volley=(0,)))
        assert queue.get(timeout=0) is None

    def test_drain(self):
        queue = TrainingQueue()
        for i in range(5):
            queue.put(TrainingItem(volley=(i,)))
        assert len(queue.drain(limit=2)) == 2
        assert len(queue.drain()) == 3
        assert queue.depth() == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            TrainingQueue(capacity=0)


class TestFileReplay:
    def test_save_then_replay_is_identical(self, tmp_path):
        path = str(tmp_path / "stream.ndjson")
        items = [
            TrainingItem(volley=(0, INF, 3), label=1),
            TrainingItem(volley=(2, 2, 2)),
        ]
        assert save_items(items, path) == 2
        assert list(file_source(path)) == items

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text('{"volley":[1]}\n\n{"volley":[2]}\n')
        assert len(list(file_source(str(path)))) == 2

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"volley":[1]}\n{"volley":[-4]}\n')
        with pytest.raises(ValueError, match="bad.ndjson:2"):
            list(file_source(str(path)))


class TestLabeledAdapter:
    def test_items_from_labeled(self):
        from repro.apps.datasets import LabeledVolley
        from repro.coding.volley import Volley

        rows = [LabeledVolley(volley=Volley((1, INF)), label=0)]
        items = items_from_labeled(rows)
        assert items == [TrainingItem(volley=(1, INF), label=0)]
