"""The shared online-training scenario: seeded, learnable, calibrated.

These gates pin the workload the benchmark and the CI smoke job both
consume: the untrained seed column sits near chance on the holdout
split, and a couple of online passes lift it well above — if either
drifts, the training plane's acceptance numbers stop meaning anything.
"""

import pytest

from repro.train import classification_scenario


@pytest.fixture(scope="module")
def smoke():
    return classification_scenario(smoke=True, seed=0)


class TestScenarioShape:
    def test_splits_and_arity(self, smoke):
        assert len(smoke.train) == 90 and len(smoke.holdout) == 30
        assert smoke.column.n_inputs == 10
        assert {item.label for item in smoke.train} == {0, 1, 2}

    def test_items_stream_matches_train_split(self, smoke):
        items = smoke.items()
        assert len(items) == len(smoke.train)
        assert items[0].label == smoke.train[0].label
        assert tuple(items[0].volley) == tuple(smoke.train[0].volley)

    def test_same_seed_same_problem(self):
        a = classification_scenario(smoke=True, seed=0)
        b = classification_scenario(smoke=True, seed=0)
        assert [tuple(i.volley) for i in a.holdout] == [
            tuple(i.volley) for i in b.holdout
        ]
        assert (a.column.weights == b.column.weights).all()


class TestOnlineLearning:
    def test_training_lifts_holdout_accuracy_above_chance(self, smoke):
        untrained = smoke.probe()
        assert untrained < 0.45  # near chance (1/3) by construction
        trainer = smoke.make_trainer()
        trainer.train([item.volley for item in smoke.items()], epochs=1)
        trainer.homeostasis.reset(smoke.column)
        trained = smoke.probe()
        assert trained > 0.6
        assert trained > untrained + 0.2
