"""Tests for the model lineage: chain integrity and the JSON artifact."""

import pytest

from repro.train.lineage import FORMAT, LineageRecord, ModelLineage

A, B, C = "a" * 64, "b" * 64, "c" * 64


def edge(parent, child, steps=10, total=10, accuracy=None):
    return LineageRecord(
        parent=parent,
        child=child,
        steps=steps,
        total_steps=total,
        rule={"rule": "STDPRule", "a_plus": 1},
        accuracy=accuracy,
        promoted=True,
    )


class TestChain:
    def test_append_and_head(self):
        lineage = ModelLineage(alias="m@live")
        assert lineage.head() is None
        lineage.append(edge(None, A, steps=0, total=0))
        lineage.append(edge(A, B))
        assert lineage.head() == B
        assert len(lineage) == 2

    def test_break_rejected(self):
        lineage = ModelLineage()
        lineage.append(edge(None, A, steps=0, total=0))
        with pytest.raises(ValueError, match="lineage break"):
            lineage.append(edge(C, B))  # C was never the head

    def test_chain_walks_to_seed(self):
        lineage = ModelLineage()
        lineage.append(edge(None, A, steps=0, total=0))
        lineage.append(edge(A, B, steps=5, total=5))
        lineage.append(edge(B, C, steps=5, total=10))
        chain = lineage.chain(C)
        assert [record.child for record in chain] == [A, B, C]
        assert chain[0].parent is None
        # A mid-chain fingerprint yields its own prefix.
        assert [record.child for record in lineage.chain(B)] == [A, B]

    def test_unknown_fingerprint_raises(self):
        lineage = ModelLineage()
        with pytest.raises(KeyError):
            lineage.chain(A)


class TestSerialization:
    def build(self):
        lineage = ModelLineage(alias="digits@live")
        lineage.append(edge(None, A, steps=0, total=0, accuracy=0.3))
        lineage.append(edge(A, B, steps=50, total=50, accuracy=0.7))
        return lineage

    def test_describe_shape(self):
        doc = self.build().describe()
        assert doc["format"] == FORMAT
        assert doc["alias"] == "digits@live"
        assert doc["head"] == B
        assert doc["snapshots"] == 2
        assert doc["total_steps"] == 50
        assert [r["accuracy"] for r in doc["records"]] == [0.3, 0.7]

    def test_json_roundtrip(self):
        original = self.build()
        rebuilt = ModelLineage.from_json(original.to_json())
        assert rebuilt.describe() == original.describe()

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "lineage.json")
        original = self.build()
        original.save(path)
        assert ModelLineage.load(path).describe() == original.describe()

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a lineage document"):
            ModelLineage.from_json('{"format": "something/9"}')
