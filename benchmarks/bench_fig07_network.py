"""Fig. 7 (block diagram) — feedforward computing networks at scale.

Regenerates the encode → compute → decode pipeline and measures how the
three execution semantics (denotational, event-driven, compiled GRL)
scale with network size on random primitive DAGs.
"""

import random

from repro.analysis.equivalence import check_network
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.events import EventSimulator
from repro.network.simulator import evaluate
from repro.network.stats import structure


def random_network(n_inputs, n_blocks, seed):
    rng = random.Random(seed)
    builder = NetworkBuilder(f"random{n_blocks}")
    pool = [builder.input(f"x{i}") for i in range(n_inputs)]
    for _ in range(n_blocks):
        op = rng.choice(["inc", "min", "max", "lt"])
        if op == "inc":
            pool.append(builder.inc(rng.choice(pool), rng.randint(1, 3)))
        elif op == "lt":
            pool.append(builder.lt(rng.choice(pool), rng.choice(pool)))
        else:
            srcs = [rng.choice(pool) for _ in range(rng.randint(2, 3))]
            pool.append(getattr(builder, op)(*srcs))
    builder.output("y", pool[-1])
    return builder.build()


def random_inputs(net, rng):
    return {
        name: (INF if rng.random() < 0.2 else rng.randint(0, 7))
        for name in net.input_names
    }


def report() -> str:
    lines = ["Fig. 7 — feedforward s-t computing networks"]
    lines.append(f"\n{'blocks':>7} {'depth':>6} {'semantics agree?':>17}")
    for n_blocks in (10, 50, 200):
        net = random_network(4, n_blocks, seed=n_blocks)
        stats = structure(net)
        agreement = check_network(net, window=3, sample=60)
        lines.append(
            f"{stats.n_blocks:>7} {stats.depth:>6} "
            f"{'yes' if agreement.ok else 'NO':>17}"
        )
    lines.append(
        "\nshape: denotational evaluation, local event-driven spikes, and "
        "compiled CMOS agree at every scale (Lemma 1 compositionality)."
    )
    return "\n".join(lines)


def bench_denotational_evaluation(benchmark):
    net = random_network(6, 300, seed=1)
    rng = random.Random(2)
    inputs = random_inputs(net, rng)
    result = benchmark(evaluate, net, inputs)
    assert "y" in result


def bench_event_driven_simulation(benchmark):
    net = random_network(6, 300, seed=1)
    sim = EventSimulator(net)
    rng = random.Random(2)
    inputs = random_inputs(net, rng)
    expected = evaluate(net, inputs)
    result = benchmark(sim.run, inputs)
    assert result.outputs == expected


if __name__ == "__main__":
    print(report())
