"""Shared helpers for the per-figure benchmark harness.

Every ``bench_figXX_*.py`` module contains

* a ``report()`` function that regenerates the figure's quantity — the
  rows/series the paper presents — as a printable string, and is also run
  standalone: ``python benchmarks/bench_figXX_....py``;
* ``bench_*`` functions timed by pytest-benchmark
  (``pytest benchmarks/ --benchmark-only``), which assert the
  correctness property the figure illustrates before timing it.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so -s shows reports during benches."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _show
