"""Fig. 3 — the neural network taxonomy, applied mechanically.

The paper's informal RNN/TNN test: count spikes per line per computation.
Regenerates the classification for (a) our own s-t networks (always TNN,
by construction), and (b) synthetic Poisson rate-coded traffic (RNN), and
times the classifier.
"""

from repro.analysis.taxonomy import (
    classify_counts,
    classify_simulation,
    synthetic_rate_trace,
)
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE
from repro.network.events import simulate


def report() -> str:
    lines = ["Fig. 3 — taxonomy by the spike-count test"]
    net = synthesize(FIG7_TABLE)
    result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
    tnn = classify_simulation(result)
    lines.append(
        f"\nspace-time network ({net.size} blocks): "
        f"{tnn.classification.name} — max {tnn.max_spikes_per_line} "
        f"spike/line over {tnn.active_lines} active lines"
    )
    for rate in (2.0, 4.0, 8.0):
        rnn = classify_counts(synthetic_rate_trace(64, mean_rate=rate, seed=1))
        lines.append(
            f"rate-coded trace (mean rate {rate}): {rnn.classification.name} "
            f"— mean {rnn.mean_spikes_per_active_line:.1f} spikes/line"
        )
    lines.append(
        "\nshape: temporal networks sit at <=1 spike/line, rate networks "
        ">=2 — the paper's separation criterion."
    )
    return "\n".join(lines)


def bench_classify_simulation(benchmark):
    net = synthesize(FIG7_TABLE)
    result = simulate(net, dict(zip(net.input_names, (0, 1, 2))))
    report_ = benchmark(classify_simulation, result)
    assert report_.classification.name == "TNN"


def bench_classify_rate_trace(benchmark):
    counts = synthetic_rate_trace(512, mean_rate=4.0, seed=3)
    report_ = benchmark(classify_counts, counts)
    assert report_.classification.name == "RNN"


if __name__ == "__main__":
    print(report())
