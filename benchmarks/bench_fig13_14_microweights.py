"""Figs. 13–14 — micro-weight configurable synapses.

Regenerates the enable/disable truth of the micro-weight gate (Fig. 13)
and the weight-selection experiment of Fig. 14: for every weight setting,
the programmable neuron matches the behavioral neuron built with that
weight.  Times configuration and evaluation.
"""

from repro.core.value import INF
from repro.network.simulator import evaluate
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.weights import build_programmable_neuron, weight_settings

BASE = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)


def report() -> str:
    lines = ["Figs. 13-14 — micro-weight programmable synapses"]
    lines.append("\nFig. 13 gate: z = lt(x, mu)")
    lines.append("  mu = INF (enable) : x=4 -> z=4")
    lines.append("  mu = 0   (disable): x=4 -> z=INF")

    net, synapses = build_programmable_neuron(
        2, base_response=BASE, max_weight=4, threshold=3
    )
    lines.append(
        f"\nFig. 14 neuron: 2 inputs x 4 weight levels, "
        f"{len(net.param_names)} micro-weights, {net.size} blocks"
    )
    lines.append(f"\n{'w1':>3} {'w2':>3} | {'fire(0,0)':>9} {'behavioral':>11} {'match':>6}")
    all_match = True
    for w1 in range(5):
        for w2 in range(5):
            params = weight_settings(synapses, [w1, w2])
            got = evaluate(net, {"x1": 0, "x2": 0}, params=params)["y"]
            behavioral = SRM0Neuron.homogeneous(
                2, [w1, w2], base_response=BASE, threshold=3
            ).fire_time((0, 0))
            match = got == behavioral
            all_match &= match
            if w2 in (0, 2, 4):
                lines.append(
                    f"{w1:>3} {w2:>3} | {str(got):>9} {str(behavioral):>11} "
                    f"{'yes' if match else 'NO':>6}"
                )
    lines.append(
        f"\nall 25 weight settings match behavioral neurons: "
        f"{'yes' if all_match else 'NO'}"
    )
    lines.append(
        "\nshape: one hardware network + micro-weight configuration = the "
        "whole weight family (the paper's programmability story)."
    )
    return "\n".join(lines)


def bench_build_programmable_neuron(benchmark):
    net, synapses = benchmark(
        build_programmable_neuron,
        3,
        base_response=BASE,
        max_weight=4,
        threshold=4,
    )
    assert len(synapses) == 3


def bench_configured_evaluation(benchmark):
    net, synapses = build_programmable_neuron(
        3, base_response=BASE, max_weight=4, threshold=4
    )
    params = weight_settings(synapses, [3, 2, 4])

    def run():
        return evaluate(net, {"x1": 0, "x2": 1, "x3": 0}, params=params)["y"]

    want = SRM0Neuron.homogeneous(
        3, [3, 2, 4], base_response=BASE, threshold=4
    ).fire_time((0, 1, 0))
    assert benchmark(run) == want


if __name__ == "__main__":
    print(report())
