"""Batched vs per-volley network evaluation throughput.

The compiled engine (:mod:`repro.network.compile_plan`) amortizes the
instruction-stream dispatch of one network over a whole batch of input
volleys.  This report measures that amortization on the two acceptance
networks — the Fig. 9 synthesized minterm network and the Fig. 12 SRM0
construction — at batch sizes B ∈ {1, 64, 1024}, against

* ``per-volley``: the public scalar path (``evaluate_vector``), i.e. the
  compiled engine called with B=1 per volley, and
* ``interpreted``: the pure-Python reference walk
  (``evaluate_all_interpreted``) — the seed implementation.

Every timed configuration is first checked for exact agreement between
the batched and interpreted results.  The measured table is also written
to ``BENCH_batched_eval.json`` (repo root) so future changes can track
the perf trajectory.

Run standalone::

    python benchmarks/bench_batched_eval.py [--smoke] [--json PATH]

``--smoke`` shrinks batch sizes and repeats for CI.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.core.table import NormalizedTable
from repro.core.synthesis import synthesize
from repro.network.compile_plan import (
    compile_plan,
    decode_matrix,
    encode_volleys,
)
from repro.network.generate import random_volley
from repro.network.simulator import evaluate_all_interpreted, evaluate_vector
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_network

BATCH_SIZES = (1, 64, 1024)
SMOKE_BATCH_SIZES = (1, 64)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_batched_eval.json"


def acceptance_networks():
    """The two networks the speedup claim is stated over."""
    table = NormalizedTable.random(3, window=3, n_rows=16, rng=random.Random(4))
    fig09 = synthesize(table)
    neuron = SRM0Neuron.homogeneous(
        4,
        [2, 1, 3, 2],
        base_response=ResponseFunction.biexponential(amplitude=3, t_max=8),
        threshold=6,
    )
    fig12 = build_srm0_network(neuron)
    return {"fig09-minterm(3x16)": fig09, "fig12-srm0(4in)": fig12}


def _interpreted_outputs(network, volley):
    values = evaluate_all_interpreted(
        network, dict(zip(network.input_names, volley))
    )
    return tuple(values[i] for i in network.outputs.values())


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(network, batch_sizes=BATCH_SIZES, *, repeats=3, seed=0):
    """Throughput rows for one network; asserts batched == interpreted."""
    rng = random.Random(seed)
    arity = len(network.input_names)
    plan = compile_plan(network)  # compile outside the timed region
    rows = []
    for batch in batch_sizes:
        volleys = [
            random_volley(arity, rng=rng, silence_probability=0.25)
            for _ in range(batch)
        ]
        matrix = encode_volleys(volleys)

        got = decode_matrix(plan.outputs(matrix))
        want = [_interpreted_outputs(network, v) for v in volleys]
        assert got == want, f"batched != interpreted at B={batch}"

        t_batched = _best_of(repeats, lambda: plan.outputs(matrix))
        t_scalar = _best_of(
            repeats, lambda: [evaluate_vector(network, v) for v in volleys]
        )
        t_interp = _best_of(
            repeats,
            lambda: [
                evaluate_all_interpreted(
                    network, dict(zip(network.input_names, v))
                )
                for v in volleys
            ],
        )
        rows.append(
            {
                "batch": batch,
                "batched_vps": batch / t_batched,
                "per_volley_vps": batch / t_scalar,
                "interpreted_vps": batch / t_interp,
                "speedup_vs_per_volley": t_scalar / t_batched,
                "speedup_vs_interpreted": t_interp / t_batched,
            }
        )
    return rows


def run(*, smoke=False, repeats=None):
    """Measure every acceptance network; returns the artifact dict."""
    batch_sizes = SMOKE_BATCH_SIZES if smoke else BATCH_SIZES
    repeats = repeats or (1 if smoke else 3)
    networks = {}
    for name, network in acceptance_networks().items():
        plan = compile_plan(network)
        networks[name] = {
            "nodes": len(network.nodes),
            "blocks": network.size,
            "instructions": plan.n_instructions,
            "results": measure(network, batch_sizes, repeats=repeats),
        }
    return {
        "benchmark": "bench_batched_eval",
        "smoke": smoke,
        "batch_sizes": list(batch_sizes),
        "networks": networks,
    }


def report(*, smoke=False, artifact_path=ARTIFACT) -> str:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    lines = ["Batched evaluation engine — throughput (volleys/sec)"]
    for name, entry in data["networks"].items():
        lines.append(
            f"\n{name}: {entry['blocks']} blocks fused into "
            f"{entry['instructions']} instructions"
        )
        lines.append(
            f"{'B':>6} {'batched':>12} {'per-volley':>12} "
            f"{'interpreted':>12} {'speedup':>9}"
        )
        for row in entry["results"]:
            lines.append(
                f"{row['batch']:>6} {row['batched_vps']:>12.0f} "
                f"{row['per_volley_vps']:>12.0f} "
                f"{row['interpreted_vps']:>12.0f} "
                f"{row['speedup_vs_per_volley']:>8.1f}x"
            )
        if not smoke:
            top = entry["results"][-1]
            if top["speedup_vs_per_volley"] < 10:
                lines.append(
                    f"  WARNING: speedup {top['speedup_vs_per_volley']:.1f}x "
                    "below the 10x acceptance bar"
                )
            # Scaling must be monotone-or-flat: the blocked run loop keeps
            # working arrays cache-resident, so growing the batch may not
            # pay past the block size but must never fall off a cliff (the
            # pre-blocking engine dropped to ~40% of its B=64 throughput
            # at B=1024).  0.75 absorbs scheduler noise on shared runners.
            vps = [row["batched_vps"] for row in entry["results"]]
            assert vps[-1] >= 0.75 * max(vps), (
                f"{name}: batched throughput fell off a cliff at "
                f"B={entry['results'][-1]['batch']} "
                f"({vps[-1]:.0f} v/s vs peak {max(vps):.0f} v/s)"
            )
    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: one fused instruction stream amortized over the batch; "
        "per-volley dispatch cost vanishes and throughput grows "
        "superlinearly until the arrays fill cache."
    )
    return "\n".join(lines)


# -- pytest-benchmark hooks ---------------------------------------------------

def bench_batched_evaluation_b1024(benchmark):
    network = acceptance_networks()["fig12-srm0(4in)"]
    plan = compile_plan(network)
    rng = random.Random(0)
    matrix = encode_volleys(
        [random_volley(4, rng=rng) for _ in range(1024)]
    )
    out = benchmark(plan.outputs, matrix)
    assert out.shape == (1024, 1)


def bench_per_volley_evaluation_x64(benchmark):
    network = acceptance_networks()["fig12-srm0(4in)"]
    rng = random.Random(0)
    volleys = [random_volley(4, rng=rng) for _ in range(64)]
    result = benchmark(lambda: [evaluate_vector(network, v) for v in volleys])
    assert len(result) == 64


def bench_speedup_acceptance(benchmark, show):
    # The acceptance claim itself: >= 10x at the largest batch on both
    # networks (run under --benchmark-only; --smoke in CI uses the CLI).
    data = benchmark.pedantic(run, kwargs={"repeats": 2}, rounds=1, iterations=1)
    for name, entry in data["networks"].items():
        top = entry["results"][-1]
        show(f"{name}: {top['speedup_vs_per_volley']:.1f}x at B={top['batch']}")
        assert top["speedup_vs_per_volley"] >= 10, name


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small batches, single repeat (CI quick mode)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    print(report(smoke=args.smoke, artifact_path=args.json))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
