"""Fig. 16 — generalized race logic gate implementations.

Regenerates the gate-by-gate correspondence (AND=min, OR=max, DFF
chain=inc, latched gate=lt) exhaustively, demonstrates the latch glitch
the figure's latch exists to suppress, and verifies/times compiled
networks against the algebra on the cycle-accurate digital simulator.
"""

import random

from repro.core.algebra import lt as lt_ref
from repro.core.algebra import maximum, minimum
from repro.core.function import enumerate_domain
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF
from repro.network.simulator import evaluate
from repro.racelogic.compile import GRLExecutor
from repro.racelogic.gates import and_gate, dff_chain, lt_latch, lt_unlatched_waveform, or_gate


def report() -> str:
    lines = ["Fig. 16 — GRL primitives in off-the-shelf CMOS"]
    checks = {
        "AND = min": all(
            and_gate(a, b) == minimum(a, b) for a, b in enumerate_domain(2, 8)
        ),
        "OR = max": all(
            or_gate(a, b) == maximum(a, b) for a, b in enumerate_domain(2, 8)
        ),
        "latched gate = lt": all(
            lt_latch(a, b) == lt_ref(a, b) for a, b in enumerate_domain(2, 8)
        ),
        "DFF chain = inc": all(
            dff_chain(t, n) == (INF if t is INF else t + n)
            for t in [0, 1, 5, INF]
            for n in (1, 2, 5)
        ),
    }
    lines.append("\ngate-by-gate exhaustive correspondence:")
    for name, ok in checks.items():
        lines.append(f"  {name:<18} {'verified' if ok else 'FAILED'}")

    lines.append("\nwhy the lt needs its latch (a=2, b=5, unlatched a OR NOT b):")
    levels = lt_unlatched_waveform(2, 5, horizon=7)
    lines.append("  cycle : " + " ".join(str(c) for c in range(8)))
    lines.append("  level : " + " ".join(str(v) for v in levels))
    lines.append("  -> falls correctly at 2 but glitches back at 5; the latch holds the 0.")

    net = synthesize(FIG7_TABLE)
    executor = GRLExecutor(net)
    mismatches = sum(
        1
        for vec in enumerate_domain(3, 4)
        if executor.outputs(dict(zip(net.input_names, vec)))
        != evaluate(net, dict(zip(net.input_names, vec)))
    )
    lines.append(
        f"\ncompiled Fig. 7 network, cycle-accurate vs denotational over "
        f"window 4: {mismatches} mismatches"
    )
    lines.append(
        "\nshape: the whole s-t algebra runs on AND/OR/latch/DFF — TNNs "
        "are implementable with off-the-shelf digital CMOS."
    )
    return "\n".join(lines)


def bench_gate_correspondence_exhaustive(benchmark):
    def verify():
        return all(
            and_gate(a, b) == minimum(a, b)
            and or_gate(a, b) == maximum(a, b)
            and lt_latch(a, b) == lt_ref(a, b)
            for a, b in enumerate_domain(2, 10)
        )

    assert benchmark(verify)


def bench_digital_simulation(benchmark):
    net = synthesize(FIG7_TABLE)
    executor = GRLExecutor(net)
    bound = dict(zip(net.input_names, (0, 1, 2)))
    want = evaluate(net, bound)
    assert benchmark(executor.outputs, bound) == want


def bench_compile_network(benchmark):
    table = NormalizedTable.random(3, window=3, n_rows=12, rng=random.Random(1))
    net = synthesize(table)
    from repro.racelogic.compile import compile_network

    circuit = benchmark(compile_network, net)
    assert len(circuit) > 0


if __name__ == "__main__":
    print(report())
