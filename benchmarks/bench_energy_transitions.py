"""§VI — energy: the minimal-transition property and sparse coding.

Regenerates the paper's two energy arguments on compiled GRL circuits:

* every data wire switches at most once per computation (activity factor
  ≈ 1, vs ~0.5·bits for an equivalent binary datapath wire *per value*),
* sparse volleys leave most wires untouched — transitions scale with
  input activity, not circuit size,

plus the §V.C direct-vs-indirect communication trade-off table, and the
paper's caveat: clocked DFFs pay clock energy every cycle regardless.
"""

import random

from repro.core.synthesis import synthesize
from repro.core.table import NormalizedTable
from repro.core.value import INF
from repro.racelogic.energy import communication_sweep, measure_energy


def _volley(n, sparsity, rng):
    return {
        f"x{i + 1}": (INF if rng.random() < sparsity else rng.randint(0, 3))
        for i in range(n)
    }


def report() -> str:
    lines = ["§VI — transition-count energy on compiled GRL"]
    table = NormalizedTable.random(4, window=3, n_rows=12, rng=random.Random(0))
    net = synthesize(table)
    rng = random.Random(1)

    lines.append(f"\nnetwork: {net.size} blocks -> compiled circuit")
    lines.append(f"{'sparsity':>9} {'transitions/run':>16} {'activity factor':>16}")
    for sparsity in (0.0, 0.25, 0.5, 0.75, 1.0):
        inputs = [_volley(4, sparsity, rng) for _ in range(20)]
        energy = measure_energy(net, inputs)
        lines.append(
            f"{sparsity:>9.2f} {energy.transitions_per_run:>16.1f} "
            f"{energy.activity_factor:>16.3f}"
        )
    lines.append(
        "\nshape: transitions fall monotonically with sparsity, to zero "
        "for silent volleys; activity stays near or below ~1 per gate — "
        "the minimal-transition property."
    )

    inputs = [_volley(4, 0.0, rng) for _ in range(5)]
    energy = measure_energy(net, inputs)
    lines.append(
        f"\nDFF caveat: {energy.flipflop_count} flip-flops x "
        f"{energy.total_cycles} cycles = {energy.dff_clock_events} clock "
        "loads (paid even when idle — the paper's noted cost of shift-"
        "register delays)."
    )

    lines.append("\n§V.C direct (unary) vs indirect (binary) communication:")
    lines.append(f"{'bits':>5} {'direct toggles':>15} {'indirect toggles':>17} {'direct time':>12}")
    for cost in communication_sweep(8):
        lines.append(
            f"{cost.resolution_bits:>5} {cost.direct_transitions:>15} "
            f"{cost.indirect_transitions:>17.1f} {cost.direct_message_time:>12}"
        )
    lines.append(
        "\nshape: direct wins energy linearly but loses time exponentially "
        "— practical only at the paper's 3-4 bit resolutions."
    )
    return "\n".join(lines)


def bench_energy_measurement_dense(benchmark):
    table = NormalizedTable.random(4, window=3, n_rows=8, rng=random.Random(2))
    net = synthesize(table)
    rng = random.Random(3)
    inputs = [_volley(4, 0.0, rng) for _ in range(5)]
    energy = benchmark(measure_energy, net, inputs)
    assert energy.total_transitions > 0


def bench_energy_measurement_sparse(benchmark):
    table = NormalizedTable.random(4, window=3, n_rows=8, rng=random.Random(2))
    net = synthesize(table)
    rng = random.Random(3)
    inputs = [_volley(4, 0.9, rng) for _ in range(5)]
    energy = benchmark(measure_energy, net, inputs)
    assert energy.activity_factor <= 2.0


if __name__ == "__main__":
    print(report())
