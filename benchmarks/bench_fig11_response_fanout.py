"""Fig. 11 — response functions as fanout/increment networks.

Regenerates the biexponential example's step schedule, verifies that the
fanout network reproduces the response for arbitrary shapes, and times
fanout construction.
"""

import random

from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate_vector
from repro.neuron.response import FIG11_RESPONSE, ResponseFunction, fanout_network


def _reconstruct_via_network(response, spike_time):
    """Run the fanout network and rebuild R(t) from wire spike times."""
    builder = NetworkBuilder("fanout")
    x = builder.input("x")
    ups, downs = fanout_network(builder, x, response)
    for i, w in enumerate(ups):
        builder.output(f"u{i}", w)
    for i, w in enumerate(downs):
        builder.output(f"d{i}", w)
    net = builder.build()
    out = evaluate_vector(net, (spike_time,))
    horizon = spike_time + response.t_max
    values = []
    for t in range(horizon + 1):
        up = sum(1 for i in range(len(ups)) if out[f"u{i}"] <= t)
        down = sum(1 for i in range(len(downs)) if out[f"d{i}"] <= t)
        values.append(up - down)
    return values


def report() -> str:
    lines = ["Fig. 11 — biexponential response as s-t fanout"]
    train = FIG11_RESPONSE.steps()
    lines.append(f"\nR(t) = {list(FIG11_RESPONSE.values)}")
    lines.append(f"up-step increments  : {train.ups}")
    lines.append(f"down-step increments: {train.downs}")
    lines.append(f"total inc blocks    : {train.total_steps}")

    values = _reconstruct_via_network(FIG11_RESPONSE, spike_time=3)
    expected = [FIG11_RESPONSE(t - 3) for t in range(len(values))]
    lines.append(
        f"\nnetwork reconstruction with input spike at t=3: "
        f"{'exact' if values == expected else 'MISMATCH'}"
    )

    rng = random.Random(0)
    exact = 0
    for _ in range(10):
        shape = [0] + [rng.randint(-3, 5) for _ in range(rng.randint(2, 10))]
        response = ResponseFunction(shape)
        values = _reconstruct_via_network(response, spike_time=2)
        if values == [response(t - 2) for t in range(len(values))]:
            exact += 1
    lines.append(f"random response shapes reconstructed exactly: {exact}/10")
    lines.append(
        "\nshape: any bounded response — excitatory, inhibitory, or mixed "
        "— is exactly a set of delayed unit steps."
    )
    return "\n".join(lines)


def bench_fanout_construction(benchmark):
    def build():
        builder = NetworkBuilder("fanout")
        x = builder.input("x")
        ups, downs = fanout_network(builder, x, FIG11_RESPONSE)
        builder.output("u0", ups[0])
        return builder.build(), len(ups), len(downs)

    net, n_ups, n_downs = benchmark(build)
    train = FIG11_RESPONSE.steps()
    assert (n_ups, n_downs) == (len(train.ups), len(train.downs))


def bench_reconstruction(benchmark):
    values = benchmark(_reconstruct_via_network, FIG11_RESPONSE, 3)
    assert values[3 + 2] == FIG11_RESPONSE(2)


if __name__ == "__main__":
    print(report())
