"""Online training beside serving: accuracy-vs-steps and throughput.

The training plane's acceptance story, measured end to end: the seeded
latency-coded classification scenario (``repro.train.scenario``) is
trained *online* — volleys stream through the bounded ingestion queue
into the incremental STDP trainer while the very column being trained
serves concurrent eval traffic through its alias, hot-swapping on every
snapshot.  The report captures both sides:

* **learning** — the holdout accuracy-vs-steps curve read off the
  lineage records (each snapshot probes the holdout split before
  promotion), anchored by the untrained seed column's accuracy;
* **throughput** — sustained training steps/s and concurrently served
  eval requests/s over the same wall-clock window, plus ingestion-queue
  drops (backpressure is drop-and-count, never serving-plane blocking).

Acceptance: the online-trained model must beat the untrained seed on
the held-out set (the curve's last point above its first), with zero
failed eval requests.  Results land in ``BENCH_training.json``.

Run standalone::

    python benchmarks/bench_training.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

from repro.serve.batcher import BatchPolicy
from repro.serve.pool import InlineWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService
from repro.train import TrainingPlane, classification_scenario

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_training.json"

#: Minimum holdout-accuracy lift over the untrained seed (full mode).
MIN_IMPROVEMENT = 0.15

#: Eval-side closed-loop client threads running beside training.
EVAL_THREADS = 2


def _serve_while_training(service, alias, volleys, stop):
    """Closed-loop eval pressure on *alias* until *stop*; returns counts."""
    served = [0]
    errors = [0]
    lock = threading.Lock()

    def client(offset):
        i = offset
        while not stop.is_set():
            try:
                service.submit(alias, volleys[i % len(volleys)]).result(
                    timeout=30
                )
            except Exception:
                with lock:
                    errors[0] += 1
            else:
                with lock:
                    served[0] += 1
            i += 1

    threads = [
        threading.Thread(target=client, args=(k * 13,), daemon=True)
        for k in range(EVAL_THREADS)
    ]
    for thread in threads:
        thread.start()
    return threads, served, errors


def run(*, smoke: bool = False, seed: int = 0) -> dict:
    scenario = classification_scenario(smoke=smoke, seed=seed)
    epochs = 1 if smoke else 2
    snapshot_every = 20 if smoke else 25

    registry = ModelRegistry()
    service = TNNService(
        registry,
        InlineWorkerPool(registry.documents()),
        policy=BatchPolicy(max_batch=16, max_wait_s=0.001),
    )
    alias = f"{scenario.name}@live"
    plane = TrainingPlane(
        service,
        scenario.column,
        alias=alias,
        trainer=scenario.make_trainer(),
        snapshot_every=snapshot_every,
        probe=scenario.probe,
        model_name=scenario.name,
    )
    service.training = plane

    try:
        plane.bootstrap()
        untrained = plane.last_accuracy
        plane.start()

        items = scenario.items()
        expected = len(items) * epochs
        eval_volleys = [tuple(item.volley) for item in scenario.holdout]
        stop = threading.Event()
        threads, served, errors = _serve_while_training(
            service, alias, eval_volleys, stop
        )

        started = time.perf_counter()
        for _epoch in range(epochs):
            for item in items:
                # Backpressure: the queue drops when full, but the bench
                # wants every presentation, so re-offer until accepted.
                while not plane.ingest(item):
                    time.sleep(0.001)
        deadline = time.monotonic() + 600
        while plane.stats()["presented"] < expected:
            if time.monotonic() > deadline:
                raise RuntimeError("training plane stalled")
            time.sleep(0.01)
        plane.stop()
        elapsed = time.perf_counter() - started
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        stats = plane.stats()
        doc = plane.lineage.describe()
    finally:
        service.close()

    curve = [
        {
            "steps": record["total_steps"],
            "accuracy": record["accuracy"],
            "model": record["child"],
        }
        for record in doc["records"]
    ]
    final = curve[-1]["accuracy"] if curve else None
    return {
        "benchmark": "bench_training",
        "smoke": smoke,
        "scenario": scenario.name,
        "alias": alias,
        "seed": seed,
        "epochs": epochs,
        "snapshot_every": snapshot_every,
        "holdout": len(scenario.holdout),
        "untrained_accuracy": untrained,
        "final_accuracy": final,
        "improvement": (
            round(final - untrained, 4)
            if final is not None and untrained is not None
            else None
        ),
        "curve": curve,
        "presented": stats["presented"],
        "applied": stats["applied"],
        "snapshots": stats["snapshots"],
        "promotions": stats["promotions"],
        "queue_dropped": stats["queue"]["dropped"],
        "elapsed_s": round(elapsed, 4),
        "train_steps_per_s": round(stats["presented"] / elapsed, 1),
        "serve": {
            "requests": served[0],
            "errors": errors[0],
            "rps": round(served[0] / elapsed, 1),
        },
    }


def report(*, smoke: bool = False, artifact_path=ARTIFACT) -> tuple[str, bool]:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    ok = True
    lines = [
        f"Online training beside serving — scenario {data['scenario']!r}, "
        f"{data['presented']} presentations "
        f"({data['epochs']} epoch(s), snapshot every "
        f"{data['snapshot_every']}), {data['holdout']} holdout volleys",
        f"\naccuracy-vs-steps (holdout, probed at each promoted snapshot):",
    ]
    for point in data["curve"]:
        accuracy = (
            f"{point['accuracy']:.3f}" if point["accuracy"] is not None else "-"
        )
        lines.append(
            f"  {point['steps']:>5} steps  {accuracy}  ({point['model'][:12]})"
        )
    lines.append(
        f"\nuntrained seed {data['untrained_accuracy']:.3f} -> "
        f"online-trained {data['final_accuracy']:.3f} "
        f"(+{data['improvement']:.3f}) over {data['applied']} applied "
        f"step(s), {data['snapshots']} hot-swapped snapshot(s)"
    )
    lines.append(
        f"throughput: {data['train_steps_per_s']:.0f} train steps/s while "
        f"serving {data['serve']['rps']:.0f} eval req/s "
        f"({data['serve']['requests']} served, {data['serve']['errors']} "
        f"failed, {data['queue_dropped']} ingest drops) in "
        f"{data['elapsed_s']}s"
    )

    if data["final_accuracy"] is None or data["untrained_accuracy"] is None:
        ok = False
        lines.append("FAIL: no accuracy probes recorded")
    elif data["final_accuracy"] <= data["untrained_accuracy"]:
        ok = False
        lines.append("FAIL: online training did not beat the untrained seed")
    elif not smoke and data["improvement"] < MIN_IMPROVEMENT:
        ok = False
        lines.append(
            f"FAIL: improvement below the +{MIN_IMPROVEMENT:.2f} "
            f"acceptance bound"
        )
    if data["serve"]["errors"]:
        ok = False
        lines.append(
            f"FAIL: {data['serve']['errors']} eval request(s) failed during "
            f"training"
        )

    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: every snapshot is compile -> fingerprint-verified register "
        "-> warm -> atomic alias flip, so the eval clients ride through "
        "each promotion without a dropped or stale response while the "
        "curve climbs."
    )
    return "\n".join(lines), ok


def bench_training_smoke(benchmark=None):
    """Pytest-benchmark hook: the smoke scenario must learn online."""
    data = run(smoke=True)
    assert data["final_accuracy"] > data["untrained_accuracy"]
    assert data["serve"]["errors"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized scenario (still gated on beating the seed)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    text, ok = report(smoke=args.smoke, artifact_path=args.json)
    print(text)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
