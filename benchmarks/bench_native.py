"""Native arena backend vs the compiled instruction-stream engine.

The native backend (:mod:`repro.native`) lowers the optimized program a
second time into fused per-level megaops over a preallocated int64
arena — one gather/segment-reduce/saturating-inc/latch kernel per
(level, op-kind) bucket instead of one instruction per node.  This
report measures the payoff over the compiled engine
(:mod:`repro.network.compile_plan`) at the acceptance batch size on
four families: the Fig. 9 synthesized minterm network, the Fig. 12 SRM0
construction, a wider 7-input SRM0 neuron (reduction-heavy — where the
fused kernels shine), and a deep layered DAG.

Both native strategies are covered when available: the fused-NumPy
fallback (always timed; the ``>= 2x on at least one family`` acceptance
bar) and the Numba row-parallel JIT (timed only when numba is
importable in this environment; ``>= 10x`` bar).  Every timed
configuration is first checked for exact agreement with the compiled
engine.  Results land in ``BENCH_native.json`` (repo root).

Run standalone::

    python benchmarks/bench_native.py [--smoke] [--json PATH]

``--smoke`` shrinks the batch and repeats for CI and skips the
acceptance assertion (timing noise on shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.core.table import NormalizedTable
from repro.core.synthesis import synthesize
from repro.native import NUMBA_AVAILABLE, compile_native
from repro.network.compile_plan import compile_plan, encode_volleys
from repro.network.generate import random_volley
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_network
from repro.testing.generators import random_layered_network

BATCH = 1024
SMOKE_BATCH = 128

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_native.json"


def bench_networks():
    """The four families the native speedup claim is stated over."""
    table = NormalizedTable.random(3, window=3, n_rows=16, rng=random.Random(4))
    fig09 = synthesize(table)
    fig12 = build_srm0_network(
        SRM0Neuron.homogeneous(
            4,
            [2, 1, 3, 2],
            base_response=ResponseFunction.biexponential(amplitude=3, t_max=8),
            threshold=6,
        )
    )
    srm0_wide = build_srm0_network(
        SRM0Neuron.homogeneous(
            7,
            [2, 1, 3, 2, 1, 2, 3],
            base_response=ResponseFunction.biexponential(amplitude=3, t_max=8),
            threshold=8,
        )
    )
    layered = random_layered_network(
        seed=3, n_inputs=8, n_layers=6, width=16, n_outputs=4
    )
    return {
        "fig09-minterm(3x16)": fig09,
        "fig12-srm0(4in)": fig12,
        "srm0-wide(7in)": srm0_wide,
        "layered(8x6x16)": layered,
    }


@contextmanager
def _forced_mode(mode: str):
    """Pin ``REPRO_NATIVE`` for a timed region, restoring the old value."""
    previous = os.environ.get("REPRO_NATIVE")
    os.environ["REPRO_NATIVE"] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_NATIVE", None)
        else:
            os.environ["REPRO_NATIVE"] = previous


def _median_of(repeats, fn):
    """Median wall time — robust to scheduler noise on shared runners."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def measure(network, *, batch=BATCH, repeats=15, seed=0):
    """One family's row: compiled vs native-numpy (vs native-numba)."""
    rng = random.Random(seed)
    arity = len(network.input_names)
    plan = compile_plan(network)
    native = compile_native(network)
    matrix = encode_volleys(
        [
            random_volley(arity, rng=rng, silence_probability=0.25)
            for _ in range(batch)
        ]
    )

    want = plan.outputs(matrix)
    modes = ["numpy"] + (["numba"] if NUMBA_AVAILABLE else [])
    row = {
        "batch": batch,
        "kernels": len(native.kernels),
        "instructions": plan.n_instructions,
    }
    t_compiled = _median_of(repeats, lambda: plan.outputs(matrix))
    row["compiled_vps"] = batch / t_compiled
    for mode in modes:
        with _forced_mode(mode):
            got = native.outputs(matrix)
            np.testing.assert_array_equal(
                got, want, err_msg=f"native ({mode}) != compiled"
            )
            t_native = _median_of(repeats, lambda: native.outputs(matrix))
        row[f"native_{mode}_vps"] = batch / t_native
        row[f"speedup_{mode}"] = t_compiled / t_native
    return row


def run(*, smoke=False, repeats=None):
    """Measure every family; returns the artifact dict."""
    batch = SMOKE_BATCH if smoke else BATCH
    repeats = repeats or (3 if smoke else 15)
    families = {}
    for name, network in bench_networks().items():
        families[name] = {
            "nodes": len(network.nodes),
            "results": measure(network, batch=batch, repeats=repeats),
        }
    return {
        "benchmark": "bench_native",
        "smoke": smoke,
        "batch": batch,
        "numba_available": NUMBA_AVAILABLE,
        "families": families,
    }


def best_speedup(data, mode="numpy"):
    """The acceptance number: best family's native-over-compiled ratio."""
    return max(
        entry["results"].get(f"speedup_{mode}", 0.0)
        for entry in data["families"].values()
    )


def report(*, smoke=False, artifact_path=ARTIFACT) -> str:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    lines = [
        "Native arena backend vs compiled engine — throughput (volleys/sec)"
        f" at B={data['batch']}"
    ]
    header = f"{'family':<22} {'instrs':>7} {'kernels':>8} {'compiled':>10}"
    header += f" {'numpy':>10} {'ratio':>6}"
    if data["numba_available"]:
        header += f" {'numba':>10} {'ratio':>6}"
    lines.append(header)
    for name, entry in data["families"].items():
        row = entry["results"]
        line = (
            f"{name:<22} {row['instructions']:>7} {row['kernels']:>8} "
            f"{row['compiled_vps']:>10.0f} {row['native_numpy_vps']:>10.0f} "
            f"{row['speedup_numpy']:>5.2f}x"
        )
        if data["numba_available"]:
            line += (
                f" {row['native_numba_vps']:>10.0f}"
                f" {row['speedup_numba']:>5.2f}x"
            )
        lines.append(line)

    if not smoke:
        best = best_speedup(data, "numpy")
        bar = "meets" if best >= 2 else "BELOW"
        lines.append(
            f"\nfused-NumPy fallback: best {best:.2f}x — {bar} the 2x bar"
        )
        if data["numba_available"]:
            best_nb = best_speedup(data, "numba")
            bar = "meets" if best_nb >= 10 else "BELOW"
            lines.append(f"numba JIT: best {best_nb:.2f}x — {bar} the 10x bar")
        else:
            lines.append(
                "numba not importable here — the 10x JIT bar applies only "
                "where the [native] extra is installed (see CI native-smoke)"
            )
    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: per-node instruction dispatch collapses into one fused "
        "kernel per (level, op-kind) bucket; the reduction-heavy SRM0 "
        "families gain most because segment-min over sorted buckets "
        "replaces dozens of per-node minimum calls."
    )
    return "\n".join(lines)


# -- pytest-benchmark hooks ---------------------------------------------------

def bench_native_outputs_b1024(benchmark):
    network = bench_networks()["srm0-wide(7in)"]
    native = compile_native(network).warm()
    rng = random.Random(0)
    matrix = encode_volleys(
        [random_volley(7, rng=rng) for _ in range(1024)]
    )
    out = benchmark(native.outputs, matrix)
    assert out.shape == (1024, 1)


def bench_native_acceptance(benchmark, show):
    # The tentpole claim: the fused-NumPy fallback beats the compiled
    # engine >= 2x on at least one family (>= 10x with numba installed).
    data = benchmark.pedantic(run, kwargs={"repeats": 9}, rounds=1, iterations=1)
    best = best_speedup(data, "numpy")
    show(f"native/compiled (numpy): best {best:.2f}x")
    assert best >= 2, f"fused-NumPy fallback only {best:.2f}x"
    if data["numba_available"]:
        best_nb = best_speedup(data, "numba")
        show(f"native/compiled (numba): best {best_nb:.2f}x")
        assert best_nb >= 10, f"numba JIT only {best_nb:.2f}x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small batch, fewer repeats, no acceptance assertion (CI)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    print(report(smoke=args.smoke, artifact_path=args.json))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
