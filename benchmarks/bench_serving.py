"""Serving throughput: micro-batching policies vs offered load.

The serving claim mirrors the engine's batching claim one layer up: the
compiled engine is 36–44× faster *per volley* when handed batches, so a
service that coalesces concurrent requests into batches should beat
per-request dispatch by an order of magnitude at saturation.  This
report measures it: a windowed open-loop client (a fixed number of
outstanding requests, each completion immediately launching the next)
drives a live :class:`~repro.serve.service.TNNService` (real worker
processes, real IPC) across the policy grid

* ``max_batch`` ∈ {1, 32, 256} — 1 is per-request dispatch, the
  baseline every serving system implicitly compares against;
* ``workers`` ∈ {1, 4} — the sharding axis.

Each cell reports sustained throughput (req/s), p50/p99 latency, and
the batch sizes the micro-batcher actually formed.  Every response is
checked against a direct ``evaluate_batch`` of the same volley stream —
a throughput number from wrong answers would be worthless.

Acceptance (full mode): at saturation, the best batched policy must
clear **10×** the per-request policy's throughput at the same worker
count.  Results land in ``BENCH_serving.json`` at the repo root.

Run standalone::

    python benchmarks/bench_serving.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import threading
import time
from pathlib import Path

from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import ProcessWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService
from repro.serve.stats import reset_serve_stats

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Policy grid: (max_batch, workers).
FULL_GRID = [(1, 1), (32, 1), (256, 1), (1, 4), (32, 4), (256, 4)]
SMOKE_GRID = [(1, 1), (32, 1)]

#: Outstanding requests kept in flight (the offered load at saturation).
#: Windowed open loop rather than one thread per client: completions
#: launch the next request from their callback, so the measurement isn't
#: throttled by hundreds of client threads contending for the GIL.
FULL_CONCURRENCY = 160
SMOKE_CONCURRENCY = 8

#: The acceptance bound: batched vs per-request at the same workers.
MIN_BATCHING_SPEEDUP = 10.0

#: Synapses on the full-mode column.  The CLI demo column is deliberately
#: tiny; a serving benchmark on it would measure fixed Python overhead on
#: both paths.  A wider column makes the per-request engine call carry
#: real work — the thing micro-batching amortizes.
FULL_COLUMN_INPUTS = 10


def _bench_column(n_inputs: int, seed: int = 0):
    """A seeded SRM0 column with *n_inputs* synapses (demo recipe, wider)."""
    from repro.neuron.response import ResponseFunction
    from repro.neuron.srm0 import SRM0Neuron
    from repro.neuron.srm0_network import build_srm0_network

    rng = random.Random(seed)
    base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)
    weights = [rng.randint(1, 3) for _ in range(n_inputs)]
    neuron = SRM0Neuron.homogeneous(
        n_inputs, weights, base_response=base, threshold=3
    )
    return build_srm0_network(neuron, name=f"bench-col-{n_inputs}in-seed{seed}")


def _run_config(
    network,
    *,
    max_batch: int,
    workers: int,
    requests: int,
    concurrency: int,
) -> dict:
    """One grid cell: closed-loop clients against a fresh service."""
    # SERVE_STATS is process-global; each cell reports only its own batches.
    reset_serve_stats()
    registry = ModelRegistry()
    registry.register(network, name="bench")
    pool = ProcessWorkerPool(registry.documents(), n_workers=workers)
    service = TNNService(
        registry,
        pool,
        policy=BatchPolicy(
            max_batch=max_batch,
            # Per-request dispatch shouldn't wait for riders it will
            # never take; batched policies get a short coalescing window.
            max_wait_s=0.0 if max_batch == 1 else 0.002,
        ),
        max_pending=max(1024, concurrency * 4),
    )
    arity = len(network.input_ids)
    volleys = demo_volleys(arity, requests, seed=0)
    expected = service.direct("bench", volleys)

    try:
        # Warm the path end to end before timing.
        for volley in volleys[: min(8, requests)]:
            service.submit("bench", volley).result(timeout=60)

        latencies = [0.0] * requests
        wrong = [0]
        cursor = [0]
        completed = [0]
        lock = threading.Lock()
        finished = threading.Event()

        def launch() -> None:
            with lock:
                if cursor[0] >= requests:
                    return
                i = cursor[0]
                cursor[0] += 1
            start = time.perf_counter()
            future = service.submit("bench", volleys[i])

            def on_complete(f, i=i, start=start) -> None:
                latencies[i] = time.perf_counter() - start
                with lock:
                    if f.result() != expected[i]:
                        wrong[0] += 1
                    completed[0] += 1
                    done = completed[0] >= requests
                if done:
                    finished.set()
                else:
                    launch()

            future.add_done_callback(on_complete)

        started = time.perf_counter()
        for _ in range(min(concurrency, requests)):
            launch()
        if not finished.wait(timeout=600):
            raise RuntimeError("benchmark cell timed out")
        elapsed = time.perf_counter() - started

        stats = service.stats()
    finally:
        service.close()

    ordered = sorted(latencies)
    return {
        "engine": stats.get("engine"),
        "max_batch": max_batch,
        "workers": workers,
        "requests": requests,
        "concurrency": concurrency,
        "wrong_answers": wrong[0],
        "elapsed_s": round(elapsed, 4),
        "throughput_rps": round(requests / elapsed, 1),
        "p50_ms": round(ordered[len(ordered) // 2] * 1e3, 3),
        "p99_ms": round(
            ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1e3, 3
        ),
        "mean_batch_size": stats["batch_size"]["mean_size"],
        "batches_formed": stats["batch_size"]["batches"],
    }


def run(*, smoke: bool = False, requests: int | None = None) -> dict:
    grid = SMOKE_GRID if smoke else FULL_GRID
    concurrency = SMOKE_CONCURRENCY if smoke else FULL_CONCURRENCY
    requests = requests or (120 if smoke else 8000)
    if smoke:
        network, _ = demo_column(0, smoke=True)
    else:
        network = _bench_column(FULL_COLUMN_INPUTS)

    cells = []
    for max_batch, workers in grid:
        cells.append(
            _run_config(
                network,
                max_batch=max_batch,
                workers=workers,
                requests=requests,
                concurrency=concurrency,
            )
        )

    speedups = {}
    for workers in sorted({w for _, w in grid}):
        at_w = [c for c in cells if c["workers"] == workers]
        base = next((c for c in at_w if c["max_batch"] == 1), None)
        best = max(at_w, key=lambda c: c["throughput_rps"])
        if base is not None and base["throughput_rps"] > 0:
            speedups[str(workers)] = round(
                best["throughput_rps"] / base["throughput_rps"], 2
            )
    return {
        "benchmark": "bench_serving",
        "smoke": smoke,
        "engine": cells[0].get("engine") if cells else None,
        "model": network.name,
        "nodes": len(network.nodes),
        "concurrency": concurrency,
        "min_batching_speedup": MIN_BATCHING_SPEEDUP,
        "cells": cells,
        "batching_speedup_by_workers": speedups,
    }


def report(*, smoke: bool = False, artifact_path=ARTIFACT) -> tuple[str, bool]:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    ok = True
    lines = [
        f"Serving throughput — {data['concurrency']} requests in flight "
        f"(windowed open loop), {data['model']} ({data['nodes']} nodes), "
        f"{data['engine']} engine",
        f"{'batch':>6} {'workers':>8} {'req/s':>9} {'p50':>9} {'p99':>9} "
        f"{'mean-B':>7} {'wrong':>6}",
    ]
    for cell in data["cells"]:
        lines.append(
            f"{cell['max_batch']:>6} {cell['workers']:>8} "
            f"{cell['throughput_rps']:>9.0f} {cell['p50_ms']:>7.2f}ms "
            f"{cell['p99_ms']:>7.2f}ms {cell['mean_batch_size']:>7.1f} "
            f"{cell['wrong_answers']:>6}"
        )
        if cell["wrong_answers"]:
            ok = False
            lines.append("  FAIL: served answers diverged from direct evaluation")
    for workers, speedup in data["batching_speedup_by_workers"].items():
        lines.append(
            f"\nbatching speedup at {workers} worker(s): {speedup:.1f}× "
            f"over per-request dispatch"
        )
        if not smoke and speedup < MIN_BATCHING_SPEEDUP:
            ok = False
            lines.append(
                f"  FAIL: below the {MIN_BATCHING_SPEEDUP:.0f}× acceptance bound"
            )
    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: per-request dispatch pays one IPC round-trip and one B=1 "
        "engine call per request; micro-batching amortizes both across the "
        "whole coalesced batch, so throughput scales with the batch the "
        "wait window can form."
    )
    return "\n".join(lines), ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small grid and request count (CI quick mode; no pass/fail)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    text, ok = report(smoke=args.smoke, artifact_path=args.json)
    print(text)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
