"""Observability overhead: the disabled path must cost (almost) nothing.

The tracing/metrics/profiling hooks added by ``repro.obs`` sit directly
on the hottest loop in the repository — ``CompiledPlan.run`` — so this
report proves the acceptance bound: with no sink attached and profiling
off, ``evaluate_batch`` at B=1024 runs within 5% of the pre-hook
engine.  Three configurations are timed on the acceptance networks:

* ``baseline``  — a local replica of the pre-observability ``run`` loop
  (scatter + fused groups, no flag checks, no counters), executed over
  the *same* compiled plan groups;
* ``null-sink`` — the shipped ``plan.run`` with its defaults (the
  disabled path: one identity check, one module flag, one counter);
* ``recording`` — ``plan.run`` with a live :class:`RecordingSink`
  (the priced, opt-in path; reported for scale, not bounded).

A second grid prices **request tracing** (:mod:`repro.obs.rtrace`) on
the serving path: the same saturating request sweep through
:class:`~repro.serve.service.TNNService` with tracing off and on
(spans + flight-recorder ring), at the serving acceptance shape
(``max_batch=256``, 4 workers).  The bound is the same 5%: with
tracing *off* the producer sites cost one module-flag read per
request, and even *on* the span tree is a handful of appends per
request — both invisible next to a 256-row engine batch.

Results land in ``BENCH_obs_overhead.json`` at the repo root.

Run standalone::

    python benchmarks/bench_obs_overhead.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

import numpy as np

from repro.core.synthesis import synthesize
from repro.core.table import NormalizedTable
from repro.network.compile_plan import (
    INF_I64,
    CompiledPlan,
    _ConstGroup,
    _IncGroup,
    _LtGroup,
    _ReduceGroup,
    compile_plan,
    encode_volleys,
)
from repro.network.generate import random_volley
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_network
from repro.obs.trace import RecordingSink

BATCH_SIZES = (64, 1024)
SMOKE_BATCH_SIZES = (64,)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

#: The acceptance bound on the disabled path at the largest batch.
MAX_NULL_OVERHEAD_PCT = 5.0


def acceptance_networks():
    """Same networks the batched-eval speedup claim is stated over."""
    table = NormalizedTable.random(3, window=3, n_rows=16, rng=random.Random(4))
    fig09 = synthesize(table)
    neuron = SRM0Neuron.homogeneous(
        4,
        [2, 1, 3, 2],
        base_response=ResponseFunction.biexponential(amplitude=3, t_max=8),
        threshold=6,
    )
    fig12 = build_srm0_network(neuron)
    return {"fig09-minterm(3x16)": fig09, "fig12-srm0(4in)": fig12}


def baseline_run(plan: CompiledPlan, matrix: np.ndarray) -> np.ndarray:
    """The pre-observability ``CompiledPlan.run`` loop, verbatim.

    No sink check, no profiling flag, no counters — the engine exactly
    as it shipped before ``repro.obs`` existed, over today's compiled
    groups, so the diff isolates the hook cost and nothing else.
    """
    values = np.empty((matrix.shape[0], plan.n_nodes), dtype=np.int64)
    if plan.input_ids.size:
        values[:, plan.input_ids] = matrix
    for group in plan.groups:
        if isinstance(group, _IncGroup):
            gathered = values[:, group.srcs]
            np.minimum(gathered, group.caps, out=gathered)
            gathered += group.amounts
            values[:, group.ids] = gathered
        elif isinstance(group, _ReduceGroup):
            gathered = values[:, group.srcs]
            values[:, group.ids] = (
                gathered.min(axis=2) if group.is_min else gathered.max(axis=2)
            )
        elif isinstance(group, _LtGroup):
            a = values[:, group.a]
            b = values[:, group.b]
            values[:, group.ids] = np.where(a < b, a, INF_I64)
        else:  # _ConstGroup
            values[:, group.ids] = group.value
    return values[:, plan.output_ids]


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(network, batch_sizes=BATCH_SIZES, *, repeats=30, seed=0):
    """Per-batch rows: baseline vs null-sink vs recording-sink timings."""
    rng = random.Random(seed)
    arity = len(network.input_names)
    plan = compile_plan(network)
    rows = []
    for batch in batch_sizes:
        volleys = [
            random_volley(arity, rng=rng, silence_probability=0.25)
            for _ in range(batch)
        ]
        matrix = encode_volleys(volleys)

        want = baseline_run(plan, matrix)
        got = plan.run(matrix)[:, plan.output_ids]
        assert (want == got).all(), f"hooked run != baseline at B={batch}"

        t_base = _best_of(repeats, lambda: baseline_run(plan, matrix))
        t_null = _best_of(
            repeats, lambda: plan.run(matrix)[:, plan.output_ids]
        )
        t_rec = _best_of(
            repeats,
            lambda: plan.run(matrix, sink=RecordingSink())[:, plan.output_ids],
        )
        rows.append(
            {
                "batch": batch,
                "baseline_ms": t_base * 1e3,
                "null_sink_ms": t_null * 1e3,
                "recording_ms": t_rec * 1e3,
                "null_overhead_pct": (t_null / t_base - 1.0) * 100.0,
                "recording_overhead_pct": (t_rec / t_base - 1.0) * 100.0,
            }
        )
    return rows


#: Width of the SRM0 column the serve-path overhead grid runs on.  At
#: this width a 256-row batch is real engine work, so four workers are
#: **compute-bound** — which is what "saturation" means.  On the tiny
#: demo/bench columns a saturated pool is actually IPC-bound and the
#: grid would price Python scheduling, not tracing.
OVERHEAD_COLUMN_INPUTS = 80


def measure_serve(*, smoke=False, sweeps=10):
    """Saturating served sweeps, tracing off vs on: requests/s and delta.

    The serving acceptance shape: ``max_batch=256`` with 4 worker
    processes over a wide compute-bound column
    (:data:`OVERHEAD_COLUMN_INPUTS` inputs, built by
    :func:`bench_serving._bench_column`; inline pool on the tiny demo
    column under ``--smoke``).  All requests are submitted up front and
    the flush timer is set long, so the batcher always closes **full**
    256-row batches — partial-batch scheduling luck otherwise dominates
    the sweep time and drowns the signal.

    Methodology: one long-lived service serves *paired interleaved*
    sweeps — untraced then traced, alternating ``sweeps`` times — so
    slow drift (thermal, page cache, scheduler) hits both modes equally
    instead of biasing whichever ran second.  Each mode is summarized
    by its **minimum**: every sweep performs identical fixed work, and
    interference from outside the benchmark (host stolen time, sibling
    processes) only ever *adds* time, so the floor is the honest
    estimate and medians would price random spikes instead of tracing.
    After warmup the stable heap (model,
    service, encoded volleys) is frozen out of the cyclic GC with
    ``gc.freeze()``, mirroring what the serving CLI and worker
    processes do at startup — without it the bench measures full-GC
    scans of the model heap, not tracing.  ``gc.collect()`` runs
    between sweeps, outside the timed region: a sweep's transient
    garbage (futures, results) otherwise gets collected inside the
    *next* sweep's timing, charging each mode for the other's
    allocations.
    """
    import gc

    from repro.obs import rtrace
    from repro.serve.batcher import BatchPolicy
    from repro.serve.demo import demo_column, demo_volleys
    from repro.serve.pool import InlineWorkerPool, ProcessWorkerPool
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import TNNService
    from repro.serve.stats import reset_serve_stats

    n_requests = 256 if smoke else 4096
    n_workers = 0 if smoke else 4  # 0 ⇒ inline pool
    max_batch = 256
    if smoke:
        sweeps = min(sweeps, 3)

    registry = ModelRegistry()
    if smoke:
        network, _ = demo_column(0, smoke=True)
    else:
        try:
            from bench_serving import _bench_column
        except ImportError:
            from benchmarks.bench_serving import _bench_column
        network = _bench_column(OVERHEAD_COLUMN_INPUTS)
    registry.register(network, name="demo")
    arity = len(network.input_ids)
    volleys = demo_volleys(arity, n_requests, seed=11)

    pool = (
        InlineWorkerPool(registry.documents())
        if n_workers == 0
        else ProcessWorkerPool(registry.documents(), n_workers=n_workers)
    )
    service = TNNService(
        registry,
        pool,
        # The long flush timer never fires: requests arrive faster than
        # batches fill, so every batch closes at max_batch rows.
        policy=BatchPolicy(max_batch=max_batch, max_wait_s=0.05),
        max_pending=n_requests + 1,
    )

    def one_sweep():
        futures = [service.submit("demo", volley) for volley in volleys]
        for future in futures:
            future.result(timeout=120)

    times = {"untraced": [], "traced": []}
    try:
        for traced in (False, True):  # warm both code paths + worker plans
            rtrace.enable_rtrace(traced)
            one_sweep()
        rtrace.enable_rtrace(False)
        gc.collect()
        gc.freeze()
        for _ in range(sweeps):
            for mode in ("untraced", "traced"):
                rtrace.enable_rtrace(mode == "traced")
                gc.collect()  # the previous sweep's garbage, off the clock
                start = time.perf_counter()
                one_sweep()
                times[mode].append(time.perf_counter() - start)
    finally:
        rtrace.enable_rtrace(False)
        service.close()
        gc.unfreeze()
        rtrace.FLIGHT.clear()
        reset_serve_stats()

    t_off = min(times["untraced"])
    t_on = min(times["traced"])
    return {
        "requests": n_requests,
        "max_batch": max_batch,
        "workers": n_workers,
        "column_inputs": 0 if smoke else OVERHEAD_COLUMN_INPUTS,
        "sweeps": sweeps,
        "untraced_s": t_off,
        "traced_s": t_on,
        "untraced_sweeps_s": times["untraced"],
        "traced_sweeps_s": times["traced"],
        "untraced_rps": n_requests / t_off,
        "traced_rps": n_requests / t_on,
        "traced_overhead_pct": (t_on / t_off - 1.0) * 100.0,
    }


def run(*, smoke=False, repeats=None):
    batch_sizes = SMOKE_BATCH_SIZES if smoke else BATCH_SIZES
    repeats = repeats or (5 if smoke else 30)
    networks = {}
    for name, network in acceptance_networks().items():
        plan = compile_plan(network)
        networks[name] = {
            "nodes": len(network.nodes),
            "instructions": plan.n_instructions,
            "results": measure(network, batch_sizes, repeats=repeats),
        }
    return {
        "benchmark": "bench_obs_overhead",
        "smoke": smoke,
        "batch_sizes": list(batch_sizes),
        "max_null_overhead_pct": MAX_NULL_OVERHEAD_PCT,
        "networks": networks,
        "serve": measure_serve(smoke=smoke),
    }


def report(*, smoke=False, artifact_path=ARTIFACT) -> tuple[str, bool]:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    ok = True
    lines = ["Observability overhead — CompiledPlan.run per batch (ms, best-of)"]
    for name, entry in data["networks"].items():
        lines.append(f"\n{name}: {entry['instructions']} instructions")
        lines.append(
            f"{'B':>6} {'baseline':>10} {'null-sink':>10} {'recording':>10} "
            f"{'null-ovh':>9} {'rec-ovh':>9}"
        )
        for row in entry["results"]:
            lines.append(
                f"{row['batch']:>6} {row['baseline_ms']:>10.3f} "
                f"{row['null_sink_ms']:>10.3f} {row['recording_ms']:>10.3f} "
                f"{row['null_overhead_pct']:>8.1f}% "
                f"{row['recording_overhead_pct']:>8.1f}%"
            )
        top = entry["results"][-1]
        if not smoke and top["null_overhead_pct"] > MAX_NULL_OVERHEAD_PCT:
            ok = False
            lines.append(
                f"  FAIL: null-sink overhead {top['null_overhead_pct']:.1f}% "
                f"exceeds the {MAX_NULL_OVERHEAD_PCT:.0f}% bound at "
                f"B={top['batch']}"
            )
    serve = data["serve"]
    lines.append(
        f"\nserving path (max_batch={serve['max_batch']}, "
        f"workers={serve['workers'] or 'inline'}, "
        f"{serve['requests']} saturating requests, best of "
        f"{serve['sweeps']} interleaved sweeps):"
    )
    lines.append(
        f"  untraced {serve['untraced_rps']:>10,.0f} req/s   "
        f"traced {serve['traced_rps']:>10,.0f} req/s   "
        f"overhead {serve['traced_overhead_pct']:>5.1f}%"
    )
    if not smoke and serve["traced_overhead_pct"] > MAX_NULL_OVERHEAD_PCT:
        ok = False
        lines.append(
            f"  FAIL: request-tracing overhead "
            f"{serve['traced_overhead_pct']:.1f}% exceeds the "
            f"{MAX_NULL_OVERHEAD_PCT:.0f}% bound at saturation"
        )

    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: the disabled path adds one identity check, one module "
        "flag read, and one counter per run — constant per batch, so its "
        "relative cost shrinks as B grows."
    )
    return "\n".join(lines), ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small batches, fewer repeats (CI quick mode; no pass/fail)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    text, ok = report(smoke=args.smoke, artifact_path=args.json)
    print(text)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
