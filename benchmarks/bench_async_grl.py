"""§V.B — clocked vs delay-based (asynchronous) GRL.

The paper proposes clocked shift registers for delays but notes the more
direct alternative of physical delays, which "would have to account for
individual gate latencies".  This bench makes both points quantitative:

* with ideal (zero-latency) gates the asynchronous circuit reproduces the
  algebra exactly, with no flip-flops and no clock,
* with nonzero gate latencies, outputs skew in proportion to logic depth
  — the reason the clocked formulation quantizes time to cycles covering
  all gate delays.
"""

import random

from repro.core.function import enumerate_domain
from repro.core.synthesis import synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.core.value import INF, Infinity
from repro.network.simulator import evaluate
from repro.racelogic.asynchronous import compile_async, run_async
from repro.racelogic.compile import GRLExecutor


def report() -> str:
    lines = ["§V.B — clocked vs asynchronous GRL"]
    net = synthesize(FIG7_TABLE)
    clocked = GRLExecutor(net)
    ideal = compile_async(net, gate_delay=0)

    mismatches = 0
    for vec in enumerate_domain(3, 4):
        bound = dict(zip(net.input_names, vec))
        want = evaluate(net, bound)
        if run_async(ideal, bound).outputs != want:
            mismatches += 1
    lines.append(
        f"\nideal async (no clock, no flip-flops): {mismatches} mismatches "
        f"vs the algebra over window 4"
    )
    lines.append(
        f"hardware: clocked uses {clocked.circuit.flipflop_count} DFFs; "
        f"async uses {ideal.counts_by_kind().get('delay', 0)} delay "
        f"elements totaling {ideal.total_designed_delay} units"
    )

    lines.append(f"\ngate-latency sensitivity (Fig. 7 network, window-3 inputs):")
    lines.append(f"{'gate delay':>11} {'exact outputs':>14} {'mean skew':>10}")
    vectors = [
        vec for vec in enumerate_domain(3, 3)
        if any(not isinstance(v, Infinity) for v in vec)
    ]
    for gate_delay in (0, 1, 2):
        skewed = compile_async(net, gate_delay=gate_delay)
        exact = 0
        skews = []
        for vec in vectors:
            bound = dict(zip(net.input_names, vec))
            want = evaluate(net, bound)["y"]
            got = run_async(skewed, bound).outputs["y"]
            if got == want:
                exact += 1
            if not isinstance(want, Infinity) and not isinstance(got, Infinity):
                skews.append(abs(int(got) - int(want)))
        mean_skew = sum(skews) / len(skews) if skews else 0.0
        lines.append(
            f"{gate_delay:>11} {exact:>8}/{len(vectors):<5} {mean_skew:>10.2f}"
        )
    lines.append(
        "\nshape: exact at zero latency; accuracy degrades and timing "
        "skews grow with gate latency — the paper's stated reason the "
        "clocked form quantizes unit time to cover all gate delays."
    )
    return "\n".join(lines)


def bench_async_simulation(benchmark):
    net = synthesize(FIG7_TABLE)
    circuit = compile_async(net)
    bound = dict(zip(net.input_names, (0, 1, 2)))
    want = evaluate(net, bound)
    assert benchmark(lambda: run_async(circuit, bound).outputs) == want


def bench_clocked_vs_async_speed(benchmark):
    # Event-driven async visits only event times; the clocked simulator
    # sweeps every cycle. Time the async side (the clocked side is timed
    # in bench_fig16_grl).
    table = NormalizedTable.random(3, window=3, n_rows=10, rng=random.Random(3))
    net = synthesize(table)
    circuit = compile_async(net)
    bound = dict(zip(net.input_names, (0, 2, 1)))
    result = benchmark(run_async, circuit, bound)
    assert result.outputs == evaluate(net, bound)


if __name__ == "__main__":
    print(report())
