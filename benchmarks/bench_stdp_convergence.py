"""§II.A / §IV.B — STDP convergence and the quantization claim.

Regenerates two learning results the paper leans on:

* STDP convergence (Guyonneau/Masquelier): after unsupervised training on
  noisy presentations of fixed patterns, neurons fire *earlier* on
  learned patterns than on novel ones, and distinct neurons claim
  distinct patterns — comparing the classic pairwise rule against the
  first-spike rule (the ablation DESIGN.md calls out);
* the Pfeil et al. weight-resolution claim: ~4 bits of synaptic weight
  suffice (WTA winner agreement with an 8-bit reference).
"""

import random

import numpy as np

from repro.apps.datasets import embedded_patterns
from repro.coding.volley import Volley
from repro.core.value import Infinity
from repro.learning.quantize import compare_quantized
from repro.learning.stdp import FirstSpikeSTDP, STDPRule, STDPTrainer
from repro.neuron.column import Column
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.step(amplitude=1, width=8)


def _convergence(rule, seed):
    bases, data = embedded_patterns(
        n_lines=24, n_patterns=3, presentations=60, active_lines=10,
        jitter=1, dropout=0.05, noise_lines=1, seed=seed,
    )
    rng = random.Random(seed)
    weights = np.array(
        [[rng.randint(1, 3) for _ in range(24)] for _ in range(6)]
    )
    column = Column(weights, threshold=8, base_response=BASE)
    trainer = STDPTrainer(column, rule, rng=random.Random(seed + 1))
    trainer.train([item.volley for item in data], epochs=3)
    # Which neurons respond first to each base pattern?  Several neurons
    # may tie (redundant coverage); what matters is that every pattern
    # gets a response and different patterns get different responders.
    from repro.neuron.wta import winners

    winner_sets = [frozenset(winners(column.excitation(b))) for b in bases]
    responded = sum(1 for s in winner_sets if s)
    distinct = len({s for s in winner_sets if s})
    # Early-firing check: latency on learned vs novel patterns.
    novel, _ = embedded_patterns(
        n_lines=24, n_patterns=1, presentations=1, active_lines=10, seed=seed + 500,
    )
    learned_latency = []
    novel_latency = []
    for base in bases:
        t = min(
            (x for x in column.excitation(base) if not isinstance(x, Infinity)),
            default=None,
        )
        if t is not None:
            learned_latency.append(t)
    t = min(
        (x for x in column.excitation(novel[0]) if not isinstance(x, Infinity)),
        default=None,
    )
    if t is not None:
        novel_latency.append(t)
    return responded, distinct, learned_latency, novel_latency


def report() -> str:
    lines = ["STDP convergence (embedded-pattern workload, 3 patterns)"]
    lines.append(
        f"\n{'rule':<22} {'responded':>10} {'distinct':>9} "
        f"{'learned latency':>16} {'novel latency':>14}"
    )
    for label, rule in [
        ("pairwise STDP", STDPRule(a_plus=2, a_minus=1)),
        ("first-spike STDP", FirstSpikeSTDP(a_plus=1, a_minus=1)),
    ]:
        responded, distinct, learned, novel = _convergence(rule, seed=2)
        learned_str = f"{sum(learned) / len(learned):.1f}" if learned else "-"
        novel_str = f"{sum(novel) / len(novel):.1f}" if novel else "silent"
        lines.append(
            f"{label:<22} {responded:>8}/3 {distinct:>7}/3 "
            f"{learned_str:>16} {novel_str:>14}"
        )
    lines.append(
        "\nshape: every pattern elicits a response, different patterns "
        "from different neuron groups; learned patterns fire earlier than "
        "novel ones — the §II.A story."
    )

    lines.append("\nweight resolution (Pfeil et al. claim — WTA winner agreement vs 8-bit):")
    rng = np.random.default_rng(0)
    reference = rng.random((6, 24))
    volley_rng = random.Random(1)
    volleys = [
        Volley([volley_rng.randint(0, 7) for _ in range(24)]) for _ in range(40)
    ]
    lines.append(f"{'bits':>5} {'winner agreement':>17} {'mean |dt|':>10}")
    for bits in (1, 2, 3, 4, 6, 8):
        quant = compare_quantized(
            reference, volleys, bits=bits, threshold_fraction=0.35
        )
        lines.append(
            f"{bits:>5} {quant.winner_agreement:>17.1%} "
            f"{quant.mean_time_error:>10.2f}"
        )
    lines.append(
        "\nshape: agreement saturates by ~4 bits — higher weight resolution "
        "buys nothing at spike-time resolution, matching Pfeil et al."
    )
    return "\n".join(lines)


def bench_stdp_training_epoch(benchmark):
    _, data = embedded_patterns(
        n_lines=24, n_patterns=3, presentations=30, active_lines=10, seed=4
    )
    volleys = [item.volley for item in data]
    rng = random.Random(4)
    weights = np.array(
        [[rng.randint(1, 3) for _ in range(24)] for _ in range(6)]
    )

    def train():
        column = Column(weights.copy(), threshold=8, base_response=BASE)
        trainer = STDPTrainer(column, STDPRule(), rng=random.Random(5))
        trainer.train(volleys, epochs=1)
        return trainer.steps_taken

    assert benchmark(train) > 0


def bench_quantization_comparison(benchmark):
    rng = np.random.default_rng(1)
    reference = rng.random((4, 16))
    volley_rng = random.Random(2)
    volleys = [
        Volley([volley_rng.randint(0, 7) for _ in range(16)]) for _ in range(20)
    ]
    result = benchmark(
        compare_quantized, reference, volleys, bits=4, threshold_fraction=0.35
    )
    assert result.volleys_tested == 20


if __name__ == "__main__":
    print(report())
