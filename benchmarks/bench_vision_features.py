"""§II.C — emergent orientation selectivity (Masquelier/Thorpe-style).

The flagship qualitative result of the STDP-TNN systems the paper
surveys: oriented receptive fields emerge from unsupervised STDP on
latency-coded images.  Regenerates the experiment on the oriented-bar
workload and reports coverage, selectivity, and receptive-field/stimulus
agreement.
"""

from repro.apps.vision import (
    ORIENTATIONS,
    OrientationExperiment,
    bar_dataset,
)


def report() -> str:
    lines = ["§II.C — emergent orientation selectivity"]
    lines.append(
        f"\n{'seed':>5} {'purity':>7} {'orientations claimed':>21} "
        f"{'RF matches pref.':>17}"
    )
    for seed in (0, 3, 7):
        samples = bar_dataset(presentations=80, seed=seed)
        experiment = OrientationExperiment(seed=seed)
        experiment.train(samples, epochs=3)
        fresh = bar_dataset(presentations=40, seed=seed + 999)
        purity, claimed = experiment.selectivity_report(fresh)
        preferences = experiment.preferred_orientations()
        matches = sum(
            1
            for neuron, preferred in preferences.items()
            if experiment.field_orientation_match(neuron) == preferred
        )
        lines.append(
            f"{seed:>5} {purity:>7.1%} {claimed:>14}/{len(ORIENTATIONS)} "
            f"{matches:>12}/{len(preferences)}"
        )
    lines.append(
        "\nshape: all orientations get dedicated neurons (chance purity "
        "25%), and the learned weight vectors *are* oriented bars — the "
        "emergent receptive fields of the surveyed systems, with zero "
        "labels used."
    )
    return "\n".join(lines)


def bench_orientation_training(benchmark):
    samples = bar_dataset(presentations=40, seed=1)

    def train():
        experiment = OrientationExperiment(seed=1)
        experiment.train(samples, epochs=1)
        return experiment

    experiment = benchmark(train)
    assert experiment.column.n_neurons == 8


def bench_orientation_inference(benchmark):
    samples = bar_dataset(presentations=40, seed=1)
    experiment = OrientationExperiment(seed=1)
    experiment.train(samples, epochs=2)
    fresh = bar_dataset(presentations=20, seed=2)
    purity, _ = benchmark(experiment.selectivity_report, fresh)
    assert 0.0 <= purity <= 1.0


if __name__ == "__main__":
    print(report())
