"""Concluding remarks 2–3 — what the algebra deliberately cannot do.

Regenerates the paper's incompleteness observations as measurements:
the canonical counterexamples (negation-like inversion, addition,
multiplication, time reversal) each fail a specific defining property,
and s-t functions are a vanishing fraction of all functions on a window
— "complete only with respect to s-t functions".
"""

import random

from repro.core.completeness import (
    NON_IMPLEMENTABLE,
    classify_function,
    implementable_fraction,
)
from repro.core.synthesis import max_from_min_lt


def report() -> str:
    lines = ["Concluding remarks — incompleteness, made executable"]
    lines.append(f"\n{'function':<16} {'verdict':>10} {'failed property':>16}")
    lines.append(
        f"{'max (Lemma 2)':<16} {'s-t':>10} {'-':>16}"
    )
    for func in NON_IMPLEMENTABLE:
        verdict = classify_function(func)
        lines.append(
            f"{func.name:<16} {'NOT s-t':>10} {verdict.failed_property:>16}"
        )
    assert classify_function(max_from_min_lt().as_function()).is_space_time

    lines.append("\nhow rare are s-t functions among all functions?")
    lines.append(f"{'arity':>6} {'window':>7} {'s-t / total':>16} {'fraction':>9}")
    hits, total = implementable_fraction(arity=1, window=1)
    lines.append(f"{1:>6} {1:>7} {f'{hits} / {total}':>16} {hits / total:>9.3%}")
    hits, total = implementable_fraction(arity=1, window=2)
    lines.append(f"{1:>6} {2:>7} {f'{hits} / {total}':>16} {hits / total:>9.3%}")
    hits, total = implementable_fraction(
        arity=2, window=1, samples=4000, rng=random.Random(0)
    )
    lines.append(
        f"{2:>6} {1:>7} {f'{hits} / {total} (sampled)':>16} {hits / total:>9.3%}"
    )
    lines.append(
        "\nshape: addition/multiplication break invariance, inversion and "
        "anticipation break causality; the implementable fraction "
        "collapses as the window grows — the algebra is complete only "
        "for its own (causal, invariant) world, by design."
    )
    return "\n".join(lines)


def bench_classification(benchmark):
    from repro.core.completeness import ADDITION

    verdict = benchmark(classify_function, ADDITION)
    assert not verdict.is_space_time


def bench_fraction_enumeration(benchmark):
    hits, total = benchmark(implementable_fraction, arity=1, window=1)
    assert 0 < hits < total


if __name__ == "__main__":
    print(report())
