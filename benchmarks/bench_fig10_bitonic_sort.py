"""Fig. 10 — bitonic sorting networks from min/max comparators.

Regenerates comparator counts against the closed form, the ablation
against Batcher's odd-even merge sort, and times construction and
evaluation at growing widths.
"""

import random

from repro.core.value import INF
from repro.network.simulator import evaluate_vector
from repro.neuron.sorting import (
    comparator_count,
    sort_network,
    theoretical_bitonic_comparators,
)


def report() -> str:
    lines = ["Fig. 10 — bitonic sorting networks"]
    lines.append(
        f"\n{'n':>4} {'bitonic cmps':>13} {'theory':>7} {'odd-even cmps':>14} {'depth':>6}"
    )
    for n in (2, 4, 8, 16, 32, 64):
        bitonic = sort_network(n, algorithm="bitonic")
        odd_even = sort_network(n, algorithm="odd-even")
        lines.append(
            f"{n:>4} {comparator_count(bitonic):>13} "
            f"{theoretical_bitonic_comparators(n):>7} "
            f"{comparator_count(odd_even):>14} {bitonic.depth():>6}"
        )
    lines.append(
        "\nshape: bitonic matches (n/4)·log2(n)·(log2(n)+1) exactly; "
        "odd-even merge sort is the cheaper ablation at every width."
    )

    lines.append("\nnon-power-of-two widths (virtual ∞ padding, comparators folded):")
    lines.append(f"{'n':>4} {'bitonic cmps':>13} {'vs full 2^k':>12}")
    for n in (5, 9, 24):
        full = 1 << (n - 1).bit_length()
        lines.append(
            f"{n:>4} {comparator_count(sort_network(n)):>13} "
            f"{comparator_count(sort_network(full)):>12}"
        )
    return "\n".join(lines)


def bench_build_sort32(benchmark):
    net = benchmark(sort_network, 32)
    assert comparator_count(net) == theoretical_bitonic_comparators(32)


def bench_evaluate_sort16(benchmark):
    net = sort_network(16)
    rng = random.Random(0)
    vec = tuple(
        INF if rng.random() < 0.2 else rng.randint(0, 30) for _ in range(16)
    )
    expected = sorted(vec, key=lambda v: float("inf") if v is INF else v)

    def run():
        out = evaluate_vector(net, vec)
        return [out[f"s{i}"] for i in range(16)]

    assert benchmark(run) == expected


def bench_odd_even_vs_bitonic_build(benchmark):
    net = benchmark(sort_network, 32, algorithm="odd-even")
    assert comparator_count(net) < theoretical_bitonic_comparators(32)


if __name__ == "__main__":
    print(report())
