"""Fig. 6 — the primitive functional blocks and the example network.

Regenerates the primitives' semantics tables and the small Fig. 6b
network, verifies the algebraic laws (the §III.D lattice) exhaustively
over a window, and times primitive evaluation and lattice-law checking.
"""

from repro.core.algebra import inc, lt, maximum, minimum
from repro.core.lattice import check_lattice_laws, standard_domain
from repro.core.value import INF
from repro.network.builder import NetworkBuilder
from repro.network.simulator import evaluate_vector


def fig6b_network():
    builder = NetworkBuilder("fig6b")
    a, b, c = builder.inputs("a", "b", "c")
    builder.output("y", builder.lt(builder.inc(builder.min(a, b), 2), c))
    return builder.build()


def report() -> str:
    lines = ["Fig. 6 — s-t primitives"]
    domain = [0, 1, 2, INF]
    lines.append("\n  a  b | min  max  lt(a,b)")
    for a in domain:
        for b in domain:
            lines.append(
                f"{str(a):>3} {str(b):>2} | {str(minimum(a, b)):>3} "
                f"{str(maximum(a, b)):>4} {str(lt(a, b)):>7}"
            )
    lines.append(f"\ninc: inc(2) = {inc(2)}, inc(INF) = {inc(INF)}")

    net = fig6b_network()
    lines.append(f"\nFig. 6b example network: y = lt(min(a,b)+2, c)")
    for vec in [(1, 4, 9), (1, 4, 3), (5, 2, INF)]:
        lines.append(f"  {vec} -> {evaluate_vector(net, vec)['y']}")

    violations = check_lattice_laws(standard_domain(6))
    lines.append(
        f"\nlattice laws over [0..6, INF]: {len(violations)} violations "
        "(bounded distributive lattice confirmed)"
    )
    return "\n".join(lines)


def bench_primitive_evaluation(benchmark):
    domain = [0, 1, 2, 3, 5, 8, INF]

    def sweep():
        total = 0
        for a in domain:
            for b in domain:
                if minimum(a, b) <= maximum(a, b):
                    total += 1
                if lt(a, b) is INF or lt(a, b) == a:
                    total += 1
        return total

    assert benchmark(sweep) == 2 * len(domain) ** 2


def bench_lattice_law_check(benchmark):
    violations = benchmark(check_lattice_laws, standard_domain(6))
    assert violations == []


def bench_fig6b_network_evaluation(benchmark):
    net = fig6b_network()
    result = benchmark(evaluate_vector, net, (1, 4, 9))
    assert result["y"] == 3


if __name__ == "__main__":
    print(report())
