"""Fig. 15 — winner-take-all lateral inhibition.

Regenerates the 1-WTA behaviour and the τ / k parameterizations the paper
describes, verifies network implementations against the behavioral
semantics, and times WTA at growing volley widths.
"""

import random

from repro.core.value import INF
from repro.network.simulator import evaluate_vector
from repro.neuron.wta import (
    build_k_wta_network,
    build_wta_network,
    k_wta,
    k_wta_batch,
    network_wta_batch,
    wta,
    wta_batch,
)


def _net_out(net, vec):
    out = evaluate_vector(net, vec)
    return tuple(out[f"y{i + 1}"] for i in range(len(vec)))


def report() -> str:
    lines = ["Fig. 15 — winner-take-all inhibition"]
    volley = (3, 5, 3, 7, INF)
    lines.append(f"\ninput volley: {volley}")
    for tau in (1, 2, 3):
        net = build_wta_network(5, window=tau)
        lines.append(f"  tau-WTA, tau={tau}: {_net_out(net, volley)}")
    for k in (1, 2, 3):
        net = build_k_wta_network(5, k)
        lines.append(f"  k-WTA,   k={k}  : {_net_out(net, volley)}")

    rng = random.Random(0)
    lines.append("\nnetwork-vs-behavioral agreement (200 random volleys each, batched):")
    for label, builder, behavioral in [
        ("tau=1", lambda: build_wta_network(6, window=1), lambda vs: wta_batch(vs, window=1)),
        ("tau=3", lambda: build_wta_network(6, window=3), lambda vs: wta_batch(vs, window=3)),
        ("k=2", lambda: build_k_wta_network(6, 2), lambda vs: k_wta_batch(vs, 2)),
    ]:
        net = builder()
        volleys = [
            tuple(
                INF if rng.random() < 0.25 else rng.randint(0, 8)
                for _ in range(6)
            )
            for _ in range(200)
        ]
        hits = sum(
            1
            for got, want in zip(network_wta_batch(net, volleys), behavioral(volleys))
            if got == want
        )
        lines.append(f"  {label:<6}: {hits}/200 exact")
    lines.append(
        "\nshape: only the first spikes survive; widening tau or k admits "
        "more, exactly as the min/inc/lt construction dictates."
    )
    return "\n".join(lines)


def bench_wta_network_evaluation(benchmark):
    net = build_wta_network(32, window=1)
    rng = random.Random(1)
    vec = tuple(rng.randint(0, 7) for _ in range(32))
    result = benchmark(_net_out, net, vec)
    assert result == wta(vec, window=1)


def bench_behavioral_wta(benchmark):
    rng = random.Random(2)
    vec = tuple(rng.randint(0, 7) for _ in range(512))
    result = benchmark(wta, vec, window=1)
    assert len(result) == 512


def bench_k_wta_network_build(benchmark):
    net = benchmark(build_k_wta_network, 16, 4)
    assert net.size > 0


if __name__ == "__main__":
    print(report())
