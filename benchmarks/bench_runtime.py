"""Runtime seam overhead: registry dispatch and the result-cache hot path.

PR 9 routed every execution through one seam — ``ENGINES.resolve(policy)``
returning an engine object whose ``evaluate`` the serving stack calls —
and put a ``(fingerprint, volley digest)`` result cache ahead of
admission.  Both moves only pay off if the seam itself is free:

* **dispatch overhead** — ``engine.evaluate(network, volleys)`` through a
  resolved engine vs calling ``evaluate_batch`` / ``evaluate_batch_native``
  directly, at B=1024.  The indirection is one attribute lookup and a
  bound-method call, so the acceptance bound is **≤ 2%** per serving
  engine.
* **hot-hit speedup** — a served request answered from the result cache
  (no queue slot, no micro-batch, no pool round-trip) vs the same request
  dispatched cold through the full stack.  Acceptance: **≥ 10×** lower
  mean latency.

Every timed answer is checked against the direct evaluation first — a
fast wrong answer would be worthless.  Results land in
``BENCH_runtime.json`` at the repo root.

Run standalone::

    python benchmarks/bench_runtime.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.runtime import ENGINES, RESULT_CACHE
from repro.serve.batcher import BatchPolicy
from repro.serve.demo import demo_column, demo_volleys
from repro.serve.pool import InlineWorkerPool
from repro.serve.registry import ModelRegistry
from repro.serve.service import TNNService

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Acceptance bounds (full mode).
MAX_DISPATCH_OVERHEAD_PCT = 2.0
MIN_HOT_HIT_SPEEDUP = 10.0

FULL_BATCH = 1024
SMOKE_BATCH = 128
FULL_REQUESTS = 300
SMOKE_REQUESTS = 60


def _paired_rates(
    direct, dispatch, *, repeats: int, inner: int
) -> tuple[float, float]:
    """Best-of-*repeats* seconds per call for both paths, interleaved.

    The two paths alternate within every repeat so clock-frequency drift
    and cache warmth hit them equally; min over samples is the standard
    noise-resistant estimator (hiccups only ever make a sample slower).
    """
    best_direct = best_dispatch = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            direct()
        best_direct = min(best_direct, (time.perf_counter() - start) / inner)
        start = time.perf_counter()
        for _ in range(inner):
            dispatch()
        best_dispatch = min(
            best_dispatch, (time.perf_counter() - start) / inner
        )
    return best_direct, best_dispatch


def _bench_dispatch(network, volleys, *, repeats: int) -> list[dict]:
    """Direct engine-function calls vs resolved-engine dispatch, per engine."""
    from repro.native import evaluate_batch_native as _evaluate_batch_native
    from repro.network import evaluate_batch as _evaluate_batch

    direct_fns = {
        "int64": lambda: _evaluate_batch(network, volleys),
        "native": lambda: _evaluate_batch_native(network, volleys),
    }

    cells = []
    for key in ENGINES.serving_keys():
        engine = ENGINES.resolve(key)
        direct = direct_fns[key]
        dispatch = lambda: engine.evaluate(network, volleys)  # noqa: E731
        engine.warm(network)  # plans compiled before any timing
        for _ in range(3):  # both paths hot before sampling
            direct()
            dispatch()

        direct_s, dispatch_s = _paired_rates(
            direct, dispatch, repeats=repeats, inner=3
        )
        overhead_pct = (dispatch_s - direct_s) / direct_s * 100.0
        cells.append(
            {
                "engine": key,
                "batch": len(volleys),
                "direct_us": round(direct_s * 1e6, 2),
                "dispatch_us": round(dispatch_s * 1e6, 2),
                "overhead_pct": round(overhead_pct, 3),
            }
        )
    return cells


def _bench_hot_hit(network, *, requests: int) -> dict:
    """Mean served latency: cold full-stack dispatch vs result-cache hits."""
    arity = len(network.input_ids)
    volleys = demo_volleys(arity, requests, seed=3)

    def serve_sweep(result_cache: bool) -> tuple[float, int]:
        RESULT_CACHE.clear()
        registry = ModelRegistry()
        registry.register(network, name="bench")
        service = TNNService(
            registry,
            InlineWorkerPool(registry.documents()),
            policy=BatchPolicy(max_batch=64, max_wait_s=0.0),
            result_cache=result_cache,
        )
        try:
            expected = service.direct("bench", volleys)
            wrong = 0
            # Warm pass: compiles plans; with the cache armed it also
            # fills every (fingerprint, volley) entry.
            for volley, want in zip(volleys, expected):
                if service.submit("bench", volley).result(timeout=60) != want:
                    wrong += 1
            start = time.perf_counter()
            for volley, want in zip(volleys, expected):
                if service.submit("bench", volley).result(timeout=60) != want:
                    wrong += 1
            elapsed = time.perf_counter() - start
        finally:
            service.close()
            RESULT_CACHE.clear()
        return elapsed / requests, wrong

    cold_s, cold_wrong = serve_sweep(result_cache=False)
    hot_s, hot_wrong = serve_sweep(result_cache=True)
    return {
        "requests": requests,
        "cold_us": round(cold_s * 1e6, 2),
        "hot_us": round(hot_s * 1e6, 2),
        "speedup": round(cold_s / hot_s, 2),
        "wrong_answers": cold_wrong + hot_wrong,
    }


def run(*, smoke: bool = False) -> dict:
    network, _ = demo_column(0, smoke=True)
    arity = len(network.input_ids)
    batch = SMOKE_BATCH if smoke else FULL_BATCH
    volleys = demo_volleys(arity, batch, seed=1)

    dispatch = _bench_dispatch(network, volleys, repeats=5 if smoke else 15)
    hot_hit = _bench_hot_hit(
        network, requests=SMOKE_REQUESTS if smoke else FULL_REQUESTS
    )
    return {
        "benchmark": "bench_runtime",
        "smoke": smoke,
        "model": network.name,
        "nodes": len(network.nodes),
        "max_dispatch_overhead_pct": MAX_DISPATCH_OVERHEAD_PCT,
        "min_hot_hit_speedup": MIN_HOT_HIT_SPEEDUP,
        "dispatch": dispatch,
        "hot_hit": hot_hit,
    }


def report(*, smoke: bool = False, artifact_path=ARTIFACT) -> tuple[str, bool]:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    ok = True
    lines = [
        f"Runtime seam overhead — {data['model']} ({data['nodes']} nodes)",
        f"{'engine':>8} {'B':>6} {'direct':>10} {'dispatch':>10} {'overhead':>9}",
    ]
    for cell in data["dispatch"]:
        lines.append(
            f"{cell['engine']:>8} {cell['batch']:>6} "
            f"{cell['direct_us']:>8.1f}µs {cell['dispatch_us']:>8.1f}µs "
            f"{cell['overhead_pct']:>8.2f}%"
        )
        if not smoke and cell["overhead_pct"] > MAX_DISPATCH_OVERHEAD_PCT:
            ok = False
            lines.append(
                f"  FAIL: registry dispatch costs more than "
                f"{MAX_DISPATCH_OVERHEAD_PCT:.0f}% over the direct call"
            )
    hot = data["hot_hit"]
    lines.append(
        f"\nresult-cache hot hit: {hot['cold_us']:.0f}µs cold → "
        f"{hot['hot_us']:.0f}µs hot = {hot['speedup']:.1f}× "
        f"({hot['requests']} requests)"
    )
    if hot["wrong_answers"]:
        ok = False
        lines.append("  FAIL: served answers diverged from direct evaluation")
    if not smoke and hot["speedup"] < MIN_HOT_HIT_SPEEDUP:
        ok = False
        lines.append(
            f"  FAIL: below the {MIN_HOT_HIT_SPEEDUP:.0f}× acceptance bound"
        )
    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: the registry seam adds one attribute lookup and a bound "
        "method call in front of the same compiled kernel, so dispatch is "
        "free at batch sizes that matter; a result-cache hit skips the "
        "micro-batcher and the worker round-trip entirely, leaving only "
        "validation and digest cost."
    )
    return "\n".join(lines), ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small batch and request count (CI quick mode; no pass/fail)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    text, ok = report(smoke=args.smoke, artifact_path=args.json)
    print(text)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
