"""Fig. 5 / §III.A — volley coding and its efficiency trade-off.

Regenerates the communication analysis: spikes per n bits approaches 1/n
as resolution grows, while message time grows as 2^n — the reason the
paper targets 3–4-bit data.  Also shows the sparse-coding effect.
"""

import random

from repro.coding.metrics import coding_efficiency, mean_spikes_per_bit
from repro.coding.volley import FIG5_VOLLEY, Volley
from repro.core.value import INF


def _random_volleys(n_lines, count, sparsity, rng):
    volleys = []
    for _ in range(count):
        times = [
            INF if rng.random() < sparsity else rng.randint(0, 7)
            for _ in range(n_lines)
        ]
        volleys.append(Volley(times))
    return volleys


def report() -> str:
    lines = ["Fig. 5 — spike volley coding"]
    lines.append(f"\nthe paper's example volley: {FIG5_VOLLEY} = vector {FIG5_VOLLEY.decode()}")

    lines.append(f"\n{'bits n':>7} {'msg time 2^n':>13} {'bits/volley':>12} {'spikes/bit':>11}")
    dense = Volley(list(range(8)))  # 8 lines, all spiking
    for bits in range(1, 9):
        eff = coding_efficiency(dense, bits)
        lines.append(
            f"{bits:>7} {eff.message_time:>13} {eff.bits:>12.0f} "
            f"{eff.spikes_per_bit:>11.3f}"
        )
    lines.append(
        "\nshape: spikes/bit falls toward 1/n (energy win) while message "
        "time doubles per bit (the exponential cost) — crossing at the "
        "paper's 3-4 bit sweet spot."
    )

    rng = random.Random(0)
    lines.append(f"\nsparsity sweep (32 lines, 3-bit):")
    lines.append(f"{'sparsity':>9} {'mean spikes/volley':>19} {'spikes/bit':>11}")
    for sparsity in (0.0, 0.5, 0.9):
        volleys = _random_volleys(32, 50, sparsity, rng)
        mean_spikes = sum(v.spike_count for v in volleys) / len(volleys)
        lines.append(
            f"{sparsity:>9.1f} {mean_spikes:>19.1f} "
            f"{mean_spikes_per_bit(volleys, 3):>11.3f}"
        )
    lines.append("\nshape: sparse codings cut absolute spike counts proportionally.")
    return "\n".join(lines)


def bench_encode_decode_roundtrip(benchmark):
    values = [0, 3, None, 1, 7, None, 2, 5]

    def roundtrip():
        return Volley.from_values(values).decode()

    assert benchmark(roundtrip) == values


def bench_efficiency_analysis(benchmark):
    rng = random.Random(1)
    volleys = _random_volleys(64, 100, 0.5, rng)
    result = benchmark(mean_spikes_per_bit, volleys, 3)
    assert result > 0


if __name__ == "__main__":
    print(report())
