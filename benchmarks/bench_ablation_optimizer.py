"""Ablation — network optimization and table minimization.

DESIGN.md calls out the cost of the minterm canonical form (linear in
rows × arity) as a design choice worth ablating.  This bench measures
the two reducers the library provides on top of raw synthesis:

* structural optimization (CSE, inc fusion, lattice identities) of the
  synthesized network,
* semantic minimization of the table before synthesis,

reporting block counts and compiled-circuit transition counts for each
pipeline, with exact-equivalence verification throughout.
"""

import random

from repro.core.function import enumerate_domain
from repro.core.minimize import minimize
from repro.core.synthesis import synthesize
from repro.core.table import NormalizedTable
from repro.core.value import INF
from repro.network.optimize import optimize
from repro.racelogic.energy import measure_energy


def _pipeline_sizes(table):
    raw = synthesize(table)
    optimized, _ = optimize(raw)
    minimal_table = minimize(table)
    minimal = synthesize(minimal_table)
    both, _ = optimize(minimal)
    return raw, optimized, minimal, both, minimal_table


def _verify(table, nets, window):
    reference = table.as_causal_function()
    for net in nets:
        f = net.as_function()
        for vec in enumerate_domain(table.arity, window):
            if f(*vec) != reference(*vec):
                return False
    return True


def report() -> str:
    lines = ["Ablation — synthesis reducers (blocks / transitions per run)"]
    lines.append(
        f"\n{'rows':>5} {'raw':>6} {'optimized':>10} {'min-table':>10} "
        f"{'both':>6} {'exact?':>7}"
    )
    rng = random.Random(0)
    for n_rows in (6, 12, 24):
        table = NormalizedTable.random(3, window=3, n_rows=n_rows, rng=rng)
        raw, optimized, minimal, both, minimal_table = _pipeline_sizes(table)
        ok = _verify(
            table, [raw, optimized, minimal, both], table.max_entry() + 1
        )
        lines.append(
            f"{len(table):>5} {raw.size:>6} {optimized.size:>10} "
            f"{minimal.size:>10} {both.size:>6} {'yes' if ok else 'NO':>7}"
        )

    table = NormalizedTable.random(3, window=3, n_rows=12, rng=random.Random(7))
    raw, _, _, both, _ = _pipeline_sizes(table)
    inputs = [
        {
            name: (INF if random.Random(i).random() < 0.3 else random.Random(i + 99).randint(0, 3))
            for name in raw.input_names
        }
        for i in range(10)
    ]
    raw_energy = measure_energy(raw, inputs)
    both_energy = measure_energy(both, inputs)
    lines.append(
        f"\ncompiled-circuit transitions/run: raw "
        f"{raw_energy.transitions_per_run:.1f} -> reduced "
        f"{both_energy.transitions_per_run:.1f}"
    )
    lines.append(
        "\nshape: both reducers shrink networks with exactly preserved "
        "semantics; the savings compound and carry through to switching "
        "energy in the compiled circuit."
    )
    return "\n".join(lines)


def bench_optimize_synthesized(benchmark):
    table = NormalizedTable.random(3, window=3, n_rows=16, rng=random.Random(1))
    net = synthesize(table)
    optimized, report_ = benchmark(optimize, net)
    assert report_.after_blocks <= report_.before_blocks


def bench_minimize_table(benchmark):
    table = NormalizedTable.random(3, window=3, n_rows=24, rng=random.Random(2))
    minimal = benchmark(minimize, table)
    assert len(minimal) <= len(table)


if __name__ == "__main__":
    print(report())
