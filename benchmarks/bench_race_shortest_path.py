"""§V — race-logic shortest paths vs Dijkstra.

Regenerates the original race-logic application at growing graph sizes:
distances from racing edge-delayed signals equal Dijkstra's on every DAG,
both denotationally and on the cycle-accurate compiled circuit.  Reports
the hardware cost (flip-flops = total edge weight) and timing crossover
between the software baseline and the two race simulations.
"""

import random

from repro.racelogic.compile import compile_network
from repro.racelogic.shortest_path import (
    build_race_network,
    dijkstra,
    race_shortest_paths,
    race_shortest_paths_digital,
    random_dag,
)


def report() -> str:
    lines = ["§V — race-logic shortest path"]
    lines.append(
        f"\n{'nodes':>6} {'edges':>6} {'match dijkstra?':>16} "
        f"{'flip-flops':>11} {'toggles':>8}"
    )
    for n_nodes in (8, 16, 32, 64):
        graph = random_dag(
            n_nodes, edge_probability=0.3, rng=random.Random(n_nodes)
        )
        reference = dijkstra(graph, 0)
        racing = race_shortest_paths(graph, 0)
        ok = racing == reference
        if n_nodes <= 32:
            digital, toggles = race_shortest_paths_digital(graph, 0)
            ok = ok and digital == reference
        else:
            toggles = "-"
        circuit = compile_network(build_race_network(graph, 0))
        lines.append(
            f"{n_nodes:>6} {graph.edge_count:>6} {'yes' if ok else 'NO':>16} "
            f"{circuit.flipflop_count:>11} {str(toggles):>8}"
        )
    lines.append(
        "\nshape: race logic and Dijkstra agree on every graph; circuit "
        "cost (flip-flops) equals total edge weight, and computation time "
        "equals the longest relevant path — the value IS the time."
    )
    return "\n".join(lines)


def bench_dijkstra_baseline(benchmark):
    graph = random_dag(64, edge_probability=0.25, rng=random.Random(1))
    distances = benchmark(dijkstra, graph, 0)
    assert distances[0] == 0


def bench_race_network_evaluation(benchmark):
    graph = random_dag(64, edge_probability=0.25, rng=random.Random(1))
    reference = dijkstra(graph, 0)
    distances = benchmark(race_shortest_paths, graph, 0)
    assert distances == reference


def bench_race_digital_simulation(benchmark):
    graph = random_dag(16, edge_probability=0.3, rng=random.Random(2))
    reference = dijkstra(graph, 0)

    def run():
        distances, _ = race_shortest_paths_digital(graph, 0)
        return distances

    assert benchmark(run) == reference


def bench_build_race_network(benchmark):
    graph = random_dag(64, edge_probability=0.25, rng=random.Random(3))
    net = benchmark(build_race_network, graph, 0)
    assert len(net.outputs) == 64


if __name__ == "__main__":
    print(report())
