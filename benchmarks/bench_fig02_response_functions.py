"""Fig. 2 — response functions: biexponential and piecewise-linear.

Regenerates the two response-function shapes of the paper's Fig. 2 (as
value tables), verifies their defining constraints (finite settle time,
bounded range), and times response evaluation and step decomposition.
"""

from repro.neuron.response import ResponseFunction


def report() -> str:
    lines = ["Fig. 2 — response functions (discretized)"]
    biexp = ResponseFunction.biexponential(amplitude=5, t_max=12)
    pwl = ResponseFunction.piecewise_linear(amplitude=4, rise=2, fall=6)
    lines.append(f"\n(a) biexponential, A=5, t_max=12")
    lines.append(f"    R(t) = {list(biexp.values)}")
    lines.append(f"    peak {biexp.r_max} at t={biexp.values.index(biexp.r_max)}, settles to {biexp.final_value}")
    lines.append(f"\n(b) piecewise linear (Maass), A=4, rise=2, fall=6")
    lines.append(f"    R(t) = {list(pwl.values)}")
    train = biexp.steps()
    lines.append(f"\nstep decomposition of (a): ups {train.ups}, downs {train.downs}")
    lines.append("\nshape check: both rise to a single peak and decay to 0 — matches the paper's Fig. 2.")
    return "\n".join(lines)


def bench_biexponential_construction(benchmark):
    result = benchmark(
        ResponseFunction.biexponential, amplitude=5, t_max=12
    )
    assert result.r_max == 5
    assert result.final_value == 0


def bench_step_decomposition(benchmark):
    biexp = ResponseFunction.biexponential(amplitude=7, t_max=16)
    train = benchmark(biexp.steps)
    # Decomposition must reconstruct the response exactly.
    rebuilt = ResponseFunction.from_steps(train)
    assert all(rebuilt(t) == biexp(t) for t in range(biexp.t_max + 1))


def bench_response_evaluation(benchmark):
    pwl = ResponseFunction.piecewise_linear(amplitude=4, rise=2, fall=6)

    def evaluate_many():
        return sum(pwl(t) for t in range(-5, 50))

    total = benchmark(evaluate_many)
    assert total > 0


if __name__ == "__main__":
    print(report())
