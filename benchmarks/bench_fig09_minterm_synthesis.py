"""Fig. 9 / Theorem 1 — minterm canonical form synthesis.

Regenerates the paper's worked example (synthesizing the Fig. 7 table and
applying input [0,1,2]), verifies synthesized networks against the
causal table semantics over exhaustive windows, and measures how network
size scales with rows × arity (the temporal analogue of two-level logic
cost).
"""

import random

from repro.core.function import enumerate_domain
from repro.core.synthesis import synthesis_cost, synthesize
from repro.core.table import FIG7_TABLE, NormalizedTable
from repro.network.compile_plan import decode_time, evaluate_batch
from repro.network.simulator import evaluate_vector


def _batched_outputs(network, vectors):
    """Network outputs over a whole domain in one compiled call."""
    matrix = evaluate_batch(network, vectors)
    return [decode_time(v) for v in matrix[:, 0].tolist()]


def report() -> str:
    lines = ["Fig. 9 / Theorem 1 — minterm canonical form"]
    net = synthesize(FIG7_TABLE)
    lines.append(f"\nsynthesized Fig. 7 table: {net.counts_by_kind()}")
    lines.append("paper's walkthrough, input [0, 1, 2]:")
    lines.append(f"  output = {evaluate_vector(net, (0, 1, 2))['y']} (expected 3)")
    lines.append(f"  shifted input [3, 4, 5] -> {evaluate_vector(net, (3, 4, 5))['y']} (expected 6)")

    vectors = list(enumerate_domain(3, 5))
    outs = _batched_outputs(net, vectors)
    mismatches = sum(
        1
        for vec, out in zip(vectors, outs)
        if out != FIG7_TABLE.evaluate_causal(vec)
    )
    lines.append(f"  exhaustive window-5 check: {mismatches} mismatches (batched)")

    rng = random.Random(0)
    lines.append(f"\nscaling (random canonical tables):")
    lines.append(f"{'arity':>6} {'rows':>5} {'blocks':>7} {'lt':>4} {'inc':>5} {'exact?':>7}")
    for arity, rows in [(2, 4), (3, 8), (4, 16), (3, 32)]:
        table = NormalizedTable.random(arity, window=3, n_rows=rows, rng=rng)
        network = synthesize(table)
        vectors = list(enumerate_domain(arity, table.max_entry() + 1))
        ok = all(
            out == table.evaluate_causal(vec)
            for vec, out in zip(vectors, _batched_outputs(network, vectors))
        )
        kinds = network.counts_by_kind()
        lines.append(
            f"{arity:>6} {len(table):>5} {network.size:>7} "
            f"{kinds.get('lt', 0):>4} {kinds.get('inc', 0):>5} "
            f"{'yes' if ok else 'NO':>7}"
        )
    lines.append(
        "\nshape: blocks grow linearly in rows x arity; every synthesized "
        "network reproduces its table exactly (Theorem 1)."
    )
    return "\n".join(lines)


def bench_synthesize_fig7(benchmark):
    net = benchmark(synthesize, FIG7_TABLE)
    assert net.size > 0


def bench_synthesize_large_table(benchmark):
    table = NormalizedTable.random(4, window=4, n_rows=40, rng=random.Random(3))
    net = benchmark(synthesize, table)
    predicted = synthesis_cost(table)
    assert net.counts_by_kind().get("lt", 0) == predicted["lt"]


def bench_synthesized_network_evaluation(benchmark):
    table = NormalizedTable.random(3, window=3, n_rows=16, rng=random.Random(4))
    f = synthesize(table).as_function()
    result = benchmark(f, 1, 0, 2)
    assert result == table.evaluate_causal((1, 0, 2))


def bench_pure_primitive_synthesis(benchmark):
    # The strict min/lt/inc-only variant (max expanded via Lemma 2).
    table = NormalizedTable.random(3, window=3, n_rows=8, rng=random.Random(5))
    net = benchmark(synthesize, table, use_max_primitive=False)
    assert net.counts_by_kind().get("max", 0) == 0


if __name__ == "__main__":
    print(report())
