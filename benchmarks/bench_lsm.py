"""Extension — liquid state machines (§II.C's recurrent cousins).

The paper: LSMs share TNN principles but add feedback; "the theory in
this paper may potentially be extended to include them".  This bench runs
the extension and shows what the recurrence buys: classifying volley
*sequences*, which a feedforward readout of any single volley cannot do
when the classes share their final volley distribution.
"""

import random

import numpy as np

from repro.apps.liquid import (
    LiquidStateMachine,
    Readout,
    sequence_classification_experiment,
)
from repro.coding.volley import Volley


def _order_task(seed, *, train_per_class=14, test_per_class=7, jitter=1):
    """Two classes = the same two volleys in opposite orders, followed by
    a *common* final volley.

    Because both classes end on the same volley (distribution), any
    memoryless classifier of the final volley is at chance by
    construction; only state that spans rounds can separate A,B,C from
    B,A,C.
    """
    rng = random.Random(seed)
    step_a = [rng.randint(0, 5) for _ in range(6)]
    step_b = [rng.randint(0, 5) for _ in range(6)]
    step_c = [rng.randint(0, 5) for _ in range(6)]
    lsm = LiquidStateMachine(6, 24, seed=seed)

    def present(order):
        steps = (
            [step_a, step_b, step_c] if order == 0 else [step_b, step_a, step_c]
        )
        return [
            Volley([max(0, t + rng.randint(-jitter, jitter)) for t in step])
            for step in steps
        ]

    def dataset(count):
        xs, ys = [], []
        for label in (0, 1):
            for _ in range(count):
                xs.append(lsm.features(present(label)))
                ys.append(label)
        return xs, ys

    train_x, train_y = dataset(train_per_class)
    test_x, test_y = dataset(test_per_class)
    readout = Readout(len(train_x[0]), 2, seed=seed)
    readout.train(train_x, train_y, epochs=40, rng=random.Random(seed + 1))

    def accuracy(xs, ys):
        return sum(
            1 for x, y in zip(xs, ys) if readout.predict(x) == y
        ) / len(ys)

    # Memoryless baseline: the same readout trained on final-volley
    # features only (no reservoir, no history).
    def volley_features(presentation):
        final = presentation[-1]
        return np.array([1.0 / (1.0 + int(t)) for t in final])

    base_train = [volley_features(present(label)) for label in (0, 1) for _ in range(train_per_class)]
    base_train_y = [label for label in (0, 1) for _ in range(train_per_class)]
    base_test = [volley_features(present(label)) for label in (0, 1) for _ in range(test_per_class)]
    base_test_y = [label for label in (0, 1) for _ in range(test_per_class)]
    baseline = Readout(6, 2, seed=seed)
    baseline.train(base_train, base_train_y, epochs=40, rng=random.Random(seed + 2))
    base_acc = sum(
        1 for x, y in zip(base_test, base_test_y) if baseline.predict(x) == y
    ) / len(base_test_y)

    return accuracy(test_x, test_y), base_acc


def report() -> str:
    lines = ["Extension — liquid state machine"]
    lines.append("\nvolley-sequence classification (3 classes, chance 33%):")
    lines.append(f"{'seed':>5} {'train acc':>10} {'test acc':>9}")
    for seed in (1, 5, 9):
        train, test = sequence_classification_experiment(seed=seed)
        lines.append(f"{seed:>5} {train:>10.0%} {test:>9.0%}")

    lines.append("\norder-discrimination task (A,B vs B,A — chance 50%):")
    lines.append(f"{'seed':>5} {'LSM test acc':>13} {'memoryless baseline':>20}")
    for seed in (2, 6):
        lsm_acc, base_acc = _order_task(seed)
        lines.append(f"{seed:>5} {lsm_acc:>13.0%} {base_acc:>20.0%}")
    lines.append(
        "\nshape: the reservoir's recurrent state separates sequences the "
        "memoryless (single-volley) readout cannot — the capability the "
        "paper's feedforward model lacks and its §II.C note anticipates."
    )
    return "\n".join(lines)


def bench_lsm_run(benchmark):
    lsm = LiquidStateMachine(6, 24, seed=1)
    rng = random.Random(1)
    stream = [
        Volley([rng.randint(0, 5) for _ in range(6)]) for _ in range(4)
    ]
    trace = benchmark(lsm.run, stream)
    assert len(trace) == 4


def bench_lsm_experiment(benchmark):
    train, test = benchmark.pedantic(
        sequence_classification_experiment,
        kwargs=dict(seed=7, train_per_class=6, test_per_class=3),
        iterations=1,
        rounds=3,
    )
    assert train > 0.5


if __name__ == "__main__":
    print(report())
