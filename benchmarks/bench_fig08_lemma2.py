"""Fig. 8 / Lemma 2 — max from min and lt only.

Regenerates the three-case analysis of the paper's proof figure, verifies
the construction exhaustively over growing windows, and times both the
construction and its evaluation.
"""

from repro.core.algebra import maximum
from repro.core.function import enumerate_domain
from repro.core.synthesis import max_from_min_lt
from repro.core.value import INF
from repro.network.simulator import evaluate_vector


def report() -> str:
    lines = ["Fig. 8 / Lemma 2 — max(a, b) from min and lt"]
    net = max_from_min_lt()
    lines.append(f"\nconstruction: {net.counts_by_kind()} "
                 "(no max primitive, no inc)")
    lines.append("\nthe proof's three cases:")
    for label, (a, b) in [
        ("case 1: a < b", (2, 5)),
        ("case 2: a = b", (4, 4)),
        ("case 3: a > b", (7, 3)),
    ]:
        got = evaluate_vector(net, (a, b))["c"]
        lines.append(f"  {label}: max({a},{b}) = {got}")
    for label, (a, b) in [
        ("absent a", (INF, 3)),
        ("absent b", (3, INF)),
        ("both absent", (INF, INF)),
    ]:
        got = evaluate_vector(net, (a, b))["c"]
        lines.append(f"  {label}: max({a},{b}) = {got}")

    f = net.as_function()
    for window in (4, 8, 16):
        checked = mismatched = 0
        for vec in enumerate_domain(2, window):
            checked += 1
            if f(*vec) != maximum(*vec):
                mismatched += 1
        lines.append(
            f"\nexhaustive over [0..{window}, INF]^2: "
            f"{checked} vectors, {mismatched} mismatches"
        )
    lines.append("\nshape: 0 mismatches at every window — Lemma 2 verified.")
    return "\n".join(lines)


def bench_lemma2_exhaustive_window8(benchmark):
    f = max_from_min_lt().as_function()

    def verify():
        return all(
            f(a, b) == maximum(a, b) for a, b in enumerate_domain(2, 8)
        )

    assert benchmark(verify)


def bench_lemma2_single_evaluation(benchmark):
    f = max_from_min_lt().as_function()
    assert benchmark(f, 3, 7) == 7


def bench_lemma2_construction(benchmark):
    net = benchmark(max_from_min_lt)
    assert net.size == 5


if __name__ == "__main__":
    print(report())
