"""Per-kernel batched throughput for the s-t kernel stdlib.

Every registry kernel (:data:`repro.kernels.KERNELS`) plus one composed
three-stage chain is timed through both batch engines — the compiled
int64 instruction stream (:mod:`repro.network.compile_plan`) and the
fused native arena backend (:mod:`repro.native`) — across a batch-size
ladder.  Outputs are checked for exact agreement before any timing.

The acceptance property (asserted in full mode) is **monotone-or-flat
throughput**: for every kernel and engine, volleys/sec at the largest
batch must stay within 25% of the best batch size on the ladder — i.e.
batching never collapses (the B=1024 cliff class of regression the
batched-eval benchmark pinned for the compiled engine, now held for the
whole kernel library on both engines).

Results land in ``BENCH_kernels.json`` (repo root).

Run standalone::

    python benchmarks/bench_kernels.py [--smoke] [--json PATH]

``--smoke`` shrinks the ladder and repeats for CI and skips the
acceptance assertion (timing noise on shared runners).
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import time
from pathlib import Path

import numpy as np

from repro.kernels import KERNELS, build_kernel, compose, interval_shift
from repro.native import compile_native
from repro.network.compile_plan import compile_plan, encode_volleys
from repro.network.generate import random_volley

BATCHES = (64, 256, 1024)
SMOKE_BATCHES = (16, 64)

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: At the largest batch, throughput must stay within this fraction of
#: the ladder's best — "monotone or flat", with headroom for noise.
FLATNESS = 0.75


def composed_chain():
    """A three-stage shift chain — the composition overhead probe."""
    second = interval_shift(2).renamed(
        inputs={"lo": "lo_out", "hi": "hi_out"},
        outputs={"lo_out": "lo2", "hi_out": "hi2"},
        name="mid",
    )
    third = interval_shift(3).renamed(
        inputs={"lo": "lo2", "hi": "hi2"},
        outputs={"lo_out": "lo3", "hi_out": "hi3"},
        name="tail",
    )
    return compose(interval_shift(1), second, third, name="shift-chain")


def bench_models():
    """name -> Network: every registry kernel plus the composed chain."""
    models = {
        name: build_kernel(name).network() for name in KERNELS
    }
    models["composed-chain(3)"] = composed_chain().network()
    return models


def _median_of(repeats, fn):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def measure(network, *, batches, repeats, seed=0):
    """Throughput ladder for one kernel: compiled and native engines."""
    rng = random.Random(seed)
    arity = len(network.input_names)
    plan = compile_plan(network)
    native = compile_native(network).warm()
    ladder = {"compiled": [], "native": []}
    for batch in batches:
        matrix = encode_volleys(
            [
                random_volley(arity, rng=rng, silence_probability=0.25)
                for _ in range(batch)
            ]
        )
        want = plan.outputs(matrix)
        got = native.outputs(matrix)
        np.testing.assert_array_equal(
            got, want, err_msg=f"native != compiled at B={batch}"
        )
        t_plan = _median_of(repeats, lambda: plan.outputs(matrix))
        t_native = _median_of(repeats, lambda: native.outputs(matrix))
        ladder["compiled"].append(batch / t_plan)
        ladder["native"].append(batch / t_native)
    return {
        "batches": list(batches),
        "compiled_vps": ladder["compiled"],
        "native_vps": ladder["native"],
    }


def run(*, smoke=False, repeats=None):
    batches = SMOKE_BATCHES if smoke else BATCHES
    repeats = repeats or (3 if smoke else 11)
    kernels = {}
    for name, network in bench_models().items():
        kernels[name] = {
            "nodes": len(network.nodes),
            "arity": len(network.input_names),
            "results": measure(network, batches=batches, repeats=repeats),
        }
    return {
        "benchmark": "bench_kernels",
        "smoke": smoke,
        "batches": list(batches),
        "kernels": kernels,
    }


def flatness_violations(data):
    """(kernel, engine, ratio) rows breaking the monotone-or-flat bar."""
    violations = []
    for name, entry in data["kernels"].items():
        for engine in ("compiled", "native"):
            vps = entry["results"][f"{engine}_vps"]
            ratio = vps[-1] / max(vps)
            if ratio < FLATNESS:
                violations.append((name, engine, ratio))
    return violations


def report(*, smoke=False, artifact_path=ARTIFACT) -> str:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    largest = data["batches"][-1]
    lines = [
        "s-t kernel stdlib — batched throughput (volleys/sec), "
        f"ladder {data['batches']}"
    ]
    lines.append(
        f"{'kernel':<22} {'nodes':>5} {'compiled@B=' + str(largest):>16} "
        f"{'native@B=' + str(largest):>16} {'flat(c)':>8} {'flat(n)':>8}"
    )
    for name, entry in data["kernels"].items():
        row = entry["results"]
        flat_c = row["compiled_vps"][-1] / max(row["compiled_vps"])
        flat_n = row["native_vps"][-1] / max(row["native_vps"])
        lines.append(
            f"{name:<22} {entry['nodes']:>5} "
            f"{row['compiled_vps'][-1]:>16.0f} "
            f"{row['native_vps'][-1]:>16.0f} "
            f"{flat_c:>7.2f} {flat_n:>8.2f}"
        )

    if not smoke:
        violations = flatness_violations(data)
        if violations:
            detail = "; ".join(
                f"{name}/{engine} {ratio:.2f}"
                for name, engine, ratio in violations
            )
            lines.append(
                f"\nMONOTONE-OR-FLAT VIOLATION(S) (< {FLATNESS}): {detail}"
            )
        else:
            lines.append(
                f"\nmonotone-or-flat holds: every kernel x engine keeps "
                f">= {FLATNESS:.0%} of its best ladder throughput at "
                f"B={largest}"
            )
        assert not violations, f"throughput collapsed with batch: {violations}"
    lines.append(f"\nartifact: {artifact_path}")
    lines.append(
        "\nshape: stdlib kernels are tiny (2-13 blocks), so per-call "
        "dispatch dominates at small batches and both engines gain "
        "roughly linearly until the arena/instruction work saturates; "
        "the accumulator's k-subset min/max lattice is the largest and "
        "benefits most from fused reductions."
    )
    return "\n".join(lines)


# -- pytest-benchmark hooks ---------------------------------------------------

def bench_kernels_accumulator_b1024(benchmark):
    network = bench_models()["accumulator"]
    native = compile_native(network).warm()
    rng = random.Random(0)
    matrix = encode_volleys(
        [random_volley(4, rng=rng) for _ in range(1024)]
    )
    out = benchmark(native.outputs, matrix)
    assert out.shape == (1024, 1)


def bench_kernels_acceptance(benchmark, show):
    # Monotone-or-flat throughput for every kernel on both engines.
    data = benchmark.pedantic(run, kwargs={"repeats": 7}, rounds=1, iterations=1)
    violations = flatness_violations(data)
    show(
        f"kernels x engines checked: {2 * len(data['kernels'])}, "
        f"violations: {len(violations)}"
    )
    assert not violations, f"throughput collapsed with batch: {violations}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small ladder, fewer repeats, no acceptance assertion (CI)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    print(report(smoke=args.smoke, artifact_path=args.json))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
