"""Fig. 12 — SRM0 neurons from s-t primitives.

Regenerates the equivalence experiment at the heart of §IV: the pure
min/max/lt/inc construction computes exactly the behavioral SRM0 fire
time, across threshold sweeps, leaky vs non-leaky responses (the ablation
DESIGN.md calls out), and random weight vectors.  Times both
implementations.
"""

import random

from repro.core.function import enumerate_domain
from repro.core.value import INF
from repro.network.stats import structure
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import batched_fire_times, build_srm0_network

LEAKY = ResponseFunction.biexponential(amplitude=3, t_max=8)
NON_LEAKY = ResponseFunction.step(amplitude=3, width=8)


def _agreement(neuron, samples=150, seed=0):
    # One compiled batched call for the whole random sweep.
    net = build_srm0_network(neuron)
    rng = random.Random(seed)
    volleys = [
        tuple(
            INF if rng.random() < 0.25 else rng.randint(0, 9)
            for _ in range(neuron.arity)
        )
        for _ in range(samples)
    ]
    net_times = batched_fire_times(net, volleys)
    hits = sum(
        1
        for vec, got in zip(volleys, net_times)
        if got == neuron.fire_time(vec)
    )
    return hits / samples


def report() -> str:
    lines = ["Fig. 12 — SRM0 construction vs behavioral model"]
    lines.append(f"\nthreshold sweep (weights [2, 1], leaky biexponential):")
    lines.append(f"{'theta':>6} {'blocks':>7} {'agreement':>10}")
    for theta in (1, 2, 4, 6, 9):
        neuron = SRM0Neuron.homogeneous(
            2, [2, 1], base_response=LEAKY, threshold=theta
        )
        net = build_srm0_network(neuron)
        vectors = list(enumerate_domain(2, 5))
        exact = all(
            got == neuron.fire_time(vec)
            for vec, got in zip(vectors, batched_fire_times(net, vectors))
        )
        lines.append(
            f"{theta:>6} {net.size:>7} {'100%' if exact else 'FAIL':>10}"
        )

    lines.append(f"\nablation: leaky vs non-leaky responses (weights [2,2,1], θ=5):")
    for label, base in [("leaky biexp", LEAKY), ("non-leaky step", NON_LEAKY)]:
        neuron = SRM0Neuron.homogeneous(
            3, [2, 2, 1], base_response=base, threshold=5
        )
        agreement = _agreement(neuron)
        net = build_srm0_network(neuron)
        stats = structure(net)
        coincident = neuron.fire_time((0, 0, 0))
        dispersed = neuron.fire_time((0, 4, 8))
        lines.append(
            f"  {label:<15} agreement {agreement:.0%}, {stats.n_blocks} blocks, "
            f"fire(coincident)={coincident}, fire(dispersed)={dispersed}"
        )
    lines.append(
        "\nshape: 100% agreement everywhere; the leaky neuron distinguishes "
        "coincident from dispersed volleys (fires late/never on dispersed), "
        "the non-leaky one is more permissive — the classic trade-off."
    )
    return "\n".join(lines)


def bench_behavioral_fire_time(benchmark):
    neuron = SRM0Neuron.homogeneous(
        8, [2, 1, 3, 2, 1, 2, 3, 1], base_response=LEAKY, threshold=10
    )
    result = benchmark(neuron.fire_time, (0, 2, 1, 4, INF, 3, 0, 2))
    assert result is not None


def bench_network_fire_time(benchmark):
    neuron = SRM0Neuron.homogeneous(
        4, [2, 1, 3, 2], base_response=LEAKY, threshold=6
    )
    f = build_srm0_network(neuron).as_function()
    want = neuron.fire_time((0, 2, 1, 4))
    assert benchmark(f, 0, 2, 1, 4) == want


def bench_build_srm0_network(benchmark):
    neuron = SRM0Neuron.homogeneous(
        4, [2, 1, 3, 2], base_response=LEAKY, threshold=6
    )
    net = benchmark(build_srm0_network, neuron)
    assert net.size > 0


if __name__ == "__main__":
    print(report())
