"""Fig. 7 (table) — normalized function tables.

Regenerates the paper's normalize/look-up/shift evaluation walkthrough,
exercises table inference from black-box functions, and times table
evaluation and inference.
"""

import random

from repro.core.table import FIG7_TABLE, NormalizedTable


def report() -> str:
    lines = ["Fig. 7 — normalized function table"]
    lines.append("\n" + FIG7_TABLE.pretty())
    lines.append("\nevaluation walkthrough (the paper's example):")
    lines.append("  input [3, 4, 5] -> normalize (-3) -> [0, 1, 2]")
    lines.append(f"  table[[0, 1, 2]] = 3 -> shift back (+3) -> "
                 f"{FIG7_TABLE.evaluate((3, 4, 5))}")
    lines.append(f"  input [0, 0, 0] (no row) -> {FIG7_TABLE.evaluate((0, 0, 0))}")

    rng = random.Random(0)
    lines.append(f"\ntable inference roundtrip (random canonical tables):")
    lines.append(f"{'arity':>6} {'rows':>5} {'recovered exactly?':>19}")
    for arity in (2, 3):
        table = NormalizedTable.random(arity, window=3, n_rows=6, rng=rng)
        back = NormalizedTable.from_function(
            table.as_function(), window=table.max_entry()
        )
        lines.append(f"{arity:>6} {len(table):>5} {'yes' if back == table else 'NO':>19}")
    return "\n".join(lines)


def bench_table_evaluation(benchmark):
    def evaluate_batch():
        total = 0
        for shift in range(50):
            out = FIG7_TABLE.evaluate((shift, 1 + shift, 2 + shift))
            total += int(out)
        return total

    assert benchmark(evaluate_batch) > 0


def bench_causal_evaluation(benchmark):
    def evaluate_batch():
        results = []
        for x3 in range(20):
            results.append(FIG7_TABLE.evaluate_causal((1, 0, x3)))
        return results

    results = benchmark(evaluate_batch)
    assert results[10] == 2  # late x3 matches the ∞ row


def bench_table_inference(benchmark):
    table = NormalizedTable.random(3, window=3, n_rows=8, rng=random.Random(5))
    func = table.as_function()
    recovered = benchmark(
        NormalizedTable.from_function, func, window=table.max_entry()
    )
    assert recovered == table


if __name__ == "__main__":
    print(report())
