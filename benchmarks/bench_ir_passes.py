"""IR pass pipeline: node reduction and compiled-engine payoff.

The optimizer now lives in :mod:`repro.ir.passes` — one pipeline
(canonicalize, fold-consts, fuse-inc, cse, dce) run once per program and
shared by all four backends through the fingerprint-keyed plan cache.
This report prices that claim on two network families:

* **redundant** — synthesis output that carries deliberate redundancy
  (Theorem 1 minterm forms, SRM0 sorting-network columns): the pipeline
  must shrink them substantially, and ``evaluate_batch`` on the
  pass-optimized program must at least match the legacy
  ``optimize()`` → ``Network`` → compile path (which now wraps the same
  pipeline — the comparison pins the IR plumbing's overhead to zero);
* **minimal** — already-optimal networks the passes cannot improve:
  node counts must not change, and the optimized program must share the
  original's compiled plan (same fingerprint), so ``evaluate_batch``
  cannot slow down.

Per-pass node reductions, batch timings, and the plan-cache record land
in ``BENCH_ir_passes.json`` at the repo root.

Run standalone::

    python benchmarks/bench_ir_passes.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.core.synthesis import synthesize
from repro.core.table import NormalizedTable
from repro.ir import lower, optimize_program
from repro.network import (
    NetworkBuilder,
    clear_plan_cache,
    compile_plan,
    evaluate_batch,
    optimize,
    plan_cache_info,
)
from repro.network.generate import random_volley
from repro.neuron.response import ResponseFunction
from repro.neuron.srm0 import SRM0Neuron
from repro.neuron.srm0_network import build_srm0_network

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_ir_passes.json"

#: Optimized-program batches may not run slower than the legacy
#: optimize()->Network->compile path by more than this factor.
MAX_LEGACY_RATIO = 1.10
#: On minimal networks the pipeline must be a no-op, so the optimized
#: batch may not regress past timing noise.
MAX_MINIMAL_RATIO = 1.10


def redundant_networks():
    """Synthesis output with deliberate, pass-removable redundancy."""
    table = NormalizedTable.random(3, window=3, n_rows=12, rng=random.Random(7))
    minterm = synthesize(table)
    neuron = SRM0Neuron.homogeneous(
        3,
        [2, 1, 3],
        base_response=ResponseFunction.piecewise_linear(
            amplitude=2, rise=1, fall=3
        ),
        threshold=4,
    )
    column = build_srm0_network(neuron)
    return {"minterm(3x12)": minterm, "srm0-column(3in)": column}


def minimal_networks():
    """Already-optimal structures the pipeline must leave alone."""
    b = NetworkBuilder("diamond")
    x, y = b.input("x"), b.input("y")
    b.output("z", b.lt(b.min(x, y), b.max(x, y)))
    diamond = b.build()

    c = NetworkBuilder("delay-line")
    v = c.input("v")
    c.output("w", c.inc(v, 9))
    return {"diamond": diamond, "delay-line": c.build()}


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _volleys(network, batch, *, seed):
    rng = random.Random(seed)
    arity = len(network.input_names)
    return [
        random_volley(arity, rng=rng, silence_probability=0.25)
        for _ in range(batch)
    ]


def measure_redundant(network, *, batch, repeats, seed=0):
    """Reduction accounting plus optimized-vs-legacy batch timing."""
    program, report = optimize_program(network)
    legacy, _ = optimize(network)  # the old path: pipeline -> Network
    volleys = _volleys(network, batch, seed=seed)

    # Warm the plans out of the timed region.
    evaluate_batch(network, volleys)
    evaluate_batch(program, volleys)
    evaluate_batch(legacy, volleys)

    t_raw = _best_of(repeats, lambda: evaluate_batch(network, volleys))
    t_opt = _best_of(repeats, lambda: evaluate_batch(program, volleys))
    t_leg = _best_of(repeats, lambda: evaluate_batch(legacy, volleys))
    return {
        "nodes_before": len(lower(network).nodes),
        "nodes_after": len(program.nodes),
        "removed_by_pass": report.by_pass(),
        "pipeline_iterations": report.iterations,
        "batch": batch,
        "raw_ms": t_raw * 1e3,
        "optimized_ms": t_opt * 1e3,
        "legacy_optimize_ms": t_leg * 1e3,
        "speedup_vs_raw": t_raw / t_opt if t_opt else float("inf"),
        "ratio_vs_legacy": t_opt / t_leg if t_leg else float("inf"),
    }


def measure_minimal(network, *, batch, repeats, seed=1):
    """The no-op guarantee: same structure, shared plan, no slowdown."""
    program, report = optimize_program(network)
    volleys = _volleys(network, batch, seed=seed)
    shares_plan = compile_plan(network) is compile_plan(program)

    evaluate_batch(network, volleys)
    evaluate_batch(program, volleys)
    t_raw = _best_of(repeats, lambda: evaluate_batch(network, volleys))
    t_opt = _best_of(repeats, lambda: evaluate_batch(program, volleys))
    return {
        "nodes_before": len(lower(network).nodes),
        "nodes_after": len(program.nodes),
        "removed": report.removed,
        "shares_compiled_plan": shares_plan,
        "batch": batch,
        "raw_ms": t_raw * 1e3,
        "optimized_ms": t_opt * 1e3,
        "ratio_vs_raw": t_opt / t_raw if t_raw else float("inf"),
    }


def run(*, smoke=False, repeats=None):
    batch = 64 if smoke else 256
    repeats = repeats or (5 if smoke else 30)
    clear_plan_cache()
    cache_before = plan_cache_info()
    redundant = {
        name: measure_redundant(net, batch=batch, repeats=repeats)
        for name, net in redundant_networks().items()
    }
    minimal = {
        name: measure_minimal(net, batch=batch, repeats=repeats)
        for name, net in minimal_networks().items()
    }
    cache_after = plan_cache_info()
    return {
        "benchmark": "bench_ir_passes",
        "smoke": smoke,
        "batch": batch,
        "max_legacy_ratio": MAX_LEGACY_RATIO,
        "max_minimal_ratio": MAX_MINIMAL_RATIO,
        "redundant": redundant,
        "minimal": minimal,
        "plan_cache": {
            "misses": cache_after["misses"] - cache_before["misses"],
            "hits_identity": (
                cache_after["hits_identity"] - cache_before["hits_identity"]
            ),
            "hits_structural": (
                cache_after["hits_structural"] - cache_before["hits_structural"]
            ),
            "evictions": cache_after["evictions"] - cache_before["evictions"],
        },
    }


def report(*, smoke=False, artifact_path=ARTIFACT) -> tuple[str, bool]:
    data = run(smoke=smoke)
    artifact_path = Path(artifact_path)
    artifact_path.write_text(json.dumps(data, indent=2) + "\n")

    ok = True
    lines = ["IR pass pipeline — node reduction and evaluate_batch payoff"]
    lines.append("\nredundant networks (pipeline must shrink and pay off):")
    lines.append(
        f"{'network':<20} {'nodes':>11} {'raw':>9} {'optimized':>10} "
        f"{'speedup':>8} {'vs legacy':>9}"
    )
    for name, row in data["redundant"].items():
        lines.append(
            f"{name:<20} {row['nodes_before']:>4} -> {row['nodes_after']:<4} "
            f"{row['raw_ms']:>8.3f} {row['optimized_ms']:>9.3f}ms "
            f"{row['speedup_vs_raw']:>7.2f}x {row['ratio_vs_legacy']:>8.2f}x"
        )
        if row["nodes_after"] >= row["nodes_before"]:
            ok = False
            lines.append(f"  FAIL: pipeline did not shrink {name}")
        if not smoke and row["ratio_vs_legacy"] > MAX_LEGACY_RATIO:
            ok = False
            lines.append(
                f"  FAIL: optimized batch is {row['ratio_vs_legacy']:.2f}x "
                f"the legacy optimize() path (bound {MAX_LEGACY_RATIO:.2f}x)"
            )
    lines.append("\nminimal networks (pipeline must be a no-op):")
    for name, row in data["minimal"].items():
        lines.append(
            f"{name:<20} {row['nodes_before']:>4} -> {row['nodes_after']:<4} "
            f"shared-plan={row['shares_compiled_plan']} "
            f"ratio={row['ratio_vs_raw']:.2f}x"
        )
        if row["removed"] != 0 or not row["shares_compiled_plan"]:
            ok = False
            lines.append(f"  FAIL: pipeline was not a no-op on {name}")
        if not smoke and row["ratio_vs_raw"] > MAX_MINIMAL_RATIO:
            ok = False
            lines.append(
                f"  FAIL: optimized batch regressed {row['ratio_vs_raw']:.2f}x "
                f"on {name} (bound {MAX_MINIMAL_RATIO:.2f}x)"
            )
    cache = data["plan_cache"]
    lines.append(
        f"\nplan cache: {cache['misses']} miss(es), "
        f"{cache['hits_identity']} identity / "
        f"{cache['hits_structural']} structural hit(s), "
        f"{cache['evictions']} eviction(s)"
    )
    lines.append(f"artifact: {artifact_path}")
    return "\n".join(lines), ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small batch, fewer repeats (CI quick mode; timing bounds off)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=ARTIFACT,
        help=f"artifact path (default {ARTIFACT.name} at repo root)",
    )
    args = parser.parse_args(argv)
    text, ok = report(smoke=args.smoke, artifact_path=args.json)
    print(text)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
