"""§II.C — supervised latency learning (SpikeProp direction).

Bohte et al. trained temporally coded networks toward *target spike
times*.  Regenerates the single-layer integer version: a latency neuron
learns to fire at prescribed offsets from its input volley, and a bank
of them regresses whole target volleys.  Reports timing error before and
after training across target offsets.
"""

import random

from repro.learning.spikeprop import LatencyNeuron, LatencyRegressor, SpikePropConfig
from repro.neuron.response import ResponseFunction

BASE = ResponseFunction.piecewise_linear(amplitude=3, rise=2, fall=6)


def _task(offset, seed):
    rng = random.Random(seed)
    volleys = [
        tuple(rng.randint(0, 3) for _ in range(8)) for _ in range(6)
    ]
    targets = [min(v) + offset for v in volleys]
    neuron = LatencyNeuron(
        8,
        threshold=12,
        base_response=BASE,
        config=SpikePropConfig(tolerance=1),
        rng=random.Random(seed),
    )
    before = neuron.mean_absolute_error(volleys, targets)
    neuron.train(volleys, targets, epochs=40, rng=random.Random(seed + 1))
    after = neuron.mean_absolute_error(volleys, targets)
    return before, after


def report() -> str:
    lines = ["§II.C — SpikeProp-style latency regression"]
    lines.append(f"\n{'target offset':>14} {'MAE before':>11} {'MAE after':>10}")
    for offset in (2, 3, 4):
        befores, afters = [], []
        for seed in (1, 2, 3):
            before, after = _task(offset, seed)
            befores.append(before)
            afters.append(after)
        lines.append(
            f"{offset:>14} {sum(befores) / 3:>11.2f} {sum(afters) / 3:>10.2f}"
        )

    rng = random.Random(9)
    volleys = [tuple(rng.randint(0, 3) for _ in range(6)) for _ in range(4)]
    targets = [tuple(min(v) + j + 2 for j in range(2)) for v in volleys]
    bank = LatencyRegressor(
        6, 2, threshold=10, base_response=BASE,
        config=SpikePropConfig(tolerance=1), seed=9,
    )
    history = bank.train(volleys, targets, epochs=50, rng=random.Random(10))
    lines.append(
        f"\nvolley regression (2 outputs): within-tolerance fraction "
        f"{history[0]:.0%} -> {history[-1]:.0%} over {len(history)} epochs"
    )
    lines.append(
        "\nshape: timing error shrinks under the supervised rule for every "
        "target offset — latency is a trainable quantity, per Bohte et "
        "al., in 4-bit integer weights."
    )
    return "\n".join(lines)


def bench_latency_training(benchmark):
    def train():
        before, after = _task(3, seed=5)
        return before, after

    before, after = benchmark(train)
    assert after <= before


def bench_latency_inference(benchmark):
    rng = random.Random(2)
    neuron = LatencyNeuron(8, threshold=12, base_response=BASE)
    volley = tuple(rng.randint(0, 3) for _ in range(8))
    result = benchmark(neuron.fire_time, volley)
    assert result is not None


if __name__ == "__main__":
    print(report())
