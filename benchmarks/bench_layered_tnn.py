"""Extension — multi-layer TNNs (the direction §II.C highlights).

Measures the layered stack the paper's survey points toward: layer-wise
STDP-trained columns, responsiveness at depth, the compiled size of the
whole stack as one primitive network (Lemma 1 at depth), and exact
behavioral/compiled agreement.
"""

import random

from repro.core.value import INF, Infinity
from repro.network.simulator import evaluate_vector
from repro.neuron.layers import LayeredTNN, compile_layered, train_layerwise


def _patterns(n, width, seed):
    rng = random.Random(seed)
    return [tuple(rng.randint(0, 3) for _ in range(width)) for _ in range(n)]


def report() -> str:
    lines = ["Extension — layered TNNs"]
    lines.append(f"\n{'layers':>7} {'widths':>14} {'responsive':>11} {'compiled blocks':>16} {'agree?':>7}")
    for widths in ([12, 6], [12, 8, 4], [12, 8, 6, 3]):
        tnn = LayeredTNN.random(widths, threshold_fraction=0.2, seed=3)
        patterns = _patterns(4, widths[0], seed=3)
        volleys = [p for p in patterns for _ in range(8)]
        train_layerwise(tnn, volleys, epochs_per_layer=2, seed=3)
        responsive = sum(
            1
            for p in patterns
            if any(not isinstance(t, Infinity) for t in tnn.forward(p))
        )
        net = compile_layered(tnn)
        sample = patterns[0]
        agree = tnn.forward(sample) == tuple(
            evaluate_vector(net, sample)[f"y{i + 1}"]
            for i in range(tnn.n_outputs)
        )
        lines.append(
            f"{tnn.n_layers:>7} {str(widths):>14} {responsive:>8}/4 "
            f"{net.size:>16} {'yes' if agree else 'NO':>7}"
        )
    lines.append(
        "\nshape: stacks stay responsive after greedy layer-wise STDP, and "
        "every stack compiles to one (large) primitive network computing "
        "identical fire times — Lemma 1 holds at depth."
    )
    return "\n".join(lines)


def bench_layered_forward(benchmark):
    tnn = LayeredTNN.random([16, 8, 4], seed=1)
    rng = random.Random(2)
    volley = tuple(rng.randint(0, 5) for _ in range(16))
    out = benchmark(tnn.forward, volley)
    assert len(out) == 4


def bench_layerwise_training(benchmark):
    patterns = _patterns(3, 12, seed=4)
    volleys = [p for p in patterns for _ in range(6)]

    def train():
        tnn = LayeredTNN.random([12, 6, 3], seed=4)
        train_layerwise(tnn, volleys, epochs_per_layer=1, seed=4)
        return tnn

    tnn = benchmark(train)
    assert tnn.n_layers == 2


def bench_compile_two_layer(benchmark):
    tnn = LayeredTNN.random([8, 4, 2], seed=5)
    net = benchmark(compile_layered, tnn)
    assert net.size > 0


if __name__ == "__main__":
    print(report())
