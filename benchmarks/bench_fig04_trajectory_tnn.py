"""Fig. 4 — the Bichler-style trajectory-tracking TNN.

Regenerates the system's headline behaviour on the synthetic freeway
substitute: after unsupervised STDP + WTA, individual neurons specialize
to individual lanes.  Sweeps the lane count and reports purity/coverage;
times one full train-and-evaluate experiment.

Substitution note (see DESIGN.md): the original DVS recordings are
unavailable; synthetic lane trajectories exercise the same
AER → volley → STDP → WTA pipeline with measurable ground truth.
"""

from repro.apps.trajectory import run_experiment


def report() -> str:
    lines = ["Fig. 4 — trajectory tracking (synthetic AER freeway)"]
    lines.append(f"\n{'lanes':>6} {'purity':>8} {'coverage':>9} {'lanes claimed':>14}")
    for n_lanes in (2, 4):
        result = run_experiment(
            n_lanes=n_lanes,
            n_vehicles_train=8 * n_lanes,
            n_vehicles_test=4 * n_lanes,
            seed=7,
        )
        lines.append(
            f"{n_lanes:>6} {result.lane_purity:>8.1%} "
            f"{result.coverage:>9.1%} {result.distinct_lanes_claimed:>14}"
        )
    lines.append(
        "\nshape: purity far above chance (1/lanes) and every lane claimed "
        "by some neuron — the unsupervised specialization Bichler et al. "
        "reported."
    )
    return "\n".join(lines)


def bench_trajectory_experiment(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        kwargs=dict(n_lanes=2, n_vehicles_train=8, n_vehicles_test=4, seed=1),
        iterations=1,
        rounds=3,
    )
    assert result.lane_purity > 0.5


if __name__ == "__main__":
    print(report())
