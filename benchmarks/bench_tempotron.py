"""§II.C — tempotron learning (Gütig & Sompolinsky).

Regenerates the supervised spike-timing classification result: a single
SRM0 neuron learns to fire on one class of volleys and stay silent on the
other, with integer low-resolution weights.  Sweeps jitter to show the
robustness/shape and times training and inference.
"""

import random

from repro.apps.datasets import two_class_latency
from repro.learning.tempotron import Tempotron


def _train_once(jitter, seed):
    volleys, labels = two_class_latency(
        n_lines=16, per_class=12, window=8, jitter=jitter, seed=seed
    )
    tuples = [tuple(v) for v in volleys]
    tempotron = Tempotron(16, threshold=50, rng=random.Random(seed))
    history = tempotron.train(
        tuples, labels, epochs=30, rng=random.Random(seed + 1)
    )
    return tempotron.accuracy(tuples, labels), len(history)


def report() -> str:
    lines = ["§II.C — tempotron classification"]
    lines.append(f"\n{'jitter':>7} {'final accuracy':>15} {'epochs used':>12}")
    for jitter in (0, 1, 2):
        accuracies = []
        epochs = []
        for seed in (1, 2, 3):
            accuracy, n_epochs = _train_once(jitter, seed)
            accuracies.append(accuracy)
            epochs.append(n_epochs)
        lines.append(
            f"{jitter:>7} {sum(accuracies) / 3:>15.1%} "
            f"{sum(epochs) / 3:>12.1f}"
        )
    lines.append(
        "\nshape: perfect separation on clean patterns, graceful "
        "degradation with timing jitter — the tempotron paper's "
        "qualitative result, in 3-bit integer weights."
    )
    return "\n".join(lines)


def bench_tempotron_training(benchmark):
    volleys, labels = two_class_latency(
        n_lines=16, per_class=10, window=8, jitter=1, seed=5
    )
    tuples = [tuple(v) for v in volleys]

    def train():
        tempotron = Tempotron(16, threshold=50, rng=random.Random(5))
        tempotron.train(tuples, labels, epochs=10, rng=random.Random(6))
        return tempotron

    trained = benchmark(train)
    assert trained.accuracy(tuples, labels) > 0.7


def bench_tempotron_inference(benchmark):
    volleys, labels = two_class_latency(
        n_lines=16, per_class=10, window=8, jitter=1, seed=5
    )
    tuples = [tuple(v) for v in volleys]
    tempotron = Tempotron(16, threshold=50, rng=random.Random(5))
    tempotron.train(tuples, labels, epochs=10, rng=random.Random(6))
    accuracy = benchmark(tempotron.accuracy, tuples, labels)
    assert accuracy > 0.7


if __name__ == "__main__":
    print(report())
