"""Regenerate every figure/claim report in one run.

Usage::

    python benchmarks/run_all_reports.py [pattern]

Imports each ``bench_*.py`` module in this directory and prints its
``report()`` — the textual regeneration of the corresponding paper
figure or claim (the source of the numbers recorded in EXPERIMENTS.md).
An optional substring *pattern* filters which reports run.
"""

from __future__ import annotations

import importlib.util
import sys
import time
from pathlib import Path


def iter_bench_modules(pattern: str = ""):
    directory = Path(__file__).parent
    for path in sorted(directory.glob("bench_*.py")):
        if pattern and pattern not in path.stem:
            continue
        yield path


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    pattern = args[0] if args else ""
    failures = 0
    count = 0
    for path in iter_bench_modules(pattern):
        count += 1
        started = time.time()
        print("=" * 72)
        try:
            module = load_module(path)
            print(module.report())
        except Exception as exc:  # noqa: BLE001 - survey must continue
            failures += 1
            print(f"[FAILED] {path.name}: {exc!r}")
        print(f"\n({path.name}, {time.time() - started:.1f}s)")
    print("=" * 72)
    print(f"{count} report(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
