"""Model lineage: the provenance chain online training leaves behind.

Serving names models by structural fingerprint (see
:mod:`repro.serve.registry`); online training *produces* fingerprints —
every snapshot of the evolving column is a new immutable model.  The
lineage is the append-only record tying them together: which fingerprint
each snapshot grew from, how many STDP steps separate them, under which
rule parameters, and what the accuracy probe said at snapshot time.

That record is what makes a hot-swapped deployment auditable: given any
served fingerprint, :meth:`ModelLineage.chain` walks back to the seed
model, and the JSON document (``lineage`` op, ``--lineage-out``) ships
the whole history as an artifact.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from typing import Optional

#: Format tag embedded in serialized lineage documents.
FORMAT = "repro.lineage/1"


@dataclass(frozen=True)
class LineageRecord:
    """One snapshot edge: ``parent`` trained into ``child``.

    ``parent`` is ``None`` for the seed model (the column as it was when
    the plane started).  ``steps`` counts the STDP micro-steps applied
    between the two snapshots; ``total_steps`` the cumulative count since
    the seed.  ``accuracy`` is the holdout probe measured on the child at
    snapshot time (``None`` when the plane has no probe).
    """

    parent: Optional[str]
    child: str
    steps: int
    total_steps: int
    rule: dict = field(default_factory=dict)
    accuracy: Optional[float] = None
    promoted: bool = False

    def to_json(self) -> dict:
        return asdict(self)


class ModelLineage:
    """Append-only, thread-safe chain of :class:`LineageRecord` edges.

    The trainer thread appends while the server thread answers
    ``lineage`` ops, so every read returns a snapshot copy.
    """

    def __init__(self, *, alias: Optional[str] = None) -> None:
        self._lock = threading.Lock()
        self._records: list[LineageRecord] = []
        self.alias = alias

    def append(self, record: LineageRecord) -> None:
        with self._lock:
            if self._records and record.parent != self._records[-1].child:
                raise ValueError(
                    f"lineage break: record parent "
                    f"{(record.parent or 'None')[:12]} does not extend head "
                    f"{self._records[-1].child[:12]}"
                )
            self._records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> list[LineageRecord]:
        with self._lock:
            return list(self._records)

    def head(self) -> Optional[str]:
        """The newest child fingerprint, or ``None`` before any snapshot."""
        with self._lock:
            return self._records[-1].child if self._records else None

    def chain(self, fingerprint: str) -> list[LineageRecord]:
        """The edges from the seed up to *fingerprint* (inclusive).

        Raises :class:`KeyError` when no snapshot produced that
        fingerprint.
        """
        with self._lock:
            by_child = {record.child: record for record in self._records}
        if fingerprint not in by_child:
            raise KeyError(f"no lineage record for {fingerprint[:12]}")
        edges: list[LineageRecord] = []
        cursor: Optional[str] = fingerprint
        while cursor is not None and cursor in by_child:
            record = by_child[cursor]
            edges.append(record)
            cursor = record.parent
        edges.reverse()
        return edges

    # -- serialization ---------------------------------------------------

    def describe(self) -> dict:
        """The JSON shape the ``lineage`` op and the CLI report."""
        records = self.records()
        return {
            "format": FORMAT,
            "alias": self.alias,
            "head": records[-1].child if records else None,
            "snapshots": len(records),
            "total_steps": records[-1].total_steps if records else 0,
            "records": [record.to_json() for record in records],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.describe(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_json(cls, text: str) -> "ModelLineage":
        payload = json.loads(text)
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"not a lineage document (format={payload.get('format')!r})"
            )
        lineage = cls(alias=payload.get("alias"))
        for raw in payload.get("records", []):
            lineage.append(LineageRecord(**raw))
        return lineage

    @classmethod
    def load(cls, path: str) -> "ModelLineage":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
