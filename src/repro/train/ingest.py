"""Streaming ingestion: from the wire (or a file) into the trainer.

The serving event loop must never block on training — a burst of
``train`` ops competes with inference for nothing but a queue slot.
:class:`TrainingQueue` is the seam: bounded, thread-safe, and lossy by
design (a full queue *drops* the volley and counts it, mirroring the
admission-control philosophy of the serving plane — backpressure is
visible, buffering is never unbounded).

Sources are plain iterables of :class:`TrainingItem`; :func:`file_source`
replays an NDJSON file (one ``{"volley": [...], "label": n}`` object per
line, ``null`` meaning ∞ exactly as on the serving wire), so a recorded
training stream reproduces the same model bit-for-bit.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..core.value import Time
from ..obs import metrics as _obs_metrics
from ..serve.protocol import volley_from_wire, volley_to_wire


@dataclass(frozen=True)
class TrainingItem:
    """One training example: a volley, optionally labeled.

    Labels never influence STDP (training is unsupervised); they feed
    the accuracy probe's calibration set when present.
    """

    volley: tuple[Time, ...]
    label: Optional[int] = None

    def to_wire(self) -> dict:
        payload: dict = {"volley": volley_to_wire(self.volley)}
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_wire(cls, raw: dict) -> "TrainingItem":
        volley = volley_from_wire(raw.get("volley"))
        label = raw.get("label")
        if label is not None and not isinstance(label, int):
            raise ValueError(f"label must be an integer, got {label!r}")
        return cls(volley=volley, label=label)


class TrainingQueue:
    """Bounded handoff between ingestion threads and the trainer.

    ``put`` never blocks: at capacity the item is dropped and
    ``train.queue.dropped`` incremented — the producer (the serving
    event loop) learns immediately and the response can say so.  ``get``
    blocks the *trainer* thread with a timeout, which is the side that
    is allowed to wait.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: deque[TrainingItem] = deque()
        self._accepted = 0
        self._dropped = 0
        self._closed = False

    def put(self, item: TrainingItem) -> bool:
        """Enqueue *item*; ``False`` means it was dropped (queue full)."""
        with self._lock:
            if self._closed or len(self._items) >= self.capacity:
                self._dropped += 1
                _obs_metrics.METRICS.inc("train.queue.dropped")
                return False
            self._items.append(item)
            self._accepted += 1
            _obs_metrics.METRICS.inc("train.queue.accepted")
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = 0.1) -> Optional[TrainingItem]:
        """Dequeue one item, or ``None`` on timeout / after close."""
        with self._not_empty:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout=timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def drain(self, limit: Optional[int] = None) -> list[TrainingItem]:
        """Dequeue up to *limit* items without blocking."""
        with self._lock:
            n = len(self._items) if limit is None else min(limit, len(self._items))
            return [self._items.popleft() for _ in range(n)]

    def close(self) -> None:
        """Refuse new items and wake any blocked consumer."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._items),
                "capacity": self.capacity,
                "accepted": self._accepted,
                "dropped": self._dropped,
            }


def file_source(path: str) -> Iterator[TrainingItem]:
    """Replay an NDJSON training stream (one item per line).

    Blank lines are skipped; malformed lines raise with the line number
    so a corrupt recording fails loudly rather than training on noise.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                yield TrainingItem.from_wire(raw)
            except (ValueError, TypeError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: bad training item: {exc}")


def save_items(items: Iterable[TrainingItem], path: str) -> int:
    """Record a training stream as a replayable NDJSON file."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for item in items:
            handle.write(json.dumps(item.to_wire(), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def items_from_labeled(data: Sequence) -> list[TrainingItem]:
    """Adapt :class:`repro.apps.datasets.LabeledVolley` rows to items."""
    return [
        TrainingItem(volley=tuple(row.volley), label=row.label) for row in data
    ]
