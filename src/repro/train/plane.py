"""The incremental trainer and the plane that runs it beside serving.

:class:`IncrementalTrainer` turns the batch-oriented
:class:`~repro.learning.stdp.STDPTrainer` into an online consumer:
volleys arrive one at a time, updates apply in micro-steps, and every
``snapshot_every`` presentations the evolving column is compiled,
serialized, fingerprint-verified, and registered as a new immutable
model (see :meth:`repro.serve.registry.ModelRegistry.register` — the
round-trip check runs on every snapshot).

:class:`TrainingPlane` wires the trainer to a live
:class:`~repro.serve.service.TNNService`: a background thread drains the
bounded :class:`~repro.train.ingest.TrainingQueue`, trains, snapshots,
records lineage, and hot-swaps the serving alias via the service's
warm-then-flip promotion path.  The serving plane never blocks on any
of it — ingestion drops (and counts) when the queue is full, and
training runs strictly off the admission path.
"""

from __future__ import annotations

import dataclasses
import threading
import weakref
from typing import Callable, Optional

from ..learning.stdp import Homeostasis, STDPTrainer, TrainingStep
from ..neuron.column import Column, compile_column
from ..obs import metrics as _obs_metrics
from .ingest import TrainingItem, TrainingQueue
from .lineage import LineageRecord, ModelLineage


#: Live planes in this process, for :func:`training_stats_snapshot`.
#: Weak so a dropped plane never pins its column/service alive.
_ACTIVE_PLANES: "weakref.WeakSet[TrainingPlane]" = weakref.WeakSet()


def training_stats_snapshot() -> dict:
    """The process-wide ``training`` section of ``stats --json``.

    Counter-shaped facts come from the metrics registry (they survive
    plane teardown); the live gauges — queue depth, last accuracy probe
    — are read off whatever planes currently exist in this process.
    """
    section = {
        "steps": _obs_metrics.METRICS.counter("train.steps"),
        "snapshots": _obs_metrics.METRICS.counter("train.snapshots"),
        "promotions": _obs_metrics.METRICS.counter("train.promotions"),
        "queue": {
            "accepted": _obs_metrics.METRICS.counter("train.queue.accepted"),
            "dropped": _obs_metrics.METRICS.counter("train.queue.dropped"),
            "depth": 0,
        },
        "planes": 0,
        "last_accuracy": None,
    }
    for plane in list(_ACTIVE_PLANES):
        stats = plane.stats()
        section["planes"] += 1
        section["queue"]["depth"] += stats["queue"]["depth"]
        if stats["last_accuracy"] is not None:
            section["last_accuracy"] = stats["last_accuracy"]
    return section


def _rule_params(rule) -> dict:
    """The rule's parameters as a JSON-safe dict (lineage metadata)."""
    if dataclasses.is_dataclass(rule):
        return {"rule": type(rule).__name__, **dataclasses.asdict(rule)}
    return {"rule": type(rule).__name__}


class IncrementalTrainer:
    """Online STDP over one column, snapshot-ready at any step.

    Wraps an :class:`STDPTrainer` (building a seeded one with
    homeostatic thresholds when none is given) and tracks presentations
    separately from applied updates — a silent column presents without
    learning, and the snapshot cadence counts presentations.
    """

    def __init__(
        self,
        column: Column,
        *,
        trainer: Optional[STDPTrainer] = None,
        rule=None,
        seed: int = 0,
        model_name: str = "online",
    ) -> None:
        self.column = column
        self.trainer = trainer or STDPTrainer(
            column, rule, seed=seed, homeostasis=Homeostasis(column)
        )
        if self.trainer.column is not column:
            raise ValueError("trainer must train the plane's own column")
        self.model_name = model_name
        self.presented = 0

    @property
    def applied(self) -> int:
        """Updates actually applied (presentations with a WTA winner)."""
        return self.trainer.steps_taken

    def step(self, item: TrainingItem) -> TrainingStep:
        """Present one volley; returns the step record."""
        step = self.trainer.train_step(item.volley)
        self.presented += 1
        if step.winner is not None:
            _obs_metrics.METRICS.inc("train.steps")
        return step

    def compile_snapshot(self):
        """The column as an immutable network, inference-ready.

        Homeostatic threshold inflation is training-time state
        (:meth:`Homeostasis.reset`), so it is stripped before
        compilation — the served model evaluates at base thresholds.
        The constant network name keeps the fingerprint a pure function
        of the learned structure, so an unchanged column deduplicates.
        """
        if self.trainer.homeostasis is not None:
            self.trainer.homeostasis.reset(self.column)
        return compile_column(self.column, name=self.model_name)


class TrainingPlane:
    """Queue → trainer → snapshot → lineage → promote, off-thread.

    Lifecycle: construct, :meth:`bootstrap` (registers the seed column
    and points *alias* at it), :meth:`start` the worker, feed
    :meth:`ingest`, :meth:`stop` (final snapshot by default).  Tests and
    the benchmark can instead drive :meth:`train_step` /
    :meth:`snapshot` synchronously — the worker thread is a loop over
    exactly those calls.
    """

    def __init__(
        self,
        service,
        column: Column,
        *,
        alias: str,
        trainer: Optional[STDPTrainer] = None,
        rule=None,
        seed: int = 0,
        queue: Optional[TrainingQueue] = None,
        queue_capacity: int = 1024,
        snapshot_every: int = 50,
        probe: Optional[Callable[[], Optional[float]]] = None,
        lineage: Optional[ModelLineage] = None,
        model_name: str = "online",
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.service = service
        self.alias = alias
        self.incremental = IncrementalTrainer(
            column,
            trainer=trainer,
            rule=rule,
            seed=seed,
            model_name=model_name,
        )
        self.queue = queue or TrainingQueue(queue_capacity)
        self.snapshot_every = snapshot_every
        self.probe = probe
        self.lineage = lineage or ModelLineage(alias=alias)
        self.live_fingerprint: Optional[str] = None
        self.last_accuracy: Optional[float] = None
        self.snapshots = 0
        self.promotions = 0
        self._since_snapshot = 0
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        _ACTIVE_PLANES.add(self)

    # -- lifecycle -------------------------------------------------------

    def bootstrap(self) -> str:
        """Register the seed column and alias it live; returns its id.

        The seed snapshot is lineage record zero (``parent=None``), so
        every later fingerprint chains back to the model the plane
        started from.
        """
        if self.live_fingerprint is not None:
            raise RuntimeError("training plane already bootstrapped")
        return self.snapshot(force=True)["model"]

    def start(self) -> None:
        """Run the ingestion-train-snapshot loop in a daemon thread."""
        if self.live_fingerprint is None:
            self.bootstrap()
        if self._thread is not None:
            raise RuntimeError("training plane already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="train-plane", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            item = self.queue.get(timeout=0.05)
            if item is None:
                continue
            self.train_step(item)

    def stop(self, *, final_snapshot: bool = True, timeout: float = 10.0) -> None:
        """Stop the worker; by default snapshot any untrained remainder."""
        self._stop.set()
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        for item in self.queue.drain():
            self.incremental.step(item)
            self._since_snapshot += 1
        if final_snapshot and self._since_snapshot > 0:
            self.snapshot()

    # -- the training path ----------------------------------------------

    def ingest(self, item: TrainingItem) -> bool:
        """Hand one wire volley to the queue; ``False`` = dropped."""
        return self.queue.put(item)

    def train_step(self, item: TrainingItem) -> TrainingStep:
        """Present one volley and snapshot when the cadence is due."""
        with self._state_lock:
            step = self.incremental.step(item)
            self._since_snapshot += 1
            due = self._since_snapshot >= self.snapshot_every
        if due:
            self.snapshot()
        return step

    def snapshot(self, *, force: bool = False) -> Optional[dict]:
        """Compile, register, record, and promote the current column.

        Returns the promotion summary, or ``None`` when the column's
        fingerprint has not moved since the live snapshot (STDP at the
        weight-resolution bounds often applies zero net change; a
        self-loop would pollute the lineage and churn the caches).
        ``force`` registers even an unchanged fingerprint — used by
        :meth:`bootstrap`.
        """
        with self._state_lock:
            network = self.incremental.compile_snapshot()
            fingerprint = network.fingerprint()
            if fingerprint == self.live_fingerprint and not force:
                self._since_snapshot = 0
                return None
            since = self._since_snapshot
            parent = self.live_fingerprint
        self.service.register(network)
        accuracy = self.probe() if self.probe is not None else None
        summary = self.service.promote(self.alias, fingerprint)
        self.lineage.append(
            LineageRecord(
                parent=parent,
                child=fingerprint,
                steps=since,
                total_steps=self.incremental.applied,
                rule=_rule_params(self.incremental.trainer.rule),
                accuracy=accuracy,
                promoted=True,
            )
        )
        with self._state_lock:
            self.live_fingerprint = fingerprint
            self.last_accuracy = accuracy
            self.snapshots += 1
            self.promotions += 1
            self._since_snapshot = 0
        _obs_metrics.METRICS.inc("train.snapshots")
        _obs_metrics.METRICS.inc("train.promotions")
        return summary

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """The ``training`` section of ``stats``/``metrics_text``."""
        with self._state_lock:
            return {
                "alias": self.alias,
                "live": self.live_fingerprint,
                "presented": self.incremental.presented,
                "applied": self.incremental.applied,
                "snapshots": self.snapshots,
                "promotions": self.promotions,
                "last_accuracy": self.last_accuracy,
                "queue": self.queue.stats(),
                "lineage": len(self.lineage),
            }
