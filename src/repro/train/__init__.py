"""The training plane: online STDP learning beside the serving plane.

``repro.serve`` answers inference volleys; ``repro.train`` consumes
*training* volleys from the same protocol stream and folds them into the
served model without downtime:

* :mod:`repro.train.ingest` — the bounded :class:`TrainingQueue` between
  the transport and the trainer, plus replayable sources (NDJSON files,
  in-memory datasets).  Backpressure by drop-and-count, never by
  blocking the serving event loop.
* :mod:`repro.train.lineage` — :class:`ModelLineage`, the append-only
  parent-fingerprint → child-fingerprint provenance chain every
  snapshot extends; queryable over the wire (``lineage`` op) and from
  ``python -m repro train``.
* :mod:`repro.train.plane` — :class:`IncrementalTrainer` (micro-stepped
  STDP with periodic fingerprint-verified snapshots) and
  :class:`TrainingPlane` (the background worker wiring queue → trainer
  → registry → hot-swap promotion).
* :mod:`repro.train.scenario` — the seeded latency-coded classification
  scenario shared by the tests, the benchmark, and the CI smoke job.

The serving contract is unchanged by training: a request admitted
against fingerprint F completes on F byte-exactly; promotion flips an
alias atomically between admissions (see
:meth:`repro.serve.service.TNNService.promote`).
"""

from __future__ import annotations

from .ingest import TrainingItem, TrainingQueue, file_source, save_items
from .lineage import LineageRecord, ModelLineage
from .plane import IncrementalTrainer, TrainingPlane, training_stats_snapshot
from .scenario import TrainingScenario, classification_scenario

__all__ = [
    "IncrementalTrainer",
    "LineageRecord",
    "ModelLineage",
    "TrainingItem",
    "TrainingPlane",
    "TrainingQueue",
    "TrainingScenario",
    "classification_scenario",
    "file_source",
    "save_items",
    "training_stats_snapshot",
]
