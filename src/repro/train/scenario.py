"""The seeded online-training scenario shared by tests, bench, and CI.

One recipe, three consumers: the end-to-end tests, the
``benchmarks/bench_training.py`` harness, and the CI ``train-smoke``
job all build the *same* latency-coded classification problem from the
same seed, so an accuracy regression in any of them points at the code,
never at the workload.

The task is the paper's §II.C setting (embedded temporal patterns under
jitter, dropout, and background noise — the Guyonneau/Masquelier
convergence workload) sized so that the untrained seed column performs
near chance and a few hundred online STDP steps lift holdout accuracy
well above it, in seconds, on one core.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..apps.classifier import ClassifierConfig, TNNClassifier
from ..apps.datasets import LabeledVolley, embedded_patterns
from ..learning.stdp import Homeostasis, STDPTrainer
from ..neuron.column import Column
from .ingest import TrainingItem, items_from_labeled


@dataclass
class TrainingScenario:
    """A classification problem plus the column that learns it online."""

    name: str
    classifier: TNNClassifier
    train: list[LabeledVolley]
    holdout: list[LabeledVolley]
    seed: int

    @property
    def column(self) -> Column:
        return self.classifier.column

    def items(self) -> list[TrainingItem]:
        """The training split as a replayable ingestion stream."""
        return items_from_labeled(self.train)

    def make_trainer(self) -> STDPTrainer:
        """The online trainer: WTA-STDP with homeostasis, seeded."""
        return STDPTrainer(
            self.classifier.column,
            self.classifier.rule,
            seed=self.seed + 1,
            homeostasis=Homeostasis(self.classifier.column),
        )

    def probe(self) -> float:
        """Holdout accuracy of the column as it stands *right now*.

        Calibrates neuron labels by majority vote over the training
        split (the standard unsupervised-STDP evaluation protocol),
        then scores the held-out presentations.  Homeostatic threshold
        state must be reset by the caller before probing — the plane
        does this at snapshot time.
        """
        self.classifier.calibrate(self.train)
        return self.classifier.accuracy(self.holdout)


def classification_scenario(
    *, smoke: bool = False, seed: int = 0
) -> TrainingScenario:
    """Build the shared scenario (``smoke=True`` for the CI-sized cut).

    Full: 12 input lines, 4 neurons, 3 embedded patterns, 200
    presentations (150 train / 50 holdout) — untrained holdout accuracy
    ≈ 0.3 (chance for 3 classes ≈ 0.33), one epoch of online STDP ≈
    0.56, converging ≈ 0.78.  Smoke: 10 lines, 120 presentations —
    0.10 untrained → ≈ 0.77, with snapshot compilation well under a
    second.  Both calibrated at the default seed; the accuracy gates in
    tests/CI pin that seed.
    """
    if smoke:
        n_lines, n_neurons, n_patterns, presentations = 10, 4, 3, 120
    else:
        n_lines, n_neurons, n_patterns, presentations = 12, 4, 3, 200
    _bases, data = embedded_patterns(
        n_lines=n_lines,
        n_patterns=n_patterns,
        presentations=presentations,
        active_lines=max(4, n_lines // 2),
        window=8,
        jitter=1,
        dropout=0.05,
        noise_lines=1,
        seed=seed,
    )
    split = (3 * len(data)) // 4
    classifier = TNNClassifier(
        n_lines,
        config=ClassifierConfig(n_neurons=n_neurons, seed=seed),
    )
    return TrainingScenario(
        name="digits-smoke" if smoke else "digits",
        classifier=classifier,
        train=list(data[:split]),
        holdout=list(data[split:]),
        seed=seed,
    )
