"""Address-Event Representation streams (paper §II.C, Fig. 4).

AER transmits sparse spike data as a stream of (timestamp, address)
events — the convention used by DVS sensors and by the Bichler et al.
trajectory system the paper presents as its scale example.  Since the
paper's original freeway recordings are unavailable, the application
layer (:mod:`repro.apps.trajectory`) synthesizes AER streams; this module
provides the stream container and the windowing that turns a stream into
the per-computation volleys a feedforward TNN consumes.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from ..core.value import INF, Time
from .volley import Volley


@dataclass(frozen=True, order=True)
class AEREvent:
    """One address-event: a spike at *timestamp* from pixel (x, y).

    *polarity* follows the DVS convention: +1 for a brightness increase
    (ON), -1 for a decrease (OFF).
    """

    timestamp: int
    x: int
    y: int
    polarity: int = 1

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError("timestamps must be non-negative")
        if self.polarity not in (-1, 1):
            raise ValueError("polarity must be +1 or -1")


class AERStream:
    """An ordered stream of AER events over a fixed sensor geometry."""

    def __init__(self, width: int, height: int, events: Iterable[AEREvent] = ()):
        if width < 1 or height < 1:
            raise ValueError("sensor must have positive dimensions")
        self.width = width
        self.height = height
        self.events: list[AEREvent] = sorted(events)
        for e in self.events:
            self._check_bounds(e)

    def _check_bounds(self, event: AEREvent) -> None:
        if not (0 <= event.x < self.width and 0 <= event.y < self.height):
            raise ValueError(
                f"event at ({event.x}, {event.y}) outside "
                f"{self.width}x{self.height} sensor"
            )

    @property
    def n_lines(self) -> int:
        """Address space size: one line per pixel per polarity."""
        return self.width * self.height * 2

    def address(self, event: AEREvent) -> int:
        """Flat line index of an event (ON lines first, then OFF)."""
        base = event.y * self.width + event.x
        return base if event.polarity == 1 else base + self.width * self.height

    def append(self, event: AEREvent) -> None:
        self._check_bounds(event)
        if self.events and event.timestamp < self.events[-1].timestamp:
            raise ValueError("events must be appended in time order")
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AEREvent]:
        return iter(self.events)

    @property
    def duration(self) -> int:
        return self.events[-1].timestamp + 1 if self.events else 0

    # -- windowing into volleys ---------------------------------------------
    def window_volley(self, start: int, length: int) -> Volley:
        """The volley of the time window ``[start, start + length)``.

        Each line's spike is its *first* event in the window (TNN rule:
        at most one spike per line per computation), timed relative to the
        window start.
        """
        if length < 1:
            raise ValueError("window length must be at least 1")
        times: list[Time] = [INF] * self.n_lines
        for event in self.events:
            if event.timestamp < start:
                continue
            if event.timestamp >= start + length:
                break
            line = self.address(event)
            if times[line] is INF:
                times[line] = event.timestamp - start
        return Volley(times)

    def volleys(self, window: int, *, stride: int | None = None) -> Iterator[tuple[int, Volley]]:
        """Slice the stream into (window_start, volley) pairs.

        *stride* defaults to *window* (non-overlapping gamma-cycle-like
        frames, per Hopfield's 5–20 ms processing intervals).
        Empty windows are skipped — no volley, no computation.
        """
        step = stride or window
        if step < 1:
            raise ValueError("stride must be at least 1")
        start = 0
        while start < self.duration:
            volley = self.window_volley(start, window)
            if not volley.is_silent:
                yield start, volley
            start += step

    @classmethod
    def from_frames(
        cls,
        frames: Sequence[Sequence[Sequence[float]]],
        *,
        delta: float = 0.1,
        ticks_per_frame: int = 1,
    ) -> "AERStream":
        """Difference-encode a sequence of 2-D intensity frames.

        A pixel whose intensity rises (falls) by at least *delta* between
        consecutive frames emits an ON (OFF) event at the later frame's
        tick.  This is the standard way to synthesize DVS-like data from
        conventional frames.
        """
        if len(frames) < 2:
            raise ValueError("need at least two frames to difference")
        height = len(frames[0])
        width = len(frames[0][0])
        stream = cls(width, height)
        for index in range(1, len(frames)):
            tick = index * ticks_per_frame
            for y in range(height):
                for x in range(width):
                    change = frames[index][y][x] - frames[index - 1][y][x]
                    if change >= delta:
                        stream.append(AEREvent(tick, x, y, polarity=1))
                    elif change <= -delta:
                        stream.append(AEREvent(tick, x, y, polarity=-1))
        return stream
