"""Spike volleys: vectors of information as spike timing (paper Fig. 5).

A *volley* is one spike per line (or no spike, ``∞``), with values encoded
as times relative to the first spike.  The paper's example encodes
``[0, 3, ∞, 1]`` as spikes at those relative offsets.

:class:`Volley` wraps a tuple of times with the operations the paper's
communication model needs: normalization to the local frame of reference,
time-shifting, decoding to values, sparsity and information metrics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from ..core.value import (
    INF,
    Infinity,
    Time,
    check_vector,
    is_normalized,
    normalize,
    shift,
    t_min,
)


class Volley:
    """An immutable spike volley.

    Construct from raw times; use :meth:`from_values` to encode a value
    vector per Fig. 5 (value = relative spike time, ``None`` = no spike).
    """

    __slots__ = ("times",)

    def __init__(self, times: Iterable[Time]):
        object.__setattr__(self, "times", check_vector(times))

    def __setattr__(self, name, value):  # noqa: ANN001
        raise AttributeError("Volley is immutable")

    # -- container protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Time]:
        return iter(self.times)

    def __getitem__(self, index: int) -> Time:
        return self.times[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Volley):
            return self.times == other.times
        if isinstance(other, tuple):
            return self.times == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.times)

    def __repr__(self) -> str:
        cells = ", ".join(str(t) for t in self.times)
        return f"Volley([{cells}])"

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[Optional[int]]) -> "Volley":
        """Encode a value vector: value = spike offset, None = no spike.

        This is the identity encoding of Fig. 5 — the volley carries the
        values directly as relative times.
        """
        return cls(INF if v is None else v for v in values)

    @classmethod
    def silent(cls, n_lines: int) -> "Volley":
        """An all-∞ volley (no spikes at all)."""
        return cls([INF] * n_lines)

    # -- frame of reference -----------------------------------------------------
    @property
    def first_spike(self) -> Time:
        """``t_min`` — the anchor of the volley's frame of reference."""
        return t_min(self.times)

    @property
    def is_silent(self) -> bool:
        return isinstance(self.first_spike, Infinity)

    def normalized(self) -> "Volley":
        """Shift so the first spike is at 0 (silent volleys unchanged)."""
        vec, _ = normalize(self.times)
        return Volley(vec)

    def is_normal(self) -> bool:
        return self.is_silent or is_normalized(self.times)

    def shifted(self, amount: int) -> "Volley":
        """Uniformly delayed (or advanced) copy."""
        return Volley(shift(self.times, amount))

    def decode(self) -> list[Optional[int]]:
        """Back to values: relative offsets, None for absent spikes.

        Inverse of :meth:`from_values` after normalization.
        """
        vec, lo = normalize(self.times)
        return [None if isinstance(v, Infinity) else int(v) for v in vec]

    # -- metrics -------------------------------------------------------------
    @property
    def spike_count(self) -> int:
        return sum(1 for t in self.times if not isinstance(t, Infinity))

    @property
    def sparsity(self) -> float:
        """Fraction of silent lines."""
        if not self.times:
            return 0.0
        return 1.0 - self.spike_count / len(self.times)

    @property
    def span(self) -> int:
        """Time from first to last spike (0 for <=1 spikes)."""
        finite = [t for t in self.times if not isinstance(t, Infinity)]
        if len(finite) < 2:
            return 0
        return max(finite) - min(finite)

    def bits_conveyed(self, resolution_bits: int) -> float:
        """Information upper bound for the Fig. 5 efficiency argument.

        With n-bit time resolution each line conveys up to n bits (plus
        the absent-spike symbol, ignored here as the paper does).  One
        line of the volley is the 0 reference, so a volley of ``s`` spikes
        conveys about ``(s - 1) * n`` bits — "slightly less than one spike
        per n bits".
        """
        if resolution_bits < 1:
            raise ValueError("resolution must be at least 1 bit")
        return max(0, self.spike_count - 1) * resolution_bits

    def spikes_per_bit(self, resolution_bits: int) -> float:
        """Communication cost: spikes per conveyed bit (lower is better)."""
        bits = self.bits_conveyed(resolution_bits)
        if bits == 0:
            return float("inf")
        return self.spike_count / bits


#: The paper's Fig. 5 example volley, encoding the vector [0, 3, ∞, 1].
FIG5_VOLLEY = Volley.from_values([0, 3, None, 1])
