"""Temporal coding: volleys, encoders, AER streams, and coding metrics.

The communication side of the space-time model (§III.A, Fig. 5): how
vectors of values become volleys of precisely timed spikes, how sensors
produce them (AER), and how efficient the code is.
"""

from .aer import AEREvent, AERStream
from .encoders import LatencyEncoder, OnOffEncoder, RankOrderEncoder
from .metrics import (
    CodingEfficiency,
    coding_efficiency,
    coincidence,
    mean_spikes_per_bit,
    temporal_distance,
)
from .volley import FIG5_VOLLEY, Volley

__all__ = [
    "AEREvent",
    "AERStream",
    "CodingEfficiency",
    "FIG5_VOLLEY",
    "LatencyEncoder",
    "OnOffEncoder",
    "RankOrderEncoder",
    "Volley",
    "coding_efficiency",
    "coincidence",
    "mean_spikes_per_bit",
    "temporal_distance",
]
