"""Metrics over volleys: similarity, coding efficiency, timing precision.

Quantifies the paper's communication claims (§III.A): one volley conveys
``(lines - 1) * n`` bits with roughly one spike per n bits; sparse codes
cost fewer spikes; and message time grows as ``2^n`` with resolution —
the reason the model targets 3–4 bit data.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.value import Infinity
from .volley import Volley


def coincidence(a: Volley, b: Volley) -> float:
    """Fraction of lines whose (normalized) spike behaviour matches.

    A line matches when both volleys are silent on it or both spike at
    the same relative offset.  1.0 means identical volleys up to a time
    shift — the invariance-respecting notion of equality.
    """
    if len(a) != len(b):
        raise ValueError("volleys must have the same number of lines")
    if len(a) == 0:
        return 1.0
    na, nb = a.normalized(), b.normalized()
    hits = sum(1 for x, y in zip(na, nb) if x == y)
    return hits / len(a)


def temporal_distance(a: Volley, b: Volley, *, missing_cost: int | None = None) -> float:
    """Mean |Δt| over lines, after normalization.

    Lines where exactly one volley spikes cost *missing_cost* (default:
    the larger volley span + 1, so a missing spike always costs more than
    any timing error).  Lines silent in both cost nothing.
    """
    if len(a) != len(b):
        raise ValueError("volleys must have the same number of lines")
    if len(a) == 0:
        return 0.0
    na, nb = a.normalized(), b.normalized()
    cost = missing_cost if missing_cost is not None else max(a.span, b.span) + 1
    total = 0.0
    for x, y in zip(na, nb):
        x_inf = isinstance(x, Infinity)
        y_inf = isinstance(y, Infinity)
        if x_inf and y_inf:
            continue
        if x_inf or y_inf:
            total += cost
        else:
            total += abs(int(x) - int(y))
    return total / len(a)


@dataclass(frozen=True)
class CodingEfficiency:
    """Cost/benefit summary of a volley encoding at a given resolution."""

    lines: int
    spikes: int
    resolution_bits: int
    bits: float
    message_time: int

    @property
    def spikes_per_bit(self) -> float:
        return self.spikes / self.bits if self.bits else math.inf

    @property
    def bits_per_spike(self) -> float:
        return self.bits / self.spikes if self.spikes else 0.0


def coding_efficiency(volley: Volley, resolution_bits: int) -> CodingEfficiency:
    """Measure a volley per the paper's Fig. 5 efficiency analysis.

    ``message_time`` is the ``2^n`` window needed to express any value at
    the resolution — the exponential cost that limits practical direct
    implementations to 3–4 bits.
    """
    return CodingEfficiency(
        lines=len(volley),
        spikes=volley.spike_count,
        resolution_bits=resolution_bits,
        bits=volley.bits_conveyed(resolution_bits),
        message_time=1 << resolution_bits,
    )


def mean_spikes_per_bit(volleys: Sequence[Volley], resolution_bits: int) -> float:
    """Aggregate spikes-per-bit over a batch of volleys."""
    spikes = sum(v.spike_count for v in volleys)
    bits = sum(v.bits_conveyed(resolution_bits) for v in volleys)
    return spikes / bits if bits else math.inf
