"""Encoders: real-world values → spike volleys.

TNNs consume temporally coded volleys; these encoders produce them from
intensity vectors (images, feature maps) and the test suite's synthetic
data:

* :class:`LatencyEncoder` — the standard temporal code (Thorpe/Guyonneau):
  stronger input ⇒ earlier spike.  Linear mapping onto a ``2^n``-interval
  window with optional silence threshold.
* :class:`RankOrderEncoder` — only the rank of each line matters: the
  strongest line spikes at 0, the next at 1, … (ties share a slot).
* :class:`OnOffEncoder` — difference encoder producing two lines per
  input (ON for increases, OFF for decreases), the DVS-camera convention
  feeding AER systems like the paper's Fig. 4 example.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.value import INF, Time
from .volley import Volley


@dataclass(frozen=True)
class LatencyEncoder:
    """Intensity → latency: strong inputs spike early.

    *resolution_bits* fixes the time window to ``2^bits`` intervals
    (the paper's low-resolution regime: 3–4 bits).  Intensities are
    clamped to ``[0, max_intensity]``; anything at or below
    *silence_threshold* emits no spike.
    """

    resolution_bits: int = 3
    max_intensity: float = 1.0
    silence_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.resolution_bits < 1:
            raise ValueError("resolution_bits must be at least 1")
        if self.max_intensity <= 0:
            raise ValueError("max_intensity must be positive")

    @property
    def window(self) -> int:
        """Number of discrete time slots (``2^bits``)."""
        return 1 << self.resolution_bits

    def encode_one(self, intensity: float) -> Time:
        if intensity <= self.silence_threshold:
            return INF
        clamped = min(max(intensity, 0.0), self.max_intensity)
        fraction = clamped / self.max_intensity
        # Strongest intensity -> time 0; weakest surviving -> window - 1.
        slot = round((1.0 - fraction) * (self.window - 1))
        return int(slot)

    def encode(self, intensities: Sequence[float]) -> Volley:
        return Volley(self.encode_one(v) for v in intensities)

    def decode_one(self, t: Time) -> float:
        """Approximate inverse (mid-slot intensity); ∞ decodes to 0."""
        if t is INF or t == INF:
            return 0.0
        fraction = 1.0 - int(t) / (self.window - 1) if self.window > 1 else 1.0
        return max(0.0, fraction) * self.max_intensity

    def decode(self, volley: Volley) -> list[float]:
        return [self.decode_one(t) for t in volley]


@dataclass(frozen=True)
class RankOrderEncoder:
    """Rank-order code: line rank by intensity becomes its spike time.

    Ties share the same time slot; inputs at or below *silence_threshold*
    stay silent.  The output volley is always normalized (the strongest
    line spikes at 0).
    """

    silence_threshold: float = 0.0

    def encode(self, intensities: Sequence[float]) -> Volley:
        active = [
            (v, i)
            for i, v in enumerate(intensities)
            if v > self.silence_threshold
        ]
        times: list[Time] = [INF] * len(intensities)
        rank = 0
        previous: float | None = None
        for value, index in sorted(active, key=lambda pair: -pair[0]):
            if previous is not None and value < previous:
                rank += 1
            times[index] = rank
            previous = value
        return Volley(times)


@dataclass(frozen=True)
class OnOffEncoder:
    """Temporal-contrast encoder: changes become ON/OFF spikes.

    Compares a frame against the previous one; each input line yields an
    ON line (spike when the value rose by at least *delta*) and an OFF
    line (fell by at least *delta*).  Spike latency encodes the magnitude
    of the change via the inner :class:`LatencyEncoder`.  This mimics the
    DVS sensors feeding AER pipelines (paper Fig. 4).
    """

    delta: float = 0.1
    latency: LatencyEncoder = LatencyEncoder(resolution_bits=3)

    def encode(
        self, previous: Sequence[float], current: Sequence[float]
    ) -> Volley:
        if len(previous) != len(current):
            raise ValueError("frames must have equal length")
        times: list[Time] = []
        for before, after in zip(previous, current):
            change = after - before
            times.append(
                self.latency.encode_one(change) if change >= self.delta else INF
            )
            times.append(
                self.latency.encode_one(-change) if -change >= self.delta else INF
            )
        return Volley(times)
