"""Spike Timing Dependent Plasticity (paper §II.A, §IV.B).

The paper's training story: commonly occurring temporal patterns are
learned as synaptic weight patterns via STDP — inputs that spike before
(and so contribute to) the neuron's output spike are strengthened; inputs
spiking after it are weakened.  After convergence the neuron fires early
on familiar patterns and late or never on unfamiliar ones.

Implemented rules (all integer-weight, low-resolution per §II.A):

* :class:`STDPRule` — classic additive pairwise STDP with an LTP window.
* :class:`FirstSpikeSTDP` — the Guyonneau et al. variant: potentiation
  depends only on spike *order* (earliest inputs win), which drives
  neurons to tune to the earliest spikes of a pattern.

:class:`STDPTrainer` applies a rule to a WTA column with winner-take-all
learning: only the earliest-firing neuron updates, which decorrelates the
neurons and makes them specialize to distinct patterns (Masquelier &
Thorpe's recipe, used by the Fig. 4 system).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from ..core.value import Infinity, Time
from ..coding.volley import Volley
from ..neuron.column import Column
from ..neuron.wta import winners


class LearningRule(Protocol):
    """Anything that can update one neuron's weight row."""

    def update_row(
        self, weights: np.ndarray, inputs: Sequence[Time], t_out: int
    ) -> np.ndarray:
        """Return the updated weight row (must not mutate the input)."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class STDPRule:
    """Classic additive pairwise STDP, integer weights.

    An input spiking within *ltp_window* before (or at) the output spike
    is potentiated by *a_plus*; an input spiking after the output — or
    not at all — is depressed by *a_minus* (depressing silent synapses is
    the standard simplification that bounds weights of never-active
    inputs; disable with ``depress_silent=False``).  Weights clamp to
    ``[w_min, w_max]`` — 3 bits by default, per the paper's resolution
    argument.
    """

    a_plus: int = 1
    a_minus: int = 1
    ltp_window: int = 8
    w_min: int = 0
    w_max: int = 7
    depress_silent: bool = True

    def update_row(
        self, weights: np.ndarray, inputs: Sequence[Time], t_out: int
    ) -> np.ndarray:
        updated = weights.copy()
        for i, t_in in enumerate(inputs):
            if isinstance(t_in, Infinity):
                if self.depress_silent:
                    updated[i] -= self.a_minus
            elif t_out - self.ltp_window <= t_in <= t_out:
                updated[i] += self.a_plus
            elif t_in > t_out:
                updated[i] -= self.a_minus
            # Inputs older than the LTP window neither help nor hurt.
        return np.clip(updated, self.w_min, self.w_max)


@dataclass(frozen=True)
class FirstSpikeSTDP:
    """Order-based STDP (Guyonneau, VanRullen & Thorpe 2005).

    Potentiation is independent of the exact latency: every input that
    spikes no later than the output is potentiated, with the *earliest*
    ``n_strongest`` inputs getting a double update.  The result (their
    theorem) is that the neuron becomes selective to the earliest spikes
    of the pattern regardless of its overall latency.
    """

    a_plus: int = 1
    a_minus: int = 1
    n_strongest: int = 4
    w_min: int = 0
    w_max: int = 7

    def update_row(
        self, weights: np.ndarray, inputs: Sequence[Time], t_out: int
    ) -> np.ndarray:
        updated = weights.copy()
        contributors = [
            (t_in, i)
            for i, t_in in enumerate(inputs)
            if not isinstance(t_in, Infinity) and t_in <= t_out
        ]
        contributors.sort()
        for rank, (_, i) in enumerate(contributors):
            updated[i] += self.a_plus * (2 if rank < self.n_strongest else 1)
        for i, t_in in enumerate(inputs):
            if isinstance(t_in, Infinity) or t_in > t_out:
                updated[i] -= self.a_minus
        return np.clip(updated, self.w_min, self.w_max)


@dataclass
class TrainingStep:
    """What happened on one training volley."""

    winner: Optional[int]
    fire_times: tuple[Time, ...]


class Homeostasis:
    """Adaptive per-neuron thresholds (intrinsic plasticity).

    Plain WTA learning has a failure mode: one neuron wins everything and
    the rest never learn (Bichler et al. and Diehl & Cook counter it with
    adaptive thresholds).  After each win the winner's threshold rises by
    *step*; every neuron's threshold simultaneously relaxes toward its
    base by *decay*.  Frequent winners become harder to excite, giving
    other neurons a chance to claim the remaining patterns.
    """

    def __init__(self, column: Column, *, step: int = 2, decay: int = 1):
        if step < 0 or decay < 0:
            raise ValueError("step and decay must be non-negative")
        self.base = list(column.thresholds)
        self.step = step
        self.decay = decay

    def on_win(self, column: Column, winner: int) -> None:
        for i in range(column.n_neurons):
            current = column.thresholds[i]
            target = current
            if i == winner:
                target = current + self.step
            elif current > self.base[i]:
                target = max(self.base[i], current - self.decay)
            if target != current:
                column.set_threshold(i, target)

    def reset(self, column: Column) -> None:
        """Restore base thresholds (call after training, before inference).

        The adaptive component is a *training-time* decorrelation
        mechanism; evaluating with the inflated thresholds of recent
        winners would just suppress the best-trained neurons.
        """
        for i, base in enumerate(self.base):
            if column.thresholds[i] != base:
                column.set_threshold(i, base)


class STDPTrainer:
    """Unsupervised winner-take-all STDP training of a column."""

    def __init__(
        self,
        column: Column,
        rule: LearningRule | None = None,
        *,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
        homeostasis: Optional[Homeostasis] = None,
    ):
        """*seed* and *rng* both pin the tie-break stream; pass at most one.

        Given the same seed, the same initial column, and the same
        volley sequence, training is bit-reproducible: the only
        nondeterminism in the update path is the tie-break draw, and it
        comes from this stream.  The default (seed 0) keeps historical
        behaviour.
        """
        if rng is not None and seed is not None:
            raise ValueError("pass either rng= or seed=, not both")
        self.column = column
        self.rule = rule or STDPRule()
        self.rng = rng or random.Random(0 if seed is None else seed)
        self.homeostasis = homeostasis
        self.steps_taken = 0

    def train_step(self, volley: Volley | Sequence[Time]) -> TrainingStep:
        """Present one volley; the earliest-firing neuron learns.

        Ties are broken randomly (the biological tie-breaker is noise);
        a silent column learns nothing.
        """
        times = tuple(volley)
        raw = self.column.excitation(times)
        tied = winners(raw)
        if not tied:
            return TrainingStep(winner=None, fire_times=raw)
        winner = tied[0] if len(tied) == 1 else self.rng.choice(tied)
        t_out = raw[winner]
        assert not isinstance(t_out, Infinity)
        matrix = self.column.weights.copy()
        matrix[winner] = self.rule.update_row(matrix[winner], times, int(t_out))
        self.column.set_weights(matrix)
        if self.homeostasis is not None:
            self.homeostasis.on_win(self.column, winner)
        self.steps_taken += 1
        return TrainingStep(winner=winner, fire_times=raw)

    def train(
        self, volleys: Sequence[Volley | Sequence[Time]], *, epochs: int = 1, shuffle: bool = True
    ) -> list[TrainingStep]:
        """Present a dataset for several epochs; returns the step log."""
        log: list[TrainingStep] = []
        for _ in range(epochs):
            order = list(range(len(volleys)))
            if shuffle:
                self.rng.shuffle(order)
            for index in order:
                log.append(self.train_step(volleys[index]))
        return log


def selectivity(column: Column, volleys: Sequence[Volley | Sequence[Time]]) -> dict[int, list[int]]:
    """Which patterns each neuron wins after training.

    Maps neuron index → indices of the volleys it wins; useful to verify
    that training produced specialization (distinct neurons claim distinct
    patterns).
    """
    claims: dict[int, list[int]] = {i: [] for i in range(column.n_neurons)}
    for v_index, volley in enumerate(volleys):
        raw = column.excitation(tuple(volley))
        tied = winners(raw)
        if len(tied) == 1:
            claims[tied[0]].append(v_index)
    return claims
