"""Weight discretization (paper §II.A; Pfeil et al.'s 4-bit claim).

The paper argues that because spike-time resolution is only 2–4 bits,
synaptic weights gain little from higher resolution, citing Pfeil et al.
that 4 bits suffice.  This module provides the quantizer and a behavioral
comparison harness so the claim can be measured on our own columns: fire
times under b-bit weights versus a high-resolution reference.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.value import Infinity, Time
from ..coding.volley import Volley
from ..neuron.column import Column
from ..neuron.response import ResponseFunction


def quantize_weights(
    weights: np.ndarray | Sequence[Sequence[float]],
    *,
    bits: int,
    w_max: float | None = None,
) -> np.ndarray:
    """Quantize a (possibly float) weight matrix to *bits*-bit integers.

    Weights map linearly from ``[0, w_max]`` onto ``[0, 2^bits - 1]``
    with round-to-nearest.  *w_max* defaults to the matrix maximum.
    Negative weights (inhibitory) are clamped to 0 — inhibition is
    modeled by WTA, not by negative synapses, in the paper's TNNs.
    """
    if bits < 1:
        raise ValueError("bits must be at least 1")
    matrix = np.asarray(weights, dtype=np.float64)
    top = float(w_max) if w_max is not None else float(matrix.max(initial=0.0))
    levels = (1 << bits) - 1
    if top <= 0:
        return np.zeros_like(matrix, dtype=np.int64)
    scaled = np.clip(matrix, 0.0, top) / top * levels
    return np.rint(scaled).astype(np.int64)


@dataclass(frozen=True)
class QuantizationReport:
    """Fire-time fidelity of a quantized column vs its reference."""

    bits: int
    volleys_tested: int
    identical_outputs: int
    mean_time_error: float
    winner_agreement: float

    @property
    def output_fidelity(self) -> float:
        return (
            self.identical_outputs / self.volleys_tested
            if self.volleys_tested
            else 1.0
        )


def compare_quantized(
    reference_weights: np.ndarray,
    volleys: Sequence[Volley | Sequence[Time]],
    *,
    bits: int,
    threshold_fraction: float,
    base_response: ResponseFunction | None = None,
) -> QuantizationReport:
    """Measure how a *bits*-bit column tracks a high-resolution reference.

    Both columns use thresholds scaled to the same fraction of their
    maximum possible drive, so the comparison isolates weight resolution.
    Reports exact-output agreement, mean |Δt| over commonly-firing
    neurons, and agreement of the WTA winner — the quantity that actually
    matters for WTA-readout TNNs.
    """
    if not 0.0 < threshold_fraction <= 1.0:
        raise ValueError("threshold_fraction must be in (0, 1]")
    base = base_response or ResponseFunction.biexponential()
    reference = np.asarray(reference_weights, dtype=np.float64)

    def make_column(matrix: np.ndarray) -> Column:
        drive = float(matrix.max(initial=0.0)) * base.r_max * matrix.shape[1]
        threshold = max(1, round(drive * threshold_fraction))
        return Column(
            matrix.astype(np.int64), threshold=threshold, base_response=base
        )

    # Reference: 8-bit quantization of the float weights (fine enough that
    # further resolution does not change integer fire times materially).
    ref_col = make_column(quantize_weights(reference, bits=8))
    quant_col = make_column(quantize_weights(reference, bits=bits))

    identical = 0
    time_errors: list[float] = []
    winner_hits = 0
    total = 0
    for volley in volleys:
        times = tuple(volley)
        ref_out = ref_col.forward(times)
        quant_out = quant_col.forward(times)
        total += 1
        if _same_shape(ref_out, quant_out):
            identical += 1
        for a, b in zip(ref_out, quant_out):
            if not isinstance(a, Infinity) and not isinstance(b, Infinity):
                time_errors.append(abs(int(a) - int(b)))
        if _winner(ref_out) == _winner(quant_out):
            winner_hits += 1
    return QuantizationReport(
        bits=bits,
        volleys_tested=total,
        identical_outputs=identical,
        mean_time_error=(sum(time_errors) / len(time_errors)) if time_errors else 0.0,
        winner_agreement=winner_hits / total if total else 1.0,
    )


def _same_shape(a: tuple[Time, ...], b: tuple[Time, ...]) -> bool:
    """Same firing pattern up to a uniform shift (invariance-aware)."""
    finite_a = [x for x in a if not isinstance(x, Infinity)]
    finite_b = [x for x in b if not isinstance(x, Infinity)]
    if len(finite_a) != len(finite_b):
        return False
    if not finite_a:
        return True
    shift_a, shift_b = min(finite_a), min(finite_b)
    for x, y in zip(a, b):
        x_inf, y_inf = isinstance(x, Infinity), isinstance(y, Infinity)
        if x_inf != y_inf:
            return False
        if not x_inf and x - shift_a != y - shift_b:
            return False
    return True


def _winner(times: tuple[Time, ...]):
    from ..neuron.wta import first_winner

    return first_winner(times)
