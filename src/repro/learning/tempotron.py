"""The tempotron: supervised spike-timing classification (§II.C).

Gütig & Sompolinsky's tempotron is an SRM0 neuron with biexponential
responses trained by a supervised, yet still spike-local, rule: the
neuron should fire on ⊕ patterns and stay silent on ⊖ patterns.  On an
error, weights of the inputs that contributed to the potential at its
peak (⊕ miss: potentiate) or at the erroneous firing time (⊖ false alarm:
depress) are nudged.

This implementation keeps the paper's integer, low-resolution weight
regime: unit updates with clamping.  Multi-class decisions use one
tempotron per class with earliest-spike readout (the Zhao et al. AER
categorization setup).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.value import Infinity, Time, check_vector
from ..neuron.response import ResponseFunction
from ..neuron.srm0 import SRM0Neuron


@dataclass
class TempotronConfig:
    """Hyper-parameters of the tempotron rule."""

    w_min: int = 0
    w_max: int = 7
    a_update: int = 1
    horizon: int = 24  # potential search window after the first input spike


class Tempotron:
    """A binary temporal classifier: fire on ⊕ volleys, silence on ⊖."""

    def __init__(
        self,
        n_inputs: int,
        *,
        threshold: int,
        base_response: Optional[ResponseFunction] = None,
        config: Optional[TempotronConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        if n_inputs < 1:
            raise ValueError("need at least one input")
        self.n_inputs = n_inputs
        self.threshold = threshold
        self.base_response = base_response or ResponseFunction.biexponential()
        self.config = config or TempotronConfig()
        rng = rng or random.Random(0)
        # Mid-range random initial weights: the rule needs some initial
        # activity to correct.
        mid = (self.config.w_min + self.config.w_max) // 2
        self.weights = np.array(
            [max(self.config.w_min, mid + rng.randint(-1, 1)) for _ in range(n_inputs)],
            dtype=np.int64,
        )

    def _neuron(self) -> SRM0Neuron:
        return SRM0Neuron.homogeneous(
            self.n_inputs,
            self.weights.tolist(),
            base_response=self.base_response,
            threshold=self.threshold,
            name="tempotron",
        )

    # -- inference ------------------------------------------------------------
    def fire_time(self, volley: Sequence[Time]) -> Time:
        return self._neuron().fire_time(tuple(volley))

    def predict(self, volley: Sequence[Time]) -> bool:
        """True iff the neuron fires on the volley."""
        return not isinstance(self.fire_time(volley), Infinity)

    def peak_potential_time(self, volley: Sequence[Time]) -> Optional[int]:
        """Time of maximum potential within the horizon (None if silent input).

        Ties — including the flat potential of an all-zero weight vector —
        are broken toward the time with the largest *unweighted* drive
        (sum of raw responses), so a collapsed neuron still potentiates
        the synapses best aligned with the volley and can recover.
        """
        vec = check_vector(tuple(volley))
        finite = [t for t in vec if not isinstance(t, Infinity)]
        if not finite:
            return None
        neuron = self._neuron()
        start = min(finite)
        window = range(start, start + self.config.horizon + 1)

        def drive(t: int) -> int:
            return sum(self.base_response(t - x) for x in finite)

        return max(window, key=lambda t: (neuron.potential(vec, t), drive(t), -t))

    # -- learning ------------------------------------------------------------
    def train_one(self, volley: Sequence[Time], label: bool) -> bool:
        """One tempotron update; returns True if the volley was classified
        correctly (no update needed)."""
        vec = check_vector(tuple(volley))
        t_fire = self.fire_time(vec)
        fired = not isinstance(t_fire, Infinity)
        if fired == label:
            return True
        cfg = self.config
        if label:
            # Miss: potentiate inputs contributing at the potential's peak.
            t_star = self.peak_potential_time(vec)
            if t_star is None:
                return False  # nothing to learn from a silent volley
        else:
            # False alarm: depress inputs contributing at the firing time.
            t_star = int(t_fire)
        # Graded update, as in the original rule: each synapse moves in
        # proportion to its contribution to the potential at t* — this is
        # what lets the rule separate patterns that share active lines and
        # differ only in timing.
        sign = 1 if label else -1
        for i, t_in in enumerate(vec):
            if isinstance(t_in, Infinity):
                continue
            contribution = self.base_response(t_star - t_in)
            if t_in <= t_star and contribution > 0:
                self.weights[i] = int(
                    np.clip(
                        self.weights[i] + sign * cfg.a_update * contribution,
                        cfg.w_min,
                        cfg.w_max,
                    )
                )
        return False

    def train(
        self,
        volleys: Sequence[Sequence[Time]],
        labels: Sequence[bool],
        *,
        epochs: int = 10,
        rng: Optional[random.Random] = None,
        patience: Optional[int] = None,
    ) -> list[float]:
        """Epoch training; returns per-epoch accuracy history.

        Stops early after *patience* consecutive perfect epochs (default:
        stop on the first).
        """
        if len(volleys) != len(labels):
            raise ValueError("one label per volley required")
        rng = rng or random.Random(1)
        history: list[float] = []
        perfect_streak = 0
        needed = patience if patience is not None else 1
        for _ in range(epochs):
            order = list(range(len(volleys)))
            rng.shuffle(order)
            correct = sum(
                1 for i in order if self.train_one(volleys[i], labels[i])
            )
            accuracy = correct / len(volleys) if volleys else 1.0
            history.append(accuracy)
            perfect_streak = perfect_streak + 1 if accuracy == 1.0 else 0
            if perfect_streak >= needed:
                break
        return history

    def accuracy(self, volleys: Sequence[Sequence[Time]], labels: Sequence[bool]) -> float:
        """Classification accuracy without learning."""
        if not volleys:
            return 1.0
        hits = sum(
            1
            for volley, label in zip(volleys, labels)
            if self.predict(volley) == label
        )
        return hits / len(volleys)


@dataclass
class MultiClassTempotron:
    """One tempotron per class; earliest spike decides (Zhao et al.)."""

    tempotrons: list[Tempotron] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        n_classes: int,
        n_inputs: int,
        *,
        threshold: int,
        base_response: Optional[ResponseFunction] = None,
        rng: Optional[random.Random] = None,
    ) -> "MultiClassTempotron":
        rng = rng or random.Random(0)
        return cls(
            [
                Tempotron(
                    n_inputs,
                    threshold=threshold,
                    base_response=base_response,
                    rng=random.Random(rng.randint(0, 2**31)),
                )
                for _ in range(n_classes)
            ]
        )

    @property
    def n_classes(self) -> int:
        return len(self.tempotrons)

    def predict(self, volley: Sequence[Time]) -> Optional[int]:
        """Class of the earliest-firing tempotron (None if all silent)."""
        times = [t.fire_time(volley) for t in self.tempotrons]
        finite = [
            (t, i) for i, t in enumerate(times) if not isinstance(t, Infinity)
        ]
        if not finite:
            return None
        return min(finite)[1]

    def train(
        self,
        volleys: Sequence[Sequence[Time]],
        labels: Sequence[int],
        *,
        epochs: int = 10,
        rng: Optional[random.Random] = None,
    ) -> list[float]:
        """One-vs-rest training; returns per-epoch multi-class accuracy."""
        rng = rng or random.Random(2)
        history: list[float] = []
        for _ in range(epochs):
            order = list(range(len(volleys)))
            rng.shuffle(order)
            for i in order:
                for cls_index, tempotron in enumerate(self.tempotrons):
                    tempotron.train_one(volleys[i], labels[i] == cls_index)
            hits = sum(
                1
                for volley, label in zip(volleys, labels)
                if self.predict(volley) == label
            )
            history.append(hits / len(volleys) if volleys else 1.0)
            if history[-1] == 1.0:
                break
        return history
