"""Supervised latency learning (SpikeProp-style, §II.C).

Bohte et al. trained temporally coded networks by error backpropagation
on *spike times*: the supervision signal is "fire at time T", not just
"fire / don't fire".  This module implements the single-neuron integer
version of that idea — temporal regression under the paper's
low-resolution constraints:

* if the neuron fires **later** than the target (or not at all), weights
  of inputs that would contribute at the target time are potentiated;
* if it fires **earlier**, contributors at the premature firing time are
  depressed;

a signed, timing-targeted variant of the tempotron update.  With a bank
of such neurons an output *volley* can be trained toward a target volley
(:class:`LatencyRegressor`), which is what a SpikeProp output layer does.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.value import INF, Infinity, Time, check_vector
from ..neuron.response import ResponseFunction
from ..neuron.srm0 import SRM0Neuron


@dataclass
class SpikePropConfig:
    """Hyper-parameters of the latency-learning rule."""

    w_min: int = 0
    w_max: int = 15  # 4-bit weights
    tolerance: int = 0  # acceptable |t_actual - t_target|


class LatencyNeuron:
    """One neuron trained to fire at target latencies."""

    def __init__(
        self,
        n_inputs: int,
        *,
        threshold: int,
        base_response: Optional[ResponseFunction] = None,
        config: Optional[SpikePropConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        if n_inputs < 1:
            raise ValueError("need at least one input")
        self.n_inputs = n_inputs
        self.threshold = threshold
        self.base_response = base_response or ResponseFunction.piecewise_linear(
            amplitude=3, rise=2, fall=6
        )
        self.config = config or SpikePropConfig()
        rng = rng or random.Random(0)
        mid = (self.config.w_min + self.config.w_max) // 2
        self.weights = np.array(
            [mid + rng.randint(-1, 1) for _ in range(n_inputs)], dtype=np.int64
        )

    def _neuron(self) -> SRM0Neuron:
        return SRM0Neuron.homogeneous(
            self.n_inputs,
            self.weights.tolist(),
            base_response=self.base_response,
            threshold=self.threshold,
        )

    def fire_time(self, volley: Sequence[Time]) -> Time:
        return self._neuron().fire_time(tuple(volley))

    def error(self, volley: Sequence[Time], target: Time) -> Optional[int]:
        """Signed timing error (actual - target); None when incomparable.

        A silent neuron with a finite target (or vice versa) has no
        finite error — callers treat it as "maximally late/early".
        """
        actual = self.fire_time(volley)
        if isinstance(actual, Infinity) or isinstance(target, Infinity):
            return None
        return int(actual) - int(target)

    def train_one(self, volley: Sequence[Time], target: Time) -> bool:
        """One update toward firing at *target*; True when within tolerance."""
        vec = check_vector(tuple(volley))
        target = INF if isinstance(target, Infinity) else int(target)
        actual = self.fire_time(vec)
        cfg = self.config

        if isinstance(target, Infinity):
            if isinstance(actual, Infinity):
                return True
            self._nudge(vec, int(actual), -1)  # should not fire: depress
            return False

        if isinstance(actual, Infinity):
            self._nudge(vec, target, +1)  # should fire: potentiate at target
            return False

        delta = int(actual) - target
        if abs(delta) <= cfg.tolerance:
            return True
        if delta > 0:
            # Too late: more drive at (and before) the target time.
            self._nudge(vec, target, +1)
        else:
            # Too early: less drive at the premature firing time.
            self._nudge(vec, int(actual), -1)
        return False

    def _nudge(self, vec: tuple[Time, ...], at_time: int, sign: int) -> None:
        cfg = self.config
        for i, t_in in enumerate(vec):
            if isinstance(t_in, Infinity):
                continue
            contribution = self.base_response(at_time - t_in)
            if contribution > 0:
                self.weights[i] = int(
                    np.clip(self.weights[i] + sign, cfg.w_min, cfg.w_max)
                )

    def train(
        self,
        volleys: Sequence[Sequence[Time]],
        targets: Sequence[Time],
        *,
        epochs: int = 30,
        rng: Optional[random.Random] = None,
    ) -> list[float]:
        """Per-epoch fraction of examples within tolerance."""
        if len(volleys) != len(targets):
            raise ValueError("one target per volley required")
        rng = rng or random.Random(1)
        history: list[float] = []
        for _ in range(epochs):
            order = list(range(len(volleys)))
            rng.shuffle(order)
            hits = sum(
                1 for i in order if self.train_one(volleys[i], targets[i])
            )
            history.append(hits / len(volleys) if volleys else 1.0)
            if history[-1] == 1.0:
                break
        return history

    def mean_absolute_error(
        self, volleys: Sequence[Sequence[Time]], targets: Sequence[Time]
    ) -> float:
        """Mean |timing error| over comparable examples (∞ mismatch = max)."""
        errors: list[float] = []
        horizon = self.base_response.t_max + 1
        for volley, target in zip(volleys, targets):
            err = self.error(volley, target)
            if err is None:
                actual = self.fire_time(volley)
                both_silent = isinstance(actual, Infinity) and isinstance(
                    target, Infinity
                )
                errors.append(0.0 if both_silent else float(horizon))
            else:
                errors.append(abs(err))
        return sum(errors) / len(errors) if errors else 0.0


class LatencyRegressor:
    """A bank of latency neurons trained toward target volleys."""

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        *,
        threshold: int,
        base_response: Optional[ResponseFunction] = None,
        config: Optional[SpikePropConfig] = None,
        seed: int = 0,
    ):
        rng = random.Random(seed)
        self.neurons = [
            LatencyNeuron(
                n_inputs,
                threshold=threshold,
                base_response=base_response,
                config=config,
                rng=random.Random(rng.randint(0, 2**31)),
            )
            for _ in range(n_outputs)
        ]

    def forward(self, volley: Sequence[Time]) -> tuple[Time, ...]:
        return tuple(neuron.fire_time(volley) for neuron in self.neurons)

    def train(
        self,
        volleys: Sequence[Sequence[Time]],
        target_volleys: Sequence[Sequence[Time]],
        *,
        epochs: int = 30,
        rng: Optional[random.Random] = None,
    ) -> list[float]:
        """Per-epoch fraction of (example, output) pairs within tolerance."""
        if len(volleys) != len(target_volleys):
            raise ValueError("one target volley per input volley required")
        rng = rng or random.Random(2)
        history: list[float] = []
        total = len(volleys) * len(self.neurons)
        for _ in range(epochs):
            order = list(range(len(volleys)))
            rng.shuffle(order)
            hits = 0
            for i in order:
                targets = tuple(target_volleys[i])
                for neuron, target in zip(self.neurons, targets):
                    if neuron.train_one(volleys[i], target):
                        hits += 1
            history.append(hits / total if total else 1.0)
            if history[-1] == 1.0:
                break
        return history
