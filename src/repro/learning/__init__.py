"""Learning rules for TNNs: STDP variants, the tempotron, quantization.

All rules operate in the paper's low-resolution regime — integer weights
of a few bits — and are local: every update uses only the spike times one
synapse can observe.
"""

from .quantize import QuantizationReport, compare_quantized, quantize_weights
from .stdp import (
    Homeostasis,
    FirstSpikeSTDP,
    STDPRule,
    STDPTrainer,
    TrainingStep,
    selectivity,
)
from .spikeprop import LatencyNeuron, LatencyRegressor, SpikePropConfig
from .tempotron import MultiClassTempotron, Tempotron, TempotronConfig

__all__ = [
    "Homeostasis",
    "FirstSpikeSTDP",
    "LatencyNeuron",
    "LatencyRegressor",
    "MultiClassTempotron",
    "QuantizationReport",
    "STDPRule",
    "STDPTrainer",
    "SpikePropConfig",
    "Tempotron",
    "TempotronConfig",
    "TrainingStep",
    "compare_quantized",
    "quantize_weights",
    "selectivity",
]
