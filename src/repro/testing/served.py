"""Served-vs-direct conformance: the serving layer as a fifth semantics.

The serving stack (batcher → pool → service) re-routes every volley
through admission control, micro-batch coalescing, IPC to a worker
process, and possibly a crash-retry — none of which may change a single
byte of the answer.  This module states that contract the same way the
backend-oracle registry states cross-backend agreement: run the same
volleys through both paths and diff the **canonical response
encodings**.

* the *served* path: one :meth:`~repro.serve.service.TNNService.submit`
  per volley, exactly like independent network clients;
* the *direct* path: one straight
  :func:`~repro.network.compile_plan.evaluate_batch` over the same
  volleys on the registered network.

A response is conformant when ``canonical(ok_response(i, served_row))``
equals ``canonical(ok_response(i, direct_row))`` byte for byte.
Rejections (``deadline``, ``overloaded``) are *not* mismatches — they
are the service's documented failure model — but they are tallied so a
test can assert they only occur when injected.  The suite drives this
harness through worker-crash fault injection
(:meth:`~repro.serve.pool.ProcessWorkerPool.inject_crash`) to prove
retries preserve byte-identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.value import Time
from ..obs import rtrace as _rtrace
from ..runtime.result_cache import RESULT_CACHE
from ..serve.protocol import ServeError, canonical, ok_response


@dataclass
class ServedMismatch:
    """One served response that differed from the direct evaluation."""

    index: int
    volley: tuple
    served_line: Optional[str]
    direct_line: str
    error: Optional[str] = None

    def describe(self) -> str:
        if self.error is not None:
            return f"volley #{self.index} {self.volley}: {self.error}"
        return (
            f"volley #{self.index} {self.volley}: served {self.served_line} "
            f"!= direct {self.direct_line}"
        )


@dataclass
class ServedReport:
    """Outcome of one served-vs-direct sweep."""

    total: int
    ok: int = 0
    mismatches: list[ServedMismatch] = field(default_factory=list)
    rejected: dict[str, int] = field(default_factory=dict)
    #: Flight-recorder dump files written because this sweep failed
    #: (see the *flight_dump* argument of :func:`check_served`).
    flight_paths: list[str] = field(default_factory=list)

    @property
    def byte_identical(self) -> bool:
        """True when every *answered* request matched byte-for-byte."""
        return not self.mismatches

    def summary(self) -> str:
        rejected = ", ".join(
            f"{code}: {count}" for code, count in sorted(self.rejected.items())
        )
        lines = [
            f"served-vs-direct: {self.ok}/{self.total} byte-identical"
            + (f" ({rejected})" if rejected else ""),
        ]
        for mismatch in self.mismatches[:5]:
            lines.append(f"  MISMATCH {mismatch.describe()}")
        if self.flight_paths:
            lines.append(f"  flight recorder dumped: {', '.join(self.flight_paths)}")
        if self.mismatches:
            lines.append("verdict: FAIL")
        else:
            lines.append("verdict: OK")
        return "\n".join(lines)


def check_served(
    service,
    model: str,
    volleys: Sequence[Sequence[Time]],
    *,
    params: Optional[Mapping[str, Time]] = None,
    deadline_s: Optional[float] = None,
    timeout_s: float = 30.0,
    flight_dump: Optional[str] = None,
    repeat: int = 1,
) -> ServedReport:
    """Submit every volley individually and diff against the direct path.

    All requests are submitted up front (so the micro-batcher actually
    coalesces them, exercising the split/merge path) and then awaited;
    the direct reference is computed with one ``evaluate_batch`` call.

    *repeat* sweeps the volley list that many times in one report.
    Rounds are awaited sequentially (requests within a round are still
    submitted up front), so with the service's result cache armed,
    rounds after the first are served from the ``(fingerprint, volley)``
    cache — and every cached response is still byte-checked against the
    direct evaluation, so a stale or corrupted cache entry surfaces as a
    mismatch exactly like a wrong worker answer would.

    *flight_dump* is a path prefix: when the sweep finds a mismatch (and
    request tracing is on, so the recorder has traces to show), the
    flight recorder is dumped to ``<prefix>.jsonl`` +
    ``<prefix>.trace.json`` and the paths attached to the report — so a
    conformance failure arrives with the span-level story of the
    requests that led up to it.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    volleys = [tuple(v) for v in volleys]
    direct = service.direct(model, volleys, params=params)
    report = ServedReport(total=len(volleys) * repeat)

    for round_no in range(repeat):
        futures = []
        for volley in volleys:
            try:
                futures.append(
                    service.submit(
                        model, volley, params=params, deadline_s=deadline_s
                    )
                )
            except ServeError as error:
                futures.append(error)

        for offset, (volley, row, outcome) in enumerate(
            zip(volleys, direct, futures)
        ):
            index = round_no * len(volleys) + offset
            direct_line = canonical(ok_response(index, row))
            if isinstance(outcome, ServeError):
                error: Optional[ServeError] = outcome
                served_row = None
            else:
                try:
                    served_row = outcome.result(timeout=timeout_s)
                    error = None
                except ServeError as exc:
                    served_row = None
                    error = exc
            if error is not None:
                report.rejected[error.code] = (
                    report.rejected.get(error.code, 0) + 1
                )
                continue
            served_line = canonical(ok_response(index, served_row))
            if served_line == direct_line:
                report.ok += 1
            else:
                report.mismatches.append(
                    ServedMismatch(
                        index=index,
                        volley=volley,
                        served_line=served_line,
                        direct_line=direct_line,
                    )
                )
    if report.mismatches and flight_dump:
        try:
            report.flight_paths = _rtrace.FLIGHT.dump_to(
                flight_dump, reason="served-mismatch"
            )
        except OSError:
            pass  # a failed dump must not mask the conformance verdict
    return report


# ---------------------------------------------------------------------------
# Result-cache poisoning (the serving-layer fault class)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CachePoisonFault:
    """Corrupt one cached result row; the byte-check must notice.

    The serving-layer analogue of the :mod:`repro.testing.faults` menu:
    instead of splicing a mutant into a backend, :meth:`inject` reaches
    into the shared :data:`~repro.runtime.result_cache.RESULT_CACHE` and
    perturbs the head spike of one cached output row.  A subsequent
    :func:`check_served` sweep that serves the poisoned entry must
    report a mismatch — proving cached responses travel through the same
    byte-identity gate as freshly computed ones.
    """

    name: str = "result-cache-poison"
    description: str = "corrupt one cached output row in the result cache"

    def inject(self) -> Optional[tuple]:
        """Corrupt one cached row; returns the poisoned key or ``None``.

        ``None`` means the cache held no poisonable entry (empty, or
        only empty rows) — the self-check then counts the fault as not
        applicable rather than undetected.
        """
        return RESULT_CACHE.poison()


@dataclass
class CacheSelfCheckReport:
    """Outcome of one warm → poison → re-sweep cycle."""

    #: The warm-up sweep (result cache cold, every answer computed).
    warm: ServedReport
    #: The post-poison sweep (served from the corrupted cache).
    poisoned: ServedReport
    #: Cache key whose row was corrupted, or ``None`` if nothing
    #: poisonable was cached (the check is then vacuous and not ok).
    poisoned_key: Optional[tuple] = None

    @property
    def detected(self) -> bool:
        """True when the poisoned sweep surfaced at least one mismatch."""
        return self.poisoned_key is not None and not self.poisoned.byte_identical

    @property
    def ok(self) -> bool:
        """Warm sweep byte-identical AND the poison was detected."""
        return self.warm.byte_identical and self.detected

    def summary(self) -> str:
        lines = [
            f"warm sweep: {self.warm.ok}/{self.warm.total} byte-identical",
        ]
        if self.poisoned_key is None:
            lines.append("poison: nothing poisonable was cached")
        else:
            lines.append(
                f"poison: corrupted {self.poisoned_key!r}; post-poison sweep "
                f"found {len(self.poisoned.mismatches)} mismatch(es)"
            )
        lines.append("verdict: OK" if self.ok else "verdict: FAIL")
        return "\n".join(lines)


def run_served_cache_selfcheck(
    service,
    model: str,
    volleys: Sequence[Sequence[Time]],
    *,
    params: Optional[Mapping[str, Time]] = None,
    timeout_s: float = 30.0,
    fault: Optional[CachePoisonFault] = None,
) -> CacheSelfCheckReport:
    """Prove the byte-identity gate catches a corrupted cache entry.

    Three steps against a service whose result cache is armed:

    1. **warm** — one :func:`check_served` sweep fills the result cache;
       every response must be byte-identical (the cache stores only
       verified-correct rows);
    2. **poison** — :meth:`CachePoisonFault.inject` corrupts the head
       spike of one cached row in place;
    3. **re-sweep** — the same volleys again; the corrupted entry is now
       served from cache and the diff against direct evaluation must
       flag it.

    The returned report is ``ok`` only when the warm sweep was clean AND
    the poisoned sweep was *not* byte-identical — i.e. the harness
    demonstrably detects cache corruption rather than silently serving
    it.
    """
    if not getattr(service, "result_cache_enabled", False):
        raise ValueError(
            "run_served_cache_selfcheck needs a service with the result "
            "cache armed (TNNService(result_cache=True))"
        )
    fault = fault or CachePoisonFault()
    warm = check_served(
        service, model, volleys, params=params, timeout_s=timeout_s
    )
    key = fault.inject()
    poisoned = check_served(
        service, model, volleys, params=params, timeout_s=timeout_s
    )
    return CacheSelfCheckReport(warm=warm, poisoned=poisoned, poisoned_key=key)
