"""Greedy shrinking of disagreeing (network, volley) pairs.

When the conformance diff finds a disagreement, the raw witness is a
random many-node network and a many-line volley — useless as a bug
report.  This module reduces it while a caller-supplied *predicate*
("the disagreement still reproduces") stays true:

* **volley shrinking** — line by line, try ``∞`` (remove the spike),
  then ``0``, then repeated halving toward 0;
* **cone extraction** — restrict the network to the single disagreeing
  output and its backward cone (terminals are kept, so the volley shape
  is unchanged);
* **node bypassing** — try to short every compute node out of the
  network by rewiring its consumers to one of its sources, and to drop
  surplus sources from variadic min/max nodes.

All passes iterate to a joint fixpoint, so the result is 1-minimal:
no single remaining simplification preserves the disagreement.  The
minimized pair is then rendered by :func:`emit_regression_test` as a
ready-to-paste pytest module pinning the expected cross-backend
agreement.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Optional

from ..core.value import INF, Infinity, Time
from ..network.blocks import Node
from ..network.graph import Network
from ..network.serialize import dumps
from ..network.validate import strip_dead_nodes
from .oracles import Volley

#: predicate(network, volley) -> True while the disagreement reproduces.
Predicate = Callable[[Network, Volley], bool]


# ---------------------------------------------------------------------------
# Volley shrinking
# ---------------------------------------------------------------------------

def shrink_volley(
    volley: Volley,
    predicate: Callable[[Volley], bool],
) -> Volley:
    """Greedily simplify one volley while *predicate* holds.

    Tries, per line: ``∞`` (drop the spike entirely), ``0`` (the
    earliest spike), then halving the time toward 0.  Every accepted
    move is *strictly* simpler (``∞`` ≻ ``0`` ≻ halving), so the loop
    terminates; it runs until no single-line simplification is accepted.
    """
    current = tuple(volley)
    changed = True
    while changed:
        changed = False
        for index, value in enumerate(current):
            if isinstance(value, Infinity):
                continue  # a silent line is already minimal
            candidates: list[Time] = [INF]
            if value != 0:
                candidates.append(0)
                half = int(value) // 2
                if half != 0:
                    candidates.append(half)
            for candidate in candidates:
                if candidate == value:
                    continue
                trial = tuple(
                    candidate if i == index else v
                    for i, v in enumerate(current)
                )
                if predicate(trial):
                    current = trial
                    changed = True
                    break
    return current


# ---------------------------------------------------------------------------
# Network shrinking
# ---------------------------------------------------------------------------

def restrict_to_output(network: Network, output: str) -> Network:
    """The backward cone of one output (all terminals kept)."""
    if output not in network.outputs:
        raise ValueError(f"no output named {output!r}")
    cone = Network(
        network.nodes,
        {output: network.outputs[output]},
        name=network.name,
    )
    return strip_dead_nodes(cone)


def _bypass(network: Network, node_id: int, src: int) -> Network:
    """Remove *node_id*, rewiring all its readers to *src*."""
    nodes: list[Node] = []
    for node in network.nodes:
        if node.id == node_id:
            continue
        new_id = node.id if node.id < node_id else node.id - 1
        # Redirect reads of the removed node to src, then close the id
        # gap left by the removal.
        sources = tuple(src if s == node_id else s for s in node.sources)
        sources = tuple(s if s < node_id else s - 1 for s in sources)
        nodes.append(
            Node(
                new_id,
                node.kind,
                sources=sources,
                amount=node.amount,
                name=node.name,
                tags=node.tags,
            )
        )
    outputs = {}
    for name, nid in network.outputs.items():
        nid = src if nid == node_id else nid
        outputs[name] = nid if nid < node_id else nid - 1
    return Network(nodes, outputs, name=network.name)


def _drop_source(network: Network, node_id: int, port: int) -> Network:
    """Remove one source from a variadic min/max node."""
    node = network.nodes[node_id]
    sources = tuple(s for p, s in enumerate(node.sources) if p != port)
    nodes = [
        n
        if n.id != node_id
        else Node(n.id, n.kind, sources=sources, amount=n.amount, tags=n.tags)
        for n in network.nodes
    ]
    return Network(nodes, dict(network.outputs), name=network.name)


def shrink_network(
    network: Network,
    volley: Volley,
    predicate: Predicate,
) -> Network:
    """Greedily remove compute nodes while *predicate* holds.

    Candidate moves, tried highest id first: bypass a node with each of
    its sources in turn; drop one source from a min/max of arity ≥ 3.
    Dead nodes are stripped after every accepted move.  Terminals are
    never removed, so the volley keeps its meaning.
    """
    current = strip_dead_nodes(network)
    changed = True
    while changed:
        changed = False
        for node in sorted(
            (n for n in current.nodes if not n.is_terminal),
            key=lambda n: -n.id,
        ):
            accepted = None
            for src in dict.fromkeys(node.sources):
                trial = strip_dead_nodes(_bypass(current, node.id, src))
                if predicate(trial, volley):
                    accepted = trial
                    break
            if accepted is None and node.kind in ("min", "max") and len(node.sources) >= 3:
                for port in range(len(node.sources)):
                    trial = strip_dead_nodes(_drop_source(current, node.id, port))
                    if predicate(trial, volley):
                        accepted = trial
                        break
            if accepted is not None:
                current = accepted
                changed = True
                break
    return current


# ---------------------------------------------------------------------------
# Whole-case minimization
# ---------------------------------------------------------------------------

def minimize_case(
    network: Network,
    volley: Volley,
    predicate: Predicate,
    *,
    output: Optional[str] = None,
    shrink_structure: bool = True,
) -> tuple[Network, Volley]:
    """Reduce a disagreeing pair to a joint fixpoint.

    *predicate* must hold on the input pair; *output*, when given, is the
    disagreeing output to cone-extract first.  ``shrink_structure=False``
    limits the reduction to the volley — used for faults that are tied to
    specific node ids and would be invalidated by structural edits.
    """
    if not predicate(network, volley):
        raise ValueError("predicate does not hold on the initial witness")
    if shrink_structure and output is not None and len(network.outputs) > 1:
        cone = restrict_to_output(network, output)
        if predicate(cone, volley):
            network = cone
    for _ in range(4):  # volley and structure unlock each other; fixpoint fast
        before = (len(network.nodes), volley)
        volley = shrink_volley(volley, lambda v: predicate(network, v))
        if shrink_structure:
            network = shrink_network(network, volley, predicate)
        if (len(network.nodes), volley) == before:
            break
    return network, volley


# ---------------------------------------------------------------------------
# Regression-test emission
# ---------------------------------------------------------------------------

def _format_time(value: Time) -> str:
    return "INF" if isinstance(value, Infinity) else str(int(value))


def format_volley(volley: Volley) -> str:
    """Render a volley as paste-able Python source."""
    body = ", ".join(_format_time(v) for v in volley)
    if len(volley) == 1:
        body += ","
    return f"({body})"


def _format_params(params: Optional[Mapping[str, Time]]) -> str:
    if not params:
        return "{}"
    body = ", ".join(
        f"{name!r}: {_format_time(value)}" for name, value in params.items()
    )
    return "{" + body + "}"


def emit_regression_test(
    network: Network,
    volley: Volley,
    *,
    params: Optional[Mapping[str, Time]] = None,
    title: str = "conformance_repro",
    provenance: str = "",
) -> str:
    """A ready-to-paste pytest module asserting cross-backend agreement.

    The emitted test fails while the disagreement exists and passes once
    the offending backend is fixed — paste it under ``tests/`` to pin
    the fix.
    """
    header = f"# Reproducer emitted by repro.testing ({provenance})." if provenance else "# Reproducer emitted by repro.testing."
    return f'''{header}
from repro.core.value import INF
from repro.network.serialize import loads
from repro.testing.oracles import run_backends

NETWORK_JSON = r"""
{dumps(network)}
"""

VOLLEY = {format_volley(volley)}
PARAMS = {_format_params(params)}


def test_{title}():
    network = loads(NETWORK_JSON)
    run = run_backends(network, [VOLLEY], params=PARAMS or None)
    outputs = {{
        name: rows[0] for name, rows in run.results.items() if rows[0] is not None
    }}
    assert len(set(outputs.values())) == 1, f"backends disagree: {{outputs}}"
'''


def emit_mutant_test(
    original: Network,
    mutant: Network,
    volley: Volley,
    *,
    params: Optional[Mapping[str, Time]] = None,
    title: str = "mutant_killed",
    provenance: str = "",
) -> str:
    """A pytest module asserting the harness keeps killing a mutant.

    Pins that *original* and *mutant* observably differ on *volley* —
    i.e. the fault-injection self-check stays meaningful.
    """
    header = f"# Mutant reproducer emitted by repro.testing ({provenance})." if provenance else "# Mutant reproducer emitted by repro.testing."
    return f'''{header}
from repro.core.value import INF
from repro.network.serialize import loads
from repro.testing.oracles import InterpretedOracle, saturate_outputs

ORIGINAL_JSON = r"""
{dumps(original)}
"""

MUTANT_JSON = r"""
{dumps(mutant)}
"""

VOLLEY = {format_volley(volley)}
PARAMS = {_format_params(params)}


def test_{title}():
    oracle = InterpretedOracle()
    healthy = saturate_outputs(
        oracle.run(loads(ORIGINAL_JSON), [VOLLEY], params=PARAMS or None)[0]
    )
    faulty = saturate_outputs(
        oracle.run(loads(MUTANT_JSON), [VOLLEY], params=PARAMS or None)[0]
    )
    assert healthy != faulty, "mutant became equivalent; pick a new witness"
'''
