"""Fault injection: mutants that the conformance diff must catch.

A differential harness is only as good as its ability to *notice* a
broken backend, so this module manufactures broken backends on purpose:

* **volley faults** — spike jitter (which can push a near-sentinel time
  past ``∞``), dropped lines (stuck-at-``∞``) and stuck-at-0 lines,
  applied to the volleys one victim backend sees;
* **network mutants** — structural edits (min↔max swap, ``inc`` amount
  drift, ``lt`` operand swap, source rewires) applied to the network one
  victim backend evaluates;
* **plan faults** — a compiled plan whose level schedule is reordered so
  an instruction group runs before its producer, modelling a broken
  compiler pass.

Each fault is packaged as a :class:`FaultedOracle` — a
:class:`~repro.testing.oracles.BackendOracle` impersonating its victim —
so the ordinary conformance diff is the detector.  The self-check in
:mod:`repro.testing.conformance` injects every :data:`FAULT_CLASSES`
entry and requires the diff to flag it: a harness that cannot kill these
mutants has no teeth.

All faults are deterministic functions of their seed; jitter offsets
depend only on ``(seed, line index)`` so a volley can be shrunk without
the fault shifting under the shrinker.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..core.value import INF, Infinity, Time
from ..native.plan import NativePlan, _execute_kernels, _kernel_reads
from ..network.blocks import Node
from ..network.compile_plan import (
    INF_I64,
    MAX_FINITE,
    CompiledPlan,
    _ConstGroup,
    _IncGroup,
    _LtGroup,
    _ReduceGroup,
    encode_volleys,
)
from ..network.graph import Network
from .oracles import BackendOracle, CompiledBatchOracle, Outputs, Volley

# ---------------------------------------------------------------------------
# Volley faults
# ---------------------------------------------------------------------------

def jitter_volley(volley: Volley, *, jitter: int, seed: int) -> Volley:
    """Perturb each finite spike by a deterministic per-line offset.

    Offsets depend only on ``(seed, line index)``, never on the spike
    value, so shrinking a volley keeps the fault stable.  Times pushed
    below 0 clamp; times pushed past
    :data:`~repro.network.compile_plan.MAX_FINITE` saturate to ``∞`` —
    the sentinel boundary behaviour the regression tests pin down.
    """
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    out: list[Time] = []
    for index, value in enumerate(volley):
        if isinstance(value, Infinity):
            out.append(INF)
            continue
        offset = random.Random(seed ^ (index * 0x9E3779B1)).randint(-jitter, jitter)
        moved = int(value) + offset
        out.append(INF if moved > MAX_FINITE else max(0, moved))
    return tuple(out)


def drop_lines(volley: Volley, lines: Sequence[int]) -> Volley:
    """Stuck-at-``∞``: the listed lines never spike."""
    dead = set(lines)
    return tuple(INF if i in dead else v for i, v in enumerate(volley))


def stuck_at_zero(volley: Volley, lines: Sequence[int]) -> Volley:
    """Stuck-at-0: the listed lines always spike immediately."""
    stuck = set(lines)
    return tuple(0 if i in stuck else v for i, v in enumerate(volley))


# ---------------------------------------------------------------------------
# Network mutants
# ---------------------------------------------------------------------------

def _rebuild(network: Network, replacements: dict[int, Node]) -> Network:
    """A structurally edited copy of *network* (same ids, same outputs)."""
    nodes = [replacements.get(n.id, n) for n in network.nodes]
    return Network(nodes, dict(network.outputs), name=f"{network.name}*")


def mutate_min_max_swap(
    network: Network, rng: random.Random
) -> Optional[tuple[Network, str]]:
    """Flip one min into a max (or vice versa): first vs last arrival."""
    candidates = [
        n for n in network.nodes
        if n.kind in ("min", "max") and len(n.sources) >= 2
    ]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    flipped = "max" if victim.kind == "min" else "min"
    mutant = _rebuild(network, {victim.id: replace(victim, kind=flipped)})
    return mutant, f"node {victim.id}: {victim.kind} -> {flipped}"


def mutate_inc_amount(
    network: Network, rng: random.Random
) -> Optional[tuple[Network, str]]:
    """Drift one delay by ±1 unit time (never below 1)."""
    candidates = [n for n in network.nodes if n.kind == "inc"]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    amount = victim.amount + (1 if victim.amount == 1 else rng.choice((-1, 1)))
    mutant = _rebuild(network, {victim.id: replace(victim, amount=amount)})
    return mutant, f"node {victim.id}: inc +{victim.amount} -> +{amount}"


def mutate_lt_swap(
    network: Network, rng: random.Random
) -> Optional[tuple[Network, str]]:
    """Swap an ``lt`` race's operands: a≺b becomes b≺a."""
    candidates = [
        n for n in network.nodes
        if n.kind == "lt" and n.sources[0] != n.sources[1]
    ]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    a, b = victim.sources
    mutant = _rebuild(network, {victim.id: replace(victim, sources=(b, a))})
    return mutant, f"node {victim.id}: lt{(a, b)} -> lt{(b, a)}"


def mutate_rewire(
    network: Network, rng: random.Random
) -> Optional[tuple[Network, str]]:
    """Reroute one source wire of a compute node to another earlier node."""
    candidates = [
        n for n in network.nodes if n.sources and n.id >= 2
    ]
    rng.shuffle(candidates)
    for victim in candidates:
        port = rng.randrange(len(victim.sources))
        options = [i for i in range(victim.id) if i != victim.sources[port]]
        if not options:
            continue
        new_src = rng.choice(options)
        sources = tuple(
            new_src if p == port else s for p, s in enumerate(victim.sources)
        )
        mutant = _rebuild(network, {victim.id: replace(victim, sources=sources)})
        return mutant, (
            f"node {victim.id}: source[{port}] "
            f"{victim.sources[port]} -> {new_src}"
        )
    return None


#: Structural mutation operators, tried in random order by :func:`random_mutant`.
NETWORK_MUTATIONS: tuple[Callable[[Network, random.Random], Optional[tuple[Network, str]]], ...] = (
    mutate_min_max_swap,
    mutate_inc_amount,
    mutate_lt_swap,
    mutate_rewire,
)


def random_mutant(
    network: Network, rng: random.Random
) -> Optional[tuple[Network, str]]:
    """Apply the first applicable mutation, drawn in random order.

    Returns ``(mutant, description)`` or ``None`` when no operator
    applies (e.g. a pure wire network).  Note a structural mutant may
    still be *semantically* equivalent on some volleys — the self-check
    retries across seeds rather than assuming every mutant is killable.
    """
    operators = list(NETWORK_MUTATIONS)
    rng.shuffle(operators)
    for operator in operators:
        outcome = operator(network, rng)
        if outcome is not None:
            return outcome
    return None


# ---------------------------------------------------------------------------
# Faulted oracles
# ---------------------------------------------------------------------------

class FaultedOracle(BackendOracle):
    """A victim backend with a fault spliced into its inputs.

    Wraps any oracle and transforms the network and/or the volleys it
    sees; everything else (support checks, output shape) is delegated,
    so the conformance diff treats it exactly like a real backend.
    """

    def __init__(
        self,
        victim: BackendOracle,
        *,
        label: str,
        network_transform: Optional[Callable[[Network], Network]] = None,
        volley_transform: Optional[Callable[[Volley], Volley]] = None,
    ):
        self.victim = victim
        self.name = f"{victim.name}!{label}"
        self.network_transform = network_transform
        self.volley_transform = volley_transform

    def _network(self, network: Network) -> Network:
        if self.network_transform is None:
            return network
        return self.network_transform(network)

    def supports_network(self, network: Network) -> Optional[str]:
        return self.victim.supports_network(self._network(network))

    def supports_volley(self, volley: Volley) -> bool:
        return self.victim.supports_volley(volley)

    def run(self, network, volleys, params=None):
        network = self._network(network)
        if self.volley_transform is not None:
            volleys = [self.volley_transform(v) for v in volleys]
        return self.victim.run(network, volleys, params=params)

    def trace(self, network, volley, params=None):
        # The mutant's view of the world: trace through the fault, so a
        # divergence report shows *where* the corruption first surfaces.
        network = self._network(network)
        if self.volley_transform is not None:
            volley = self.volley_transform(volley)
        return self.victim.trace(network, volley, params=params)


class PlanReorderOracle(BackendOracle):
    """The compiled engine with a corrupted level schedule.

    Compiles a fresh (uncached) plan, finds an instruction group that
    consumes another group's outputs, and swaps the two — the scheduling
    bug a broken level-fusion pass would introduce.  The value buffer is
    zero-initialized so the corruption is deterministic: the consumer
    reads zeros instead of its producer's times.
    """

    name = "compiled-batch!plan-reorder"

    @staticmethod
    def _group_reads(group) -> set[int]:
        if isinstance(group, _IncGroup):
            return set(group.srcs.tolist())
        if isinstance(group, _ReduceGroup):
            return set(group.srcs.ravel().tolist())
        if isinstance(group, _LtGroup):
            return set(group.a.tolist()) | set(group.b.tolist())
        return set()

    @classmethod
    def _dependent_pair(cls, groups) -> Optional[tuple[int, int]]:
        for i, producer in enumerate(groups):
            made = set(producer.ids.tolist())
            for j in range(i + 1, len(groups)):
                if made & cls._group_reads(groups[j]):
                    return i, j
        return None

    def supports_network(self, network: Network) -> Optional[str]:
        plan = CompiledPlan(network)
        if self._dependent_pair(plan.groups) is None:
            return "plan has no dependent instruction pair to reorder"
        return None

    def run(self, network, volleys, params=None):
        from ..network.compile_plan import _encode_params, decode_matrix

        plan = CompiledPlan(network)  # fresh: never poison the real cache
        pair = self._dependent_pair(plan.groups)
        if pair is None:
            raise RuntimeError("no dependent pair; supports_network lied")
        i, j = pair
        groups = list(plan.groups)
        groups[i], groups[j] = groups[j], groups[i]

        matrix = encode_volleys(
            [tuple(v) for v in volleys], arity=len(network.input_ids)
        )
        values = np.zeros((matrix.shape[0], plan.n_nodes), dtype=np.int64)
        if plan.input_ids.size:
            values[:, plan.input_ids] = matrix
        if plan.param_ids.size:
            values[:, plan.param_ids] = _encode_params(network, params)
        for group in groups:
            if isinstance(group, _IncGroup):
                gathered = values[:, group.srcs]
                np.minimum(gathered, group.caps, out=gathered)
                gathered += group.amounts
                values[:, group.ids] = gathered
            elif isinstance(group, _ReduceGroup):
                gathered = values[:, group.srcs]
                values[:, group.ids] = (
                    gathered.min(axis=2) if group.is_min else gathered.max(axis=2)
                )
            elif isinstance(group, _LtGroup):
                a = values[:, group.a]
                b = values[:, group.b]
                values[:, group.ids] = np.where(a < b, a, INF_I64)
            else:
                values[:, group.ids] = group.value
        out = values[:, plan.output_ids]
        return [tuple(row) for row in decode_matrix(out)]


class NativeKernelReorderOracle(BackendOracle):
    """The native engine with a corrupted kernel schedule.

    The native analog of :class:`PlanReorderOracle`: builds a fresh
    (uncached) :class:`~repro.native.NativePlan`, finds a kernel that
    consumes another kernel's arena rows, swaps the two, and executes
    the corrupted list through the *same* shared kernel interpreter the
    real plan uses — so the only difference the diff can attribute is
    the schedule.  The arena is zero-initialized for determinism (the
    consumer reads zeros instead of its producer's times); constant
    rows are still filled, as they are at real arena allocation, since
    they are not part of the kernel schedule being corrupted.
    """

    name = "native!kernel-reorder"

    @staticmethod
    def _dependent_pair(kernels) -> Optional[tuple[int, int]]:
        for i, producer in enumerate(kernels):
            made = set(range(producer.lo, producer.hi))
            for j in range(i + 1, len(kernels)):
                if made & _kernel_reads(kernels[j]):
                    return i, j
        return None

    def supports_network(self, network: Network) -> Optional[str]:
        plan = NativePlan(network)
        if self._dependent_pair(plan.kernels) is None:
            return "native plan has no dependent kernel pair to reorder"
        return None

    def run(self, network, volleys, params=None):
        from ..network.compile_plan import _encode_params, decode_matrix

        plan = NativePlan(network)  # fresh: never poison the real cache
        pair = self._dependent_pair(plan.kernels)
        if pair is None:
            raise RuntimeError("no dependent pair; supports_network lied")
        i, j = pair
        kernels = list(plan.kernels)
        kernels[i], kernels[j] = kernels[j], kernels[i]

        matrix = encode_volleys(
            [tuple(v) for v in volleys], arity=plan.n_inputs
        )
        batch = matrix.shape[0]
        arena = np.zeros((plan.n_cols, batch), dtype=np.int64)
        for fill in plan.const_fills:
            arena[fill.lo:fill.hi] = fill.value
        arena[: plan.n_inputs] = matrix.T
        if plan.n_params:
            arena[plan.n_inputs:plan.n_inputs + plan.n_params] = (
                _encode_params(network, params)[:, np.newaxis]
            )
        s1 = np.empty((plan.max_gather, batch), dtype=np.int64)
        s2 = np.empty((plan.max_gather, batch), dtype=np.int64)
        mask = np.empty((plan.max_gather, batch), dtype=bool)
        _execute_kernels(kernels, arena, s1, s2, mask)
        out = arena[plan.out_cols].T
        return [tuple(row) for row in decode_matrix(out)]


# ---------------------------------------------------------------------------
# Fault classes (the self-check menu)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultClass:
    """One family of injectable faults.

    ``build(case, rng)`` returns a faulted oracle for the case, or
    ``None`` when the fault does not apply (e.g. no ``inc`` node to
    drift); the self-check then tries another seed.
    """

    name: str
    description: str
    build: Callable[..., Optional[BackendOracle]]


def fault_classes(
    victim_factory: Callable[[], BackendOracle] = CompiledBatchOracle,
    *,
    plan_reorder: Callable[[], BackendOracle] = PlanReorderOracle,
) -> tuple[FaultClass, ...]:
    """The five-family self-check menu, parameterized by the victim.

    *victim_factory* builds the backend the volley/network faults are
    spliced into; *plan_reorder* builds the schedule-corruption oracle
    (each engine has its own: :class:`PlanReorderOracle` for the
    compiled int64 plan, :class:`NativeKernelReorderOracle` for the
    native kernel list).  The default menu — :data:`FAULT_CLASSES` —
    victimizes the compiled batch engine; the native conformance tests
    rebuild the menu around :class:`~repro.testing.oracles.NativeOracle`
    to prove the harness keeps its teeth with the fifth backend
    participating.
    """

    def build_network_mutation(case, rng: random.Random):
        outcome = random_mutant(case.network, rng)
        if outcome is None:
            return None
        mutant, description = outcome
        return FaultedOracle(
            victim_factory(),
            label=f"mutant({description})",
            network_transform=lambda _net: mutant,
        )

    def build_plan_reorder(case, rng: random.Random):
        oracle = plan_reorder()
        if oracle.supports_network(case.network) is not None:
            return None
        return oracle

    def build_spike_jitter(case, rng: random.Random):
        seed = rng.randrange(2**31)
        jitter = rng.randint(1, 3)
        return FaultedOracle(
            victim_factory(),
            label=f"jitter(±{jitter},seed={seed})",
            volley_transform=lambda v: jitter_volley(v, jitter=jitter, seed=seed),
        )

    def build_line_drop(case, rng: random.Random):
        line = rng.randrange(len(case.network.input_names))
        return FaultedOracle(
            victim_factory(),
            label=f"drop(line={line})",
            volley_transform=lambda v: drop_lines(v, [line]),
        )

    def build_stuck_at_zero(case, rng: random.Random):
        line = rng.randrange(len(case.network.input_names))
        return FaultedOracle(
            victim_factory(),
            label=f"stuck0(line={line})",
            volley_transform=lambda v: stuck_at_zero(v, [line]),
        )

    return (
        FaultClass(
            "network-mutation",
            "structural mutant (min/max swap, inc drift, lt swap, rewire) "
            "in the network one backend evaluates",
            build_network_mutation,
        ),
        FaultClass(
            "plan-reorder",
            "engine executed with a dependent instruction pair swapped",
            build_plan_reorder,
        ),
        FaultClass(
            "spike-jitter",
            "victim backend sees volleys with deterministic per-line jitter",
            build_spike_jitter,
        ),
        FaultClass(
            "line-drop",
            "one input line stuck at ∞ for the victim backend",
            build_line_drop,
        ),
        FaultClass(
            "stuck-at-zero",
            "one input line stuck at 0 for the victim backend",
            build_stuck_at_zero,
        ),
    )


#: Every fault family the self-check must detect (compiled-engine victims).
FAULT_CLASSES: tuple[FaultClass, ...] = fault_classes()
