"""The differential conformance engine and fault-injection self-check.

Ties the subsystem together:

1. :func:`diff_backends` — run every registered backend over a volley
   batch and report the volleys where any two backends' canonical
   (sentinel-saturated) outputs differ;
2. :func:`run_conformance` — sweep seeded random cases
   (:func:`repro.testing.generators.generate_case`) through the diff,
   shrinking every disagreement to a minimal reproducer with an emitted
   regression test;
3. :func:`run_fault_selfcheck` — inject every fault class from
   :data:`repro.testing.faults.FAULT_CLASSES` into a victim backend and
   require the diff to catch it, shrinking the witness volley.  A sweep
   that reports "all clean" is only trustworthy alongside a self-check
   that reports "all mutants killed".

``python -m repro conformance --seed N --count K [--smoke]`` is the CLI
face of :func:`run_conformance`; the CI smoke job runs it on every PR.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..core.value import Time
from ..network.graph import Network
from ..obs.trace import Divergence, TraceEvent, first_divergence
from .faults import FAULT_CLASSES, FaultClass
from .generators import ConformanceCase, generate_case
from .oracles import (
    BackendOracle,
    BackendRun,
    InterpretedOracle,
    Outputs,
    Volley,
    default_oracles,
    run_backends,
    saturate_outputs,
)
from .shrink import (
    emit_mutant_test,
    emit_regression_test,
    format_volley,
    minimize_case,
    shrink_volley,
)

#: Disagreements reported per case before moving on (shrinking is slow).
MAX_MISMATCHES_PER_CASE = 3


@dataclass
class Mismatch:
    """One volley where two backends' canonical outputs differ."""

    case_name: str
    seed: int
    volley: Volley
    outputs: dict[str, Outputs]
    minimized_volley: Optional[Volley] = None
    minimized_network: Optional[Network] = None
    regression_test: Optional[str] = None
    #: Canonical spike traces of the two disagreeing backends on the
    #: original (network, volley), keyed by backend name; absent when a
    #: backend cannot trace the case.
    traces: dict[str, list[TraceEvent]] = field(default_factory=dict)
    #: First node where the two traces split — the root-cause pointer.
    divergence: Optional[Divergence] = None

    def __str__(self) -> str:
        witness = self.minimized_volley or self.volley
        parts = "; ".join(
            f"{name}->{out}" for name, out in sorted(self.outputs.items())
        )
        text = f"{self.case_name} at {format_volley(witness)}: {parts}"
        if self.divergence is not None:
            left, right = sorted(self.traces)
            text += f" [{self.divergence.describe(left, right)}]"
        return text


@dataclass
class FaultDetection:
    """Outcome of injecting one fault class."""

    fault: str
    detected: bool
    attempts: int
    case_name: str = ""
    oracle_name: str = ""
    witness: Optional[Volley] = None
    regression_test: Optional[str] = None
    #: Rendered :meth:`~repro.obs.trace.Divergence.describe` of the
    #: healthy vs faulted trace — names the first divergent node.
    divergence: Optional[str] = None

    def __str__(self) -> str:
        if not self.detected:
            return f"{self.fault}: NOT DETECTED after {self.attempts} attempt(s)"
        text = (
            f"{self.fault}: detected on {self.case_name} via "
            f"{self.oracle_name}, minimal witness {format_volley(self.witness)}"
        )
        if self.divergence is not None:
            text += f" [{self.divergence}]"
        return text


@dataclass
class FaultSelfCheckReport:
    """Detection record for every injected fault class."""

    detections: list[FaultDetection] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(d.detected for d in self.detections)

    def __str__(self) -> str:
        status = "all killed" if self.ok else "MUTANTS SURVIVED"
        lines = [f"fault self-check ({status}):"]
        lines.extend(f"  {d}" for d in self.detections)
        return "\n".join(lines)


@dataclass
class ConformanceReport:
    """Everything one conformance sweep learned."""

    seed: int
    count: int
    cases: int = 0
    volleys_checked: int = 0
    comparisons: int = 0
    skips: dict[str, int] = field(default_factory=dict)
    skip_reasons: dict[str, str] = field(default_factory=dict)
    mismatches: list[Mismatch] = field(default_factory=list)
    fault_report: Optional[FaultSelfCheckReport] = None

    @property
    def ok(self) -> bool:
        clean = not self.mismatches
        faults_ok = self.fault_report.ok if self.fault_report else True
        return clean and faults_ok

    def summary(self) -> str:
        lines = [
            f"conformance sweep: seeds {self.seed}..{self.seed + self.count - 1}",
            f"  {self.cases} case(s), {self.volleys_checked} volley(s), "
            f"{self.comparisons} backend comparison(s)",
        ]
        for name, skipped in sorted(self.skips.items()):
            reason = self.skip_reasons.get(name, "")
            lines.append(f"  skipped {name} on {skipped} case(s) ({reason})")
        if self.mismatches:
            lines.append(f"  {len(self.mismatches)} DISAGREEMENT(S):")
            lines.extend(f"    {m}" for m in self.mismatches)
        else:
            lines.append("  zero cross-backend disagreements")
        if self.fault_report is not None:
            lines.append(str(self.fault_report))
        lines.append("verdict: " + ("OK" if self.ok else "FAIL"))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

def find_disagreements(run: BackendRun) -> list[tuple[int, dict[str, Outputs]]]:
    """Volley indices where the supporting backends do not all agree."""
    found: list[tuple[int, dict[str, Outputs]]] = []
    for index in range(len(run.volleys)):
        outputs = {
            name: rows[index]
            for name, rows in run.results.items()
            if rows[index] is not None
        }
        if len(outputs) >= 2 and len(set(outputs.values())) > 1:
            found.append((index, outputs))
    return found


def diff_backends(
    network: Network,
    volleys: Sequence[Volley],
    *,
    params: Optional[Mapping[str, Time]] = None,
    oracles: Optional[Sequence[BackendOracle]] = None,
    optimize: bool = False,
) -> tuple[BackendRun, list[tuple[int, dict[str, Outputs]]]]:
    """Run the backends and return ``(raw run, disagreement list)``.

    ``optimize=True`` lowers the network through the IR pass pipeline
    once and diffs the backends on the shared optimized
    :class:`~repro.ir.program.Program` instead of the raw network.
    """
    run = run_backends(
        network, volleys, params=params, oracles=oracles, optimize=optimize
    )
    return run, find_disagreements(run)


def _disagreeing_output(
    network: Network, outputs: dict[str, Outputs]
) -> Optional[str]:
    """Name of the first output column whose values differ across backends."""
    rows = list(outputs.values())
    for column, out_name in enumerate(network.output_names):
        if len({row[column] for row in rows}) > 1:
            return out_name
    return None


def attach_divergence(
    mismatch: Mismatch,
    network: Network,
    oracles: Sequence[BackendOracle],
    params: Optional[Mapping[str, Time]],
) -> None:
    """Trace the two disagreeing backends and record where they split.

    Picks the first pair of backends in *mismatch.outputs* with unequal
    canonical outputs, traces each on the original (network, volley),
    and stores the traces plus the first divergent node.  Backends that
    cannot trace the case (``trace()`` → ``None``) leave the mismatch
    without a divergence — the output-level diff still stands.
    """
    by_name = {o.name: o for o in oracles}
    names = sorted(mismatch.outputs)
    pair: Optional[tuple[str, str]] = None
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if mismatch.outputs[a] != mismatch.outputs[b]:
                pair = (a, b)
                break
        if pair:
            break
    if pair is None:  # pragma: no cover - callers pass real disagreements
        return
    traces: dict[str, list] = {}
    for name in pair:
        oracle = by_name.get(name)
        trace = (
            oracle.trace(network, mismatch.volley, params=params)
            if oracle is not None
            else None
        )
        if trace is None:
            return
        traces[name] = trace
    mismatch.traces = traces
    mismatch.divergence = first_divergence(traces[pair[0]], traces[pair[1]])


def _still_disagrees(
    oracles: Sequence[BackendOracle],
    params: Optional[Mapping[str, Time]],
    *,
    optimize: bool = False,
) -> "callable":
    """A shrink predicate: the backends still split on (network, volley)."""

    def predicate(network: Network, volley: Volley) -> bool:
        _, found = diff_backends(
            network, [volley], params=params, oracles=oracles,
            optimize=optimize,
        )
        return bool(found)

    return predicate


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

def run_case(
    case: ConformanceCase,
    *,
    oracles: Optional[Sequence[BackendOracle]] = None,
    shrink: bool = True,
    optimize: bool = False,
) -> tuple[BackendRun, list[Mismatch]]:
    """Diff one generated case, shrinking any disagreements found.

    With ``optimize=True`` all backends consume the same pass-optimized
    :class:`~repro.ir.program.Program`; divergence tracing then runs on
    that shared program and shrinking re-optimizes each candidate, so
    the minimized reproducer still splits the *optimized* backends.
    """
    oracles = list(oracles) if oracles is not None else default_oracles()
    params = case.params or None
    run, found = diff_backends(
        case.network, case.volleys, params=params, oracles=oracles,
        optimize=optimize,
    )
    traced = run.program if run.program is not None else case.network
    mismatches: list[Mismatch] = []
    for index, outputs in found[:MAX_MISMATCHES_PER_CASE]:
        mismatch = Mismatch(
            case_name=case.name,
            seed=case.seed,
            volley=run.volleys[index],
            outputs=outputs,
        )
        attach_divergence(mismatch, traced, oracles, params)
        if shrink:
            predicate = _still_disagrees(oracles, params, optimize=optimize)
            network, volley = minimize_case(
                case.network,
                run.volleys[index],
                predicate,
                output=_disagreeing_output(case.network, outputs),
                # Parameter bindings reference terminals by name, which
                # structural shrinking preserves (terminals are pinned).
            )
            mismatch.minimized_network = network
            mismatch.minimized_volley = volley
            mismatch.regression_test = emit_regression_test(
                network,
                volley,
                params=case.params,
                title=f"conformance_seed{case.seed}",
                provenance=case.name,
            )
        mismatches.append(mismatch)
    return run, mismatches


def run_conformance(
    seed: int = 0,
    count: int = 50,
    *,
    smoke: bool = False,
    include_grl: bool = True,
    with_faults: bool = True,
    shrink: bool = True,
    optimize: bool = False,
    family: Optional[str] = None,
    oracles: Optional[Sequence[BackendOracle]] = None,
) -> ConformanceReport:
    """Sweep *count* seeded cases and (optionally) the fault self-check.

    The acceptance gate for the repository: clean networks must produce
    **zero** cross-backend disagreements while every injected fault
    class is detected.  ``smoke=True`` shrinks case sizes and volley
    counts for CI.  ``optimize=True`` runs the sweep on the IR
    pass-pipeline output instead of the raw networks — the same gate,
    now also certifying the optimizer.  (The fault self-check always
    runs unoptimized: its mutants are Network-level edits.)  *family*
    pins every case to one generator family (e.g. ``"kernels"``) so a
    sweep can target one construction surface; the fault self-check
    inherits the pin, proving the harness keeps its teeth on that
    family's victims too.  *oracles* pins an explicit backend list (the
    CLI ``--engines`` path resolves it through the runtime registry);
    when given, ``include_grl`` is ignored.
    """
    if oracles is None:
        oracles = default_oracles(include_grl=include_grl)
    else:
        oracles = list(oracles)
    report = ConformanceReport(seed=seed, count=count)
    for offset in range(count):
        case = generate_case(seed + offset, smoke=smoke, family=family)
        run, mismatches = run_case(
            case, oracles=oracles, shrink=shrink, optimize=optimize
        )
        report.cases += 1
        report.volleys_checked += len(run.volleys)
        for name, rows in run.results.items():
            report.comparisons += sum(1 for row in rows if row is not None)
        for name, reason in run.skipped.items():
            report.skips[name] = report.skips.get(name, 0) + 1
            report.skip_reasons.setdefault(name, reason)
        report.mismatches.extend(mismatches)
    if with_faults:
        report.fault_report = run_fault_selfcheck(
            seed, smoke=smoke, shrink=shrink, family=family
        )
    return report


# ---------------------------------------------------------------------------
# Fault-injection self-check
# ---------------------------------------------------------------------------

def run_fault_selfcheck(
    seed: int = 0,
    *,
    classes: Optional[Sequence[FaultClass]] = None,
    attempts: int = 12,
    smoke: bool = False,
    shrink: bool = True,
    family: Optional[str] = None,
) -> FaultSelfCheckReport:
    """Prove the diff has teeth: inject each fault class until caught.

    For each class, generates cases from derived seeds, builds the
    faulted victim oracle, and diffs it against the interpreted
    reference.  A structurally injected fault can be semantically inert
    on a given case (an equivalent mutant), so up to *attempts* cases
    are tried before declaring the class undetected.  Each detection's
    witness volley is shrunk to a minimal reproducer.  *family* pins the
    victim cases to one generator family (kernel-built victims, etc.).
    """
    classes = list(classes) if classes is not None else list(FAULT_CLASSES)
    report = FaultSelfCheckReport()
    reference = InterpretedOracle()
    for fault in classes:
        detection = FaultDetection(fault=fault.name, detected=False, attempts=0)
        for attempt in range(attempts):
            # zlib.crc32, not hash(): the latter is salted per process
            # and would make self-check seeds unreproducible.
            case_seed = (
                (seed + 1) * 7919
                + attempt * 104729
                + zlib.crc32(fault.name.encode()) % 1000
            )
            case = generate_case(case_seed, smoke=smoke, family=family)
            rng = random.Random(case_seed ^ 0xFA417)
            faulted = fault.build(case, rng)
            detection.attempts = attempt + 1
            if faulted is None:
                continue
            pair = [reference, faulted]
            params = case.params or None
            _, found = diff_backends(
                case.network, case.volleys, params=params, oracles=pair
            )
            if not found:
                continue
            index, outputs = found[0]
            witness = case.volleys[index]
            if shrink:
                def disagrees(volley: Volley) -> bool:
                    _, hits = diff_backends(
                        case.network, [volley], params=params, oracles=pair
                    )
                    return bool(hits)

                witness = shrink_volley(witness, disagrees)
            detection.detected = True
            detection.case_name = case.name
            detection.oracle_name = faulted.name
            detection.witness = witness
            # Explain the kill: where do the healthy and faulted spike
            # traces first split?  (Oracles that cannot trace — e.g. the
            # plan-reorder executor — simply leave this blank.)
            healthy_trace = reference.trace(case.network, witness, params=params)
            faulted_trace = faulted.trace(case.network, witness, params=params)
            if healthy_trace is not None and faulted_trace is not None:
                split = first_divergence(healthy_trace, faulted_trace)
                if split is not None:
                    detection.divergence = split.describe(
                        "healthy", faulted.name, network=case.network
                    )
            if shrink:
                detection.regression_test = _emit_fault_repro(
                    fault, case, faulted, witness
                )
            break
        report.detections.append(detection)
    return report


def _emit_fault_repro(
    fault: FaultClass,
    case: ConformanceCase,
    faulted: BackendOracle,
    witness: Volley,
) -> str:
    """Render the strongest reproducer available for a detection."""
    transform = getattr(faulted, "network_transform", None)
    if transform is not None:
        mutant = transform(case.network)
        healthy = saturate_outputs(
            InterpretedOracle().run(
                case.network, [witness], params=case.params or None
            )[0]
        )
        broken = saturate_outputs(
            InterpretedOracle().run(mutant, [witness], params=case.params or None)[0]
        )
        if healthy != broken:
            return emit_mutant_test(
                case.network,
                mutant,
                witness,
                params=case.params,
                title=f"{fault.name.replace('-', '_')}_seed{case.seed}",
                provenance=f"{fault.name} on {case.name}",
            )
    # Volley- and plan-level faults: pin cross-backend agreement of the
    # healthy network on the witness (the property the fault violated).
    return emit_regression_test(
        case.network,
        witness,
        params=case.params,
        title=f"{fault.name.replace('-', '_')}_seed{case.seed}",
        provenance=f"{fault.name} on {case.name}",
    )
