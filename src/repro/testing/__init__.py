"""Differential conformance and fault-injection harness.

The repository carries four executable semantics of the space-time
network language (interpreted walk, compiled int64 batch plans,
event-driven simulation, GRL gate circuits); the paper's claims are that
they all denote the same bounded s-t function.  This package turns that
claim into a continuously exercised gate:

* :mod:`repro.testing.generators` — seeded random networks (layered
  DAGs, SRM0/WTA/micro-weight constructions) and adversarial volleys;
* :mod:`repro.testing.oracles` — the backend-oracle registry with a
  uniform, sentinel-saturated comparison semantics;
* :mod:`repro.testing.conformance` — the differential sweep and the
  fault-injection self-check;
* :mod:`repro.testing.faults` — injectable mutants (spike jitter,
  dropped lines, structural edits, plan reordering) the diff must catch;
* :mod:`repro.testing.shrink` — greedy reduction of any disagreement to
  a minimal (network, volley) reproducer plus an emitted pytest module;
* :mod:`repro.testing.served` — served-vs-direct byte-identity checks
  for the :mod:`repro.serve` stack (the serving layer as a fifth
  semantics).

CLI: ``python -m repro conformance --seed N --count K [--smoke]``.
"""

from .conformance import (
    ConformanceReport,
    FaultSelfCheckReport,
    Mismatch,
    diff_backends,
    run_case,
    run_conformance,
    run_fault_selfcheck,
)
from .faults import (
    FAULT_CLASSES,
    FaultClass,
    FaultedOracle,
    PlanReorderOracle,
    drop_lines,
    jitter_volley,
    random_mutant,
    stuck_at_zero,
)
from .generators import (
    ConformanceCase,
    adversarial_volleys,
    generate_case,
    random_kernel_network,
    random_layered_network,
)
from .served import (
    CachePoisonFault,
    CacheSelfCheckReport,
    ServedMismatch,
    ServedReport,
    check_served,
    run_served_cache_selfcheck,
)
from .oracles import (
    BackendOracle,
    BackendRun,
    CompiledBatchOracle,
    Engine,
    EventDrivenOracle,
    GRLCircuitOracle,
    InterpretedOracle,
    default_oracles,
    oracle_names,
    register_oracle,
    run_backends,
    saturate,
    saturate_outputs,
)
from .shrink import (
    emit_mutant_test,
    emit_regression_test,
    minimize_case,
    restrict_to_output,
    shrink_network,
    shrink_volley,
)

__all__ = [
    "BackendOracle",
    "BackendRun",
    "CachePoisonFault",
    "CacheSelfCheckReport",
    "CompiledBatchOracle",
    "ConformanceCase",
    "ConformanceReport",
    "Engine",
    "EventDrivenOracle",
    "FAULT_CLASSES",
    "FaultClass",
    "FaultSelfCheckReport",
    "FaultedOracle",
    "GRLCircuitOracle",
    "InterpretedOracle",
    "Mismatch",
    "PlanReorderOracle",
    "ServedMismatch",
    "ServedReport",
    "adversarial_volleys",
    "check_served",
    "default_oracles",
    "diff_backends",
    "drop_lines",
    "emit_mutant_test",
    "emit_regression_test",
    "generate_case",
    "jitter_volley",
    "minimize_case",
    "oracle_names",
    "random_kernel_network",
    "random_layered_network",
    "random_mutant",
    "register_oracle",
    "restrict_to_output",
    "run_backends",
    "run_case",
    "run_conformance",
    "run_fault_selfcheck",
    "run_served_cache_selfcheck",
    "saturate",
    "saturate_outputs",
    "shrink_network",
    "shrink_volley",
    "stuck_at_zero",
]
