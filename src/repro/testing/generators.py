"""Seeded generation of conformance cases: networks + adversarial volleys.

A conformance *case* is a network (possibly with a parameter binding),
plus a volley batch chosen to stress the semantics where implementations
historically diverge: the ``∞`` sentinel boundary, saturating ``inc``
chains, all-silent volleys, and simultaneous spikes that race through
``lt`` ties.

Two generator layers:

* :func:`random_layered_network` — layered DAGs over the raw primitives
  with size/depth knobs, occasionally emitting zero-source min/max
  constants (the lattice identities, a known cross-backend hazard);
* :func:`random_kernel_network` — random series compositions drawn from
  the :mod:`repro.kernels` standard library (interval arithmetic,
  latches, barriers, routers, accumulators), stages chained by port
  renaming so composed kernel networks are fuzzed as first-class
  citizens;
* :func:`generate_case` — draws a whole case from one integer seed,
  mixing layered DAGs with the paper's composite constructions (SRM0
  sorting-network neurons, τ-WTA / k-WTA inhibition, micro-weight
  programmable synapses) and composed kernels, so the sweep also covers
  deep, structured, parameterized networks.

Everything is a pure function of its seed — a failing case id is a
complete reproduction recipe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.value import INF, Time
from ..network.builder import NetworkBuilder
from ..network.compile_plan import MAX_FINITE
from ..network.graph import Network
from ..neuron.response import ResponseFunction
from ..neuron.srm0 import SRM0Neuron
from ..neuron.srm0_network import build_srm0_network
from ..neuron.weights import build_programmable_neuron, weight_settings
from ..neuron.wta import build_k_wta_network, build_wta_network
from .oracles import Volley

#: Case families drawn by :func:`generate_case`, with draw weights.
FAMILIES: tuple[tuple[str, int], ...] = (
    ("layered", 5),
    ("srm0", 2),
    ("wta", 1),
    ("kwta", 1),
    ("microweight", 1),
    ("kernels", 2),
)


@dataclass(frozen=True)
class ConformanceCase:
    """One unit of differential-testing work, fully determined by seed."""

    seed: int
    family: str
    network: Network
    volleys: tuple[Volley, ...]
    params: dict[str, Time] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.family}[seed={self.seed}]"


# ---------------------------------------------------------------------------
# Layered DAG generator
# ---------------------------------------------------------------------------

def random_layered_network(
    *,
    seed: int,
    n_inputs: int = 4,
    n_layers: int = 4,
    width: int = 5,
    n_outputs: int = 2,
    max_inc: int = 3,
    operations: tuple[str, ...] = ("inc", "min", "max", "lt"),
    p_empty_const: float = 0.06,
    name: Optional[str] = None,
) -> Network:
    """A layered random DAG over the s-t primitives.

    Each layer's nodes draw their first source from the previous layer
    (guaranteeing structural depth ``>= n_layers``) and the rest from any
    earlier wire.  With probability *p_empty_const* a min/max node is
    emitted with **zero** sources — the lattice identity constants ``∞``
    and ``0``, which every backend must agree on (and which the GRL
    compiler rightly refuses).  Outputs tap the last layer.
    """
    if n_inputs < 1 or n_layers < 1 or width < 1 or n_outputs < 1:
        raise ValueError("need at least one input, layer, node, and output")
    unknown = set(operations) - {"inc", "min", "max", "lt"}
    if unknown:
        raise ValueError(f"unknown operations: {sorted(unknown)}")
    rng = random.Random(seed)
    builder = NetworkBuilder(name or f"layered(seed={seed})")
    inputs = [builder.input(f"x{i}") for i in range(n_inputs)]
    previous = list(inputs)
    everything = list(inputs)
    for _ in range(n_layers):
        layer = []
        for _ in range(width):
            op = rng.choice(operations)
            anchor = rng.choice(previous)
            if op == "inc":
                wire = builder.inc(anchor, rng.randint(1, max_inc))
            elif op == "lt":
                wire = builder.lt(anchor, rng.choice(everything))
            elif rng.random() < p_empty_const:
                wire = getattr(builder, op)()
            else:
                arity = rng.randint(2, 3)
                extra = [rng.choice(everything) for _ in range(arity - 1)]
                wire = getattr(builder, op)(anchor, *extra)
            layer.append(wire)
        previous = layer
        everything.extend(layer)
    for index in range(min(n_outputs, len(previous))):
        builder.output(f"y{index}", previous[-(index + 1)])
    return builder.build()


# ---------------------------------------------------------------------------
# Random kernel compositions
# ---------------------------------------------------------------------------

def random_kernel_network(
    *,
    seed: int,
    max_stages: int = 4,
    smoke: bool = False,
    name: Optional[str] = None,
) -> Network:
    """A random series composition from the s-t kernel stdlib.

    Draws 2..*max_stages* kernels from :data:`repro.kernels.KERNELS`
    (each with a registry-declared parameter variant), renames every
    stage's outputs to unique labels, and renames each input either to a
    distinct earlier output (wiring it in) or to a fresh exposed name.
    The stages then flow through :func:`repro.kernels.compose` — so the
    conformance sweep fuzzes exactly the composition surface users get,
    including its unified-input and export-all-outputs semantics.
    """
    from ..kernels import KERNELS, build_kernel, compose

    rng = random.Random(seed)
    n_stages = rng.randint(2, 2 if smoke else max_stages)
    stages = []
    available: list[str] = []
    for index in range(n_stages):
        kernel_name = rng.choice(list(KERNELS))
        variant = dict(rng.choice(KERNELS[kernel_name].variants))
        kernel = build_kernel(kernel_name, **variant)
        out_map = {port: f"s{index}_{port}" for port in kernel.outputs}
        # Bind inputs to *distinct* earlier outputs (renamed ports must
        # stay unique); unbound inputs get fresh exposed names.
        pool = list(available)
        rng.shuffle(pool)
        in_map = {}
        for port in kernel.inputs:
            if pool and rng.random() < 0.7:
                in_map[port] = pool.pop()
            else:
                in_map[port] = f"s{index}_in_{port}"
        stages.append(
            kernel.renamed(
                inputs=in_map, outputs=out_map, name=f"s{index}-{kernel_name}"
            )
        )
        available.extend(out_map.values())
    composed = compose(*stages, name=name or f"kernels(seed={seed})")
    return composed.network(name=name or f"kernels(seed={seed})")


# ---------------------------------------------------------------------------
# Adversarial volleys
# ---------------------------------------------------------------------------

def adversarial_volleys(
    n_lines: int,
    *,
    rng: random.Random,
    n_random: int = 10,
    max_time: int = 9,
    silence_probability: float = 0.25,
) -> tuple[Volley, ...]:
    """A volley batch biased toward the semantics' sharp edges.

    Always includes: the all-zero and all-``∞`` volleys, an all-ties
    volley (every line simultaneous), a 0/∞ checkerboard, a volley pinned
    at :data:`~repro.network.compile_plan.MAX_FINITE` (the last finite
    int64 time — any ``inc`` saturates it to the sentinel) and a mixed
    near-sentinel/small volley; then *n_random* random volleys with
    *silence_probability* of ``∞`` per line.
    """
    if n_lines < 1:
        raise ValueError("need at least one line")
    tie = rng.randint(0, max_time)
    fixed: list[Volley] = [
        (0,) * n_lines,
        (INF,) * n_lines,
        (tie,) * n_lines,
        tuple(0 if i % 2 == 0 else INF for i in range(n_lines)),
        (MAX_FINITE,) * n_lines,
        tuple(
            MAX_FINITE - rng.randint(0, 3) if i % 2 == 0 else rng.randint(0, max_time)
            for i in range(n_lines)
        ),
    ]
    randoms = [
        tuple(
            INF
            if rng.random() < silence_probability
            else rng.randint(0, max_time)
            for _ in range(n_lines)
        )
        for _ in range(n_random)
    ]
    return tuple(fixed + randoms)


# ---------------------------------------------------------------------------
# Whole-case generation
# ---------------------------------------------------------------------------

def _pick_family(rng: random.Random) -> str:
    names = [name for name, weight in FAMILIES for _ in range(weight)]
    return rng.choice(names)


def generate_case(
    seed: int, *, smoke: bool = False, family: Optional[str] = None
) -> ConformanceCase:
    """Draw one conformance case from an integer seed.

    *smoke* shrinks every size knob so a CI smoke sweep stays under a
    few seconds while still crossing each family and each adversarial
    volley shape.  *family* pins the case family instead of drawing it
    from the weighted mix (``python -m repro conformance --family``) —
    the seed still drives every other choice.
    """
    rng = random.Random(seed)
    known = [name for name, _ in FAMILIES]
    if family is None:
        family = _pick_family(rng)
    elif family not in known:
        raise ValueError(
            f"unknown family {family!r}; known: {', '.join(known)}"
        )
    else:
        _pick_family(rng)  # keep the rng stream aligned with mixed draws
    params: dict[str, Time] = {}

    if family == "layered":
        network = random_layered_network(
            seed=rng.randrange(2**31),
            n_inputs=rng.randint(2, 3 if smoke else 5),
            n_layers=rng.randint(2, 3 if smoke else 5),
            width=rng.randint(2, 3 if smoke else 6),
            n_outputs=rng.randint(1, 2),
            max_inc=rng.randint(1, 3),
        )
    elif family == "srm0":
        arity = rng.randint(2, 2 if smoke else 3)
        weights = [rng.randint(1, 3) for _ in range(arity)]
        response = ResponseFunction.piecewise_linear(
            amplitude=rng.randint(1, 2),
            rise=rng.randint(1, 2),
            fall=rng.randint(1, 3),
        )
        neuron = SRM0Neuron.homogeneous(
            arity,
            weights,
            base_response=response,
            threshold=rng.randint(1, max(1, sum(weights))),
        )
        network = build_srm0_network(neuron)
    elif family == "wta":
        network = build_wta_network(
            rng.randint(3, 4 if smoke else 6), window=rng.randint(1, 2)
        )
    elif family == "kwta":
        n_lines = rng.randint(4, 4 if smoke else 6)
        network = build_k_wta_network(n_lines, rng.randint(1, n_lines - 1))
    elif family == "kernels":
        network = random_kernel_network(
            seed=rng.randrange(2**31), smoke=smoke
        )
    else:  # microweight
        n_inputs = 2
        max_weight = rng.randint(1, 2)
        response = ResponseFunction.piecewise_linear(
            amplitude=1, rise=1, fall=rng.randint(1, 2)
        )
        network, synapses = build_programmable_neuron(
            n_inputs,
            base_response=response,
            max_weight=max_weight,
            threshold=rng.randint(1, 2),
        )
        params = weight_settings(
            synapses, [rng.randint(0, max_weight) for _ in range(n_inputs)]
        )

    volleys = adversarial_volleys(
        len(network.input_names),
        rng=rng,
        n_random=4 if smoke else 10,
    )
    return ConformanceCase(
        seed=seed,
        family=family,
        network=network,
        volleys=volleys,
        params=params,
    )
