"""Backend-oracle registry for differential conformance testing.

The repository carries five executable semantics for the same network
language — the interpreted big-int walk
(:func:`repro.network.simulator.evaluate_all_interpreted`), the compiled
int64 batch engine (:mod:`repro.network.compile_plan`), the operational
event-driven simulator (:mod:`repro.network.events`), the gate-level
GRL circuit model (:mod:`repro.racelogic.compile`) and the native
arena backend (:mod:`repro.native`).  The paper's claims
are that these all denote the *same* bounded s-t function, so each is
wrapped here as a :class:`BackendOracle` with a uniform interface: a
volley batch in, one spike-time tuple per volley out.

Comparison semantics
--------------------
Oracles report *canonical* outputs: every finite time strictly above
:data:`~repro.network.compile_plan.MAX_FINITE` is saturated to ``∞``
before any diff.  This is deliberate — the interpreted evaluator computes
with arbitrary-precision integers while the compiled engine saturates
``inc`` chains at the int64 sentinel, so beyond ``2**63 - 1`` the two
*intentionally* differ in raw value.  The observable contract all
backends share is equality **up to sentinel saturation**, and that is
what :func:`run_backends` and the conformance harness check.

Partiality
----------
Not every backend can run every case.  The GRL oracle compiles to a CMOS
netlist (zero-source min/max constants have no gate realization) and
simulates cycle-by-cycle (near-sentinel spike times would need ``~2**63``
cycles), so it declares structural limits via
:meth:`BackendOracle.supports_network` and per-volley limits via
:meth:`BackendOracle.supports_volley`.  The registry never silently
drops a backend — skips carry a human-readable reason into the report.

Adding a backend
----------------
Subclass :class:`BackendOracle`, implement :meth:`BackendOracle.run`
(and the ``supports_*`` hooks if partial), then decorate with
:func:`register_oracle`.  ``default_oracles()`` instantiates every
registered backend; the conformance CLI picks it up automatically.

The Engine protocol
-------------------
Every oracle accepts a :data:`~repro.ir.program.ProgramLike` — a raw
:class:`~repro.network.graph.Network` or an already-lowered (and
possibly optimized) :class:`~repro.ir.program.Program`.  The structural
:class:`Engine` protocol spells out that contract; :func:`run_backends`
exploits it to lower and optimize *once* and hand the same ``Program``
to all five backends (``optimize=True``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from ..core.value import INF, Infinity, Time
from ..ir.passes import optimize_program
from ..ir.program import Program, ProgramLike, ensure_program
from ..network.compile_plan import (
    MAX_FINITE,
    decode_matrix,
    evaluate_batch,
)
from ..native import evaluate_batch_native
from ..network.events import EventSimulator
from ..network.graph import Network
from ..network.simulator import evaluate_all_interpreted
from ..obs.trace import RecordingSink, TraceEvent

Volley = tuple[Time, ...]
Outputs = tuple[Time, ...]


@runtime_checkable
class Engine(Protocol):
    """The structural contract every backend oracle satisfies.

    One executable semantics of the s-t language, consuming a
    :data:`~repro.ir.program.ProgramLike` (a ``Network`` or a lowered
    ``Program``) — the dispatch surface :func:`run_backends` and the
    conformance harness are written against.
    """

    name: str

    def supports_network(self, network: ProgramLike) -> Optional[str]:
        """``None`` if the engine can run *network*, else a skip reason."""
        ...

    def supports_volley(self, volley: Volley) -> bool:
        """True if the engine can run this particular volley."""
        ...

    def run(
        self,
        network: ProgramLike,
        volleys: Sequence[Volley],
        params: Optional[Mapping[str, Time]] = None,
    ) -> list[Outputs]:
        """Raw output tuples (output-name order) per volley."""
        ...

    def trace(
        self,
        network: ProgramLike,
        volley: Volley,
        params: Optional[Mapping[str, Time]] = None,
    ) -> Optional[list[TraceEvent]]:
        """Canonical spike trace of one volley, or ``None`` if untraceable."""
        ...


def saturate(value: Time) -> Time:
    """Canonicalize one time into sentinel-saturated semantics."""
    if isinstance(value, Infinity):
        return INF
    return INF if value > MAX_FINITE else int(value)


def saturate_outputs(outputs: Sequence[Time]) -> Outputs:
    """Canonicalize a whole output tuple (the diffable form)."""
    return tuple(saturate(v) for v in outputs)


class BackendOracle:
    """One executable semantics of the network language.

    The stock implementation of the :class:`Engine` protocol.
    Subclasses implement :meth:`run`; partial backends override
    :meth:`supports_network` / :meth:`supports_volley`.  ``run`` returns
    *raw* outputs — canonicalization (sentinel saturation) is applied
    uniformly by :func:`run_backends`, never per backend.
    """

    #: Registry key and report label; subclasses must override.
    name: str = "abstract"

    def supports_network(self, network: ProgramLike) -> Optional[str]:
        """``None`` if the backend can run *network*, else a skip reason."""
        return None

    def supports_volley(self, volley: Volley) -> bool:
        """True if the backend can run this particular volley."""
        return True

    def run(
        self,
        network: ProgramLike,
        volleys: Sequence[Volley],
        params: Optional[Mapping[str, Time]] = None,
    ) -> list[Outputs]:
        """Raw output tuples (``network.output_names`` order) per volley."""
        raise NotImplementedError

    def trace(
        self,
        network: ProgramLike,
        volley: Volley,
        params: Optional[Mapping[str, Time]] = None,
    ) -> Optional[list[TraceEvent]]:
        """The canonical spike trace of one volley, or ``None``.

        ``None`` means the backend cannot trace this case (unsupported
        network/volley, or no tracing support at all — the base).  A
        returned trace is already canonical (sorted, sentinel-saturated),
        so two backends that agree on fire times return *equal* lists.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<oracle {self.name}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: "OrderedDict[str, Callable[[], BackendOracle]]" = OrderedDict()


def register_oracle(factory: Callable[[], BackendOracle]) -> Callable[[], BackendOracle]:
    """Register a backend factory (usable as a class decorator).

    The factory's product must carry a unique ``name``; registration
    order is preserved and becomes the report column order.
    """
    probe = factory()
    if probe.name in _REGISTRY:
        raise ValueError(f"oracle {probe.name!r} already registered")
    _REGISTRY[probe.name] = factory
    return factory


def oracle_names() -> list[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def default_oracles(*, include_grl: bool = True) -> list[BackendOracle]:
    """Fresh instances of every registered backend.

    ``include_grl=False`` drops the gate-level model — useful when the
    sweep is dominated by cycle-accurate simulation time.
    """
    oracles = [factory() for factory in _REGISTRY.values()]
    if not include_grl:
        oracles = [o for o in oracles if o.name != "grl-circuit"]
    return oracles


# ---------------------------------------------------------------------------
# The four stock backends
# ---------------------------------------------------------------------------

@register_oracle
class InterpretedOracle(BackendOracle):
    """The pure-Python reference walk (arbitrary-precision ints)."""

    name = "interpreted"

    def run(self, network, volleys, params=None):
        names = network.input_names
        out_ids = list(network.outputs.values())
        results: list[Outputs] = []
        for volley in volleys:
            values = evaluate_all_interpreted(
                network, dict(zip(names, volley)), params=params
            )
            results.append(tuple(values[nid] for nid in out_ids))
        return results

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        evaluate_all_interpreted(
            network,
            dict(zip(network.input_names, volley)),
            params=params,
            sink=sink,
        )
        return sink.canonical()


@register_oracle
class CompiledBatchOracle(BackendOracle):
    """The level-fused int64 batch engine, one compiled call per batch."""

    name = "compiled-batch"

    def run(self, network, volleys, params=None):
        matrix = evaluate_batch(network, list(volleys), params=params)
        return [tuple(row) for row in decode_matrix(matrix)]

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        evaluate_batch(network, [tuple(volley)], params=params, sink=sink)
        return sink.canonical()


@register_oracle
class EventDrivenOracle(BackendOracle):
    """The operational simulator: spikes as discrete scheduled events."""

    name = "event-driven"

    def run(self, network, volleys, params=None):
        simulator = EventSimulator(network)
        names = network.input_names
        out_names = network.output_names
        results: list[Outputs] = []
        for volley in volleys:
            outcome = simulator.run(dict(zip(names, volley)), params=params)
            results.append(tuple(outcome.outputs[n] for n in out_names))
        return results

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        EventSimulator(network).run(
            dict(zip(network.input_names, volley)), params=params, sink=sink
        )
        return sink.canonical()


@register_oracle
class GRLCircuitOracle(BackendOracle):
    """The cycle-accurate CMOS model, where a gate netlist exists.

    Partial on two axes: zero-source min/max constants have no gate
    realization, and simulation cost is ``O(cycles × gates)`` with
    ``cycles ≈ latest finite spike + flip-flop count``, so both the
    netlist size and the volley's latest spike are budgeted.
    """

    name = "grl-circuit"

    def __init__(self, *, max_time: int = 32, max_gates: int = 400):
        self.max_time = max_time
        self.max_gates = max_gates

    def supports_network(self, network: ProgramLike) -> Optional[str]:
        program = ensure_program(network)
        if program.const_ids:
            # The IR declares which nodes are lattice-identity constants;
            # this oracle no longer pattern-matches them itself.
            node = program.nodes[program.const_ids[0]]
            return (
                f"zero-source {node.kind} (node {node.id}) has no "
                "CMOS gate realization"
            )
        # DFF chains dominate the netlist: one flip-flop per inc unit.
        gates = len(program.nodes) + sum(
            n.amount - 1 for n in program.nodes if n.kind == "inc"
        )
        if gates > self.max_gates:
            return f"netlist too large for cycle simulation ({gates} gates)"
        return None

    def supports_volley(self, volley: Volley) -> bool:
        return all(
            isinstance(v, Infinity) or v <= self.max_time for v in volley
        )

    def run(self, network, volleys, params=None):
        from ..racelogic.compile import GRLExecutor

        executor = GRLExecutor(network)
        names = network.input_names
        out_names = network.output_names
        results: list[Outputs] = []
        for volley in volleys:
            outputs = executor.outputs(
                dict(zip(names, volley)), params=params
            )
            results.append(tuple(outputs[n] for n in out_names))
        return results

    def trace(self, network, volley, params=None):
        from ..racelogic.compile import GRLExecutor

        volley = tuple(volley)
        if self.supports_network(network) is not None:
            return None
        if not self.supports_volley(volley):
            return None
        sink = RecordingSink()
        GRLExecutor(network).run(
            dict(zip(network.input_names, volley)), params=params, sink=sink
        )
        return sink.canonical()


@register_oracle
class NativeOracle(BackendOracle):
    """The native arena backend: fused level-kernels, optional Numba JIT.

    Execution strategy (fused NumPy vs the Numba row interpreter)
    follows ``REPRO_NATIVE`` at run time, so one conformance invocation
    pins down whichever mode the environment selects — CI runs both.
    Traces are emitted post-hoc from the complete value vector, which is
    byte-identical to the incremental backends because the canonical
    trace is a pure function of fire times.
    """

    name = "native"

    def run(self, network, volleys, params=None):
        matrix = evaluate_batch_native(network, list(volleys), params=params)
        return [tuple(row) for row in decode_matrix(matrix)]

    def trace(self, network, volley, params=None):
        sink = RecordingSink()
        evaluate_batch_native(
            network, [tuple(volley)], params=params, sink=sink
        )
        return sink.canonical()


# ---------------------------------------------------------------------------
# Uniform batch runner
# ---------------------------------------------------------------------------

@dataclass
class BackendRun:
    """Canonicalized outputs of several backends over one volley batch.

    ``results[name][i]`` is the sentinel-saturated output tuple of
    backend *name* on volley *i*, or ``None`` when that backend skipped
    the volley; backends skipped wholesale appear in ``skipped`` with
    their reason instead.  ``program`` is the exact
    :class:`~repro.ir.program.Program` every backend consumed when the
    run went through the shared-lowering path (``optimize=True``), else
    ``None``; its provenance map relates the optimized trace back to the
    original node ids.
    """

    volleys: list[Volley]
    results: dict[str, list[Optional[Outputs]]] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    program: Optional[Program] = None

    def names_for(self, index: int) -> list[str]:
        """Backends that produced an output for volley *index*."""
        return [n for n, rows in self.results.items() if rows[index] is not None]


def run_backends(
    network: ProgramLike,
    volleys: Sequence[Volley],
    *,
    params: Optional[Mapping[str, Time]] = None,
    oracles: Optional[Sequence[Engine]] = None,
    optimize: bool = False,
) -> BackendRun:
    """Run every backend over *volleys*, canonicalizing all outputs.

    Backends that cannot run the network are recorded in ``skipped``;
    backends that cannot run an individual volley leave ``None`` in that
    row.  Raw outputs are saturated at the int64 sentinel so the caller
    can compare tuples directly.

    With ``optimize=True`` the source is lowered and run through the
    default IR pass pipeline *once*, and the resulting
    :class:`~repro.ir.program.Program` (recorded on the returned
    ``BackendRun``) is shared by every backend — so the compiled plan
    cache, keyed by IR fingerprint, compiles it exactly once too.  Leave
    it ``False`` for fault injection: :class:`FaultedOracle` network
    transforms operate on the raw ``Network``.
    """
    oracles = list(oracles) if oracles is not None else default_oracles()
    shared_program: Optional[Program] = None
    if optimize:
        shared_program, _report = optimize_program(ensure_program(network))
        network = shared_program
    volleys = [tuple(v) for v in volleys]
    run = BackendRun(volleys=volleys, program=shared_program)
    for oracle in oracles:
        reason = oracle.supports_network(network)
        if reason is not None:
            run.skipped[oracle.name] = reason
            continue
        mask = [oracle.supports_volley(v) for v in volleys]
        subset = [v for v, ok in zip(volleys, mask) if ok]
        outputs = oracle.run(network, subset, params=params) if subset else []
        if len(outputs) != len(subset):
            raise RuntimeError(
                f"oracle {oracle.name!r} returned {len(outputs)} rows for "
                f"{len(subset)} volleys"
            )
        rows: list[Optional[Outputs]] = []
        it = iter(outputs)
        for ok in mask:
            rows.append(saturate_outputs(next(it)) if ok else None)
        run.results[oracle.name] = rows
    return run
