"""Backend-oracle adapter over the unified engine registry.

The repository carries five executable semantics for the same network
language — the interpreted big-int walk, the compiled int64 batch
engine, the operational event-driven simulator, the gate-level GRL
circuit model, and the native arena backend.  Since PR 9 they live in
:mod:`repro.runtime.engines` and register with
:data:`repro.runtime.ENGINES` — the exact objects the serving stack
dispatches through.  This module keeps the historical conformance
surface (``register_oracle`` / ``oracle_names`` / ``default_oracles`` /
``run_backends`` and the ``*Oracle`` class names) as a thin adapter, so
differential testing exercises the production dispatch path rather than
a parallel registry.

Comparison semantics
--------------------
Oracles report *canonical* outputs: every finite time strictly above
:data:`~repro.network.compile_plan.MAX_FINITE` is saturated to ``∞``
before any diff.  This is deliberate — the interpreted evaluator computes
with arbitrary-precision integers while the compiled engine saturates
``inc`` chains at the int64 sentinel, so beyond ``2**63 - 1`` the two
*intentionally* differ in raw value.  The observable contract all
backends share is equality **up to sentinel saturation**, and that is
what :func:`run_backends` and the conformance harness check.

Partiality
----------
Not every backend can run every case.  The GRL oracle compiles to a CMOS
netlist (zero-source min/max constants have no gate realization) and
simulates cycle-by-cycle, so it declares structural limits via
``supports_network`` and per-volley limits via ``supports_volley``.  The
registry never silently drops a backend — skips carry a human-readable
reason into the report.

Adding a backend
----------------
Subclass :class:`BackendOracle` (=
:class:`~repro.runtime.engines.BackendEngine`), implement ``run`` (and
the ``supports_*`` hooks if partial), then decorate with
:func:`register_oracle`.  ``default_oracles()`` instantiates every
registered backend; the conformance CLI picks it up automatically.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..core.value import INF, Infinity, Time
from ..ir.passes import optimize_program
from ..ir.program import Program, ProgramLike, ensure_program
from ..network.compile_plan import MAX_FINITE
from ..runtime.engines import (
    BackendEngine,
    CompiledBatchEngine,
    Engine,
    EngineCapabilities,
    EventDrivenEngine,
    GRLCircuitEngine,
    InterpretedEngine,
    NativeEngine,
    Outputs,
    Volley,
)
from ..runtime.registry import ENGINES

__all__ = [
    "BackendOracle",
    "BackendRun",
    "CompiledBatchOracle",
    "Engine",
    "EngineCapabilities",
    "EventDrivenOracle",
    "GRLCircuitOracle",
    "InterpretedOracle",
    "NativeOracle",
    "Outputs",
    "Volley",
    "default_oracles",
    "oracle_names",
    "register_oracle",
    "run_backends",
    "saturate",
    "saturate_outputs",
]

#: Historical names — the oracle classes ARE the runtime engines, so a
#: conformance-registered backend and a serving-dispatched backend are
#: one object with one behaviour.
BackendOracle = BackendEngine
InterpretedOracle = InterpretedEngine
CompiledBatchOracle = CompiledBatchEngine
EventDrivenOracle = EventDrivenEngine
GRLCircuitOracle = GRLCircuitEngine
NativeOracle = NativeEngine


def saturate(value: Time) -> Time:
    """Canonicalize one time into sentinel-saturated semantics."""
    if isinstance(value, Infinity):
        return INF
    return INF if value > MAX_FINITE else int(value)


def saturate_outputs(outputs: Sequence[Time]) -> Outputs:
    """Canonicalize a whole output tuple (the diffable form)."""
    return tuple(saturate(v) for v in outputs)


# ---------------------------------------------------------------------------
# Registry adapter
# ---------------------------------------------------------------------------

def register_oracle(
    factory: Callable[[], BackendOracle]
) -> Callable[[], BackendOracle]:
    """Register a backend factory (usable as a class decorator).

    Forwards to :meth:`repro.runtime.EngineRegistry.register` on the
    process-wide :data:`~repro.runtime.ENGINES` registry: the factory's
    product must carry a unique ``name``; registration order is
    preserved and becomes the report column order.
    """
    return ENGINES.register(factory)


def oracle_names() -> list[str]:
    """Registered backend names, in registration order."""
    return ENGINES.names()


def default_oracles(*, include_grl: bool = True) -> list[BackendOracle]:
    """Fresh instances of every registered backend.

    ``include_grl=False`` drops cycle-accurate gate-level models — the
    filter keys on the ``cycle_accurate`` capability, not the name —
    useful when the sweep is dominated by cycle simulation time.
    """
    return ENGINES.create_all(include_cycle_accurate=include_grl)


# ---------------------------------------------------------------------------
# Uniform batch runner
# ---------------------------------------------------------------------------

@dataclass
class BackendRun:
    """Canonicalized outputs of several backends over one volley batch.

    ``results[name][i]`` is the sentinel-saturated output tuple of
    backend *name* on volley *i*, or ``None`` when that backend skipped
    the volley; backends skipped wholesale appear in ``skipped`` with
    their reason instead.  ``program`` is the exact
    :class:`~repro.ir.program.Program` every backend consumed when the
    run went through the shared-lowering path (``optimize=True``), else
    ``None``; its provenance map relates the optimized trace back to the
    original node ids.
    """

    volleys: list[Volley]
    results: dict[str, list[Optional[Outputs]]] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    program: Optional[Program] = None

    def names_for(self, index: int) -> list[str]:
        """Backends that produced an output for volley *index*."""
        return [n for n, rows in self.results.items() if rows[index] is not None]


def run_backends(
    network: ProgramLike,
    volleys: Sequence[Volley],
    *,
    params: Optional[Mapping[str, Time]] = None,
    oracles: Optional[Sequence[Engine]] = None,
    optimize: bool = False,
) -> BackendRun:
    """Run every backend over *volleys*, canonicalizing all outputs.

    Backends that cannot run the network are recorded in ``skipped``;
    backends that cannot run an individual volley leave ``None`` in that
    row.  Raw outputs are saturated at the int64 sentinel so the caller
    can compare tuples directly.

    With ``optimize=True`` the source is lowered and run through the
    default IR pass pipeline *once*, and the resulting
    :class:`~repro.ir.program.Program` (recorded on the returned
    ``BackendRun``) is shared by every backend — so the compiled plan
    cache, keyed by IR fingerprint, compiles it exactly once too.  Leave
    it ``False`` for fault injection: :class:`FaultedOracle` network
    transforms operate on the raw ``Network``.
    """
    oracles = list(oracles) if oracles is not None else default_oracles()
    shared_program: Optional[Program] = None
    if optimize:
        shared_program, _report = optimize_program(ensure_program(network))
        network = shared_program
    volleys = [tuple(v) for v in volleys]
    run = BackendRun(volleys=volleys, program=shared_program)
    for oracle in oracles:
        reason = oracle.supports_network(network)
        if reason is not None:
            run.skipped[oracle.name] = reason
            continue
        mask = [oracle.supports_volley(v) for v in volleys]
        subset = [v for v, ok in zip(volleys, mask) if ok]
        outputs = oracle.run(network, subset, params=params) if subset else []
        if len(outputs) != len(subset):
            raise RuntimeError(
                f"oracle {oracle.name!r} returned {len(outputs)} rows for "
                f"{len(subset)} volleys"
            )
        rows: list[Optional[Outputs]] = []
        it = iter(outputs)
        for ok in mask:
            rows.append(saturate_outputs(next(it)) if ok else None)
        run.results[oracle.name] = rows
    return run
