"""repro — Space-Time Algebra: A Model for Neocortical Computation.

A full reimplementation of the computing model of J. E. Smith's ISCA 2018
paper: the space-time algebra over ``N0∞``, feedforward space-time
computing networks, constructive functional completeness (min/lt/inc),
temporal neural network components (SRM0 neurons via sorting networks,
micro-weight synapses, winner-take-all inhibition), STDP and tempotron
learning, temporal coding, and generalized race logic with a gate-level
digital simulator.

Quickstart::

    from repro.core import INF, NormalizedTable, synthesize
    from repro.network import evaluate_vector

    table = NormalizedTable({(0, 1, 2): 3, (1, 0, INF): 2, (2, 2, 0): 2})
    net = synthesize(table)
    evaluate_vector(net, (3, 4, 5))   # {'y': 6}
"""

from . import (
    analysis,
    apps,
    coding,
    core,
    ir,
    kernels,
    learning,
    network,
    neuron,
    obs,
    racelogic,
    runtime,
    serve,
    testing,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "coding",
    "core",
    "ir",
    "kernels",
    "learning",
    "network",
    "neuron",
    "obs",
    "racelogic",
    "runtime",
    "serve",
    "testing",
    "__version__",
]
