"""The served-model registry, keyed by ``Network.fingerprint()``.

A model's identity in the service is its structural fingerprint — the
same SHA-256 the compiled-plan cache keys on, preserved bit-for-bit by
JSON serialization (:mod:`repro.network.serialize` embeds and verifies
it).  That one choice buys three properties:

* **shippability** — workers receive the serialized document, rebuild
  the network, and can *prove* they loaded the right model by comparing
  fingerprints (the document carries the expected hash);
* **deduplication** — registering a structural twin (same algebra, any
  display name) resolves to the existing entry and shares its compiled
  plan;
* **conformance** — "served response equals direct ``evaluate_batch``"
  is well-defined because both sides name the model by the same key.

Human-friendly **aliases** ("demo") map onto fingerprints; lookups
accept an alias, a full fingerprint, or an unambiguous fingerprint
prefix (≥ 8 hex chars).

Aliases are also the registry's **versioning seam** (the training
plane's hot-swap mechanism): :meth:`ModelRegistry.promote` atomically
repoints an alias at an already-registered fingerprint, so admissions
before the flip resolve the old model and admissions after it resolve
the new one — there is no in-between state.  :meth:`ModelRegistry.
remove` retires a model outright and purges its compiled plans and
cached result rows from the runtime caches
(:func:`repro.runtime.evict_fingerprint`), so a retired fingerprint can
never be served from stale cache state.  All registry operations are
thread-safe: the training plane registers snapshots and promotes while
the service admits requests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from ..ir.passes import optimize_program
from ..ir.program import Program, lower
from ..network import serialize
from ..network.graph import Network, NetworkError
from .protocol import E_NO_MODEL, ServeError

#: Shortest fingerprint prefix accepted as a model reference.
MIN_PREFIX = 8


@dataclass(frozen=True)
class ModelEntry:
    """One registered model: the network, its program, and its document.

    ``program`` is what workers execute (IR-lowered, optionally
    pass-pipeline optimized — fire-time equal to the network by the IR's
    provenance contract); ``document`` is the serialized form shipped to
    worker processes; ``network`` stays available in-process for the
    direct conformance path.
    """

    model_id: str  # == network.fingerprint()
    name: str
    network: Network
    program: Program
    document: str
    optimized: bool

    @property
    def input_arity(self) -> int:
        return len(self.network.input_ids)

    @property
    def input_names(self) -> list[str]:
        return self.network.input_names

    @property
    def param_names(self) -> list[str]:
        return self.network.param_names

    @property
    def output_names(self) -> list[str]:
        return self.network.output_names

    def describe(self) -> dict:
        """The JSON shape the server's ``models`` op reports."""
        return {
            "id": self.model_id,
            "name": self.name,
            "inputs": self.input_names,
            "params": self.param_names,
            "outputs": self.output_names,
            "nodes": len(self.network.nodes),
            "optimized": self.optimized,
        }


class ModelRegistry:
    """Fingerprint-keyed model store with alias and prefix lookup."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._by_id: dict[str, ModelEntry] = {}
        self._aliases: dict[str, str] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._by_id

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._by_id)

    def entries(self) -> list[ModelEntry]:
        with self._lock:
            return list(self._by_id.values())

    def aliases(self) -> dict[str, str]:
        """The live ``alias -> fingerprint`` map (a snapshot copy)."""
        with self._lock:
            return dict(self._aliases)

    def register(
        self,
        network: Network,
        *,
        name: Optional[str] = None,
        optimize: bool = True,
    ) -> ModelEntry:
        """Register *network*; returns the (possibly pre-existing) entry.

        The serialized document is round-tripped on the spot and its
        fingerprint compared bit-for-bit — a registration fails loudly
        here rather than shipping a document workers would reject.
        """
        fingerprint = network.fingerprint()
        with self._lock:
            entry = self._by_id.get(fingerprint)
        if entry is None:
            # Build outside the lock: serialization and the optimizer
            # pipeline can take hundreds of milliseconds on a trained
            # column, and admissions must keep resolving meanwhile.
            document = serialize.dumps(network, indent=None)
            rebuilt = serialize.loads(document)
            if rebuilt.fingerprint() != fingerprint:
                raise NetworkError(
                    f"serialization round-trip changed the fingerprint of "
                    f"{network.name!r}: {fingerprint[:12]} -> "
                    f"{rebuilt.fingerprint()[:12]}"
                )
            program = lower(network)
            if optimize:
                program, _report = optimize_program(program)
            entry = ModelEntry(
                model_id=fingerprint,
                name=name or network.name,
                network=network,
                program=program,
                document=document,
                optimized=optimize,
            )
        with self._lock:
            entry = self._by_id.setdefault(fingerprint, entry)
            if name:
                self._aliases[name] = fingerprint
        return entry

    def resolve(self, key: str) -> ModelEntry:
        """Entry for an alias, fingerprint, or unambiguous prefix."""
        with self._lock:
            if key in self._aliases:
                return self._by_id[self._aliases[key]]
            if key in self._by_id:
                return self._by_id[key]
            if len(key) >= MIN_PREFIX:
                hits = [fp for fp in self._by_id if fp.startswith(key)]
                if len(hits) == 1:
                    return self._by_id[hits[0]]
                if len(hits) > 1:
                    raise ServeError(
                        E_NO_MODEL,
                        f"model prefix {key!r} is ambiguous ({len(hits)})",
                    )
        raise ServeError(E_NO_MODEL, f"no model named {key!r}")

    def promote(self, alias: str, key: str) -> tuple[Optional[str], str]:
        """Atomically repoint *alias* at the model *key* resolves to.

        Returns ``(previous fingerprint or None, new fingerprint)``.
        The flip happens under the registry lock, so every admission
        resolves either entirely-old or entirely-new — in-flight
        requests admitted before the flip keep the entry they already
        resolved and complete on it.  The target must already be
        registered (and therefore already shipped to and warmed by the
        worker pool); promoting is pure metadata.
        """
        entry = self.resolve(key)
        with self._lock:
            previous = self._aliases.get(alias)
            self._aliases[alias] = entry.model_id
        return previous, entry.model_id

    def remove(self, key: str) -> ModelEntry:
        """Retire a model: drop its entry, aliases, and cached state.

        Every runtime-cache entry keyed on the retired fingerprint
        (compiled plans in each engine namespace, memoized result rows)
        is purged — a retired model must never be served, not even from
        cache.  Returns the removed entry.
        """
        from .. import runtime

        entry = self.resolve(key)
        with self._lock:
            self._by_id.pop(entry.model_id, None)
            for alias in [
                a for a, fp in self._aliases.items() if fp == entry.model_id
            ]:
                del self._aliases[alias]
        runtime.evict_fingerprint(entry.model_id)
        return entry

    def documents(self) -> dict[str, str]:
        """``model_id -> serialized document`` — the worker-pool payload."""
        with self._lock:
            return {fp: entry.document for fp, entry in self._by_id.items()}
