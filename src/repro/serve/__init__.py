"""Asynchronous micro-batching TNN inference service.

The serving layer that turns independent client requests into the large
batches where the compiled engine
(:func:`repro.network.compile_plan.evaluate_batch`) earns its speedup:

* :mod:`repro.serve.batcher` — the micro-batching scheduler: per-model
  open batches closed by a size trigger (``max_batch``) or a latency
  trigger (``max_wait_s``), results split back per request;
* :mod:`repro.serve.pool` — the sharded worker pool: one process per
  worker, each loading the IR-optimized program and warming its
  compiled plan at startup, least-loaded dispatch, crash detection and
  restart;
* :mod:`repro.serve.service` — the service core: fingerprint-keyed
  model registry, bounded-queue admission control with backpressure
  rejection, per-request deadlines, bounded retry on worker failure;
* :mod:`repro.serve.server` / :mod:`repro.serve.loadgen` — the asyncio
  newline-delimited-JSON front-end (``python -m repro serve``) and the
  conformance-checking load generator (``python -m repro loadgen``);
* :mod:`repro.serve.protocol` — the wire format (``∞`` is ``null``) and
  the canonical response encoding the byte-identity contract is stated
  over;
* :mod:`repro.serve.stats` — batch-size histogram, per-model/per-stage/
  per-outcome sliding-window latency histograms, and queue gauges,
  surfaced by ``python -m repro stats --json``, the server's ``metrics``
  endpoint, and the Prometheus-format ``metrics_text`` op;
* :mod:`repro.serve.top` — ``python -m repro top``, a live terminal
  dashboard polling a running server's ``metrics`` op.

Request-scoped observability lives in :mod:`repro.obs.rtrace`: with
tracing enabled every request carries a span tree (admission → batch
wait → dispatch attempts → engine → response encode) under one trace id
— client-supplied via the wire ``trace`` field or derived from the
request counter — and finished traces land in the bounded flight
recorder, dumped on worker crashes, deadline misses, overload bursts,
or ``SIGUSR2``.

The conformance contract: every served response is byte-identical to a
direct ``evaluate_batch`` of the same volleys — including under injected
worker crashes and deadline faults (:mod:`repro.testing.served`).
"""

from .batcher import Batch, BatchPolicy, MicroBatcher, PendingRequest
from .pool import InlineWorkerPool, Job, ProcessWorkerPool
from .protocol import (
    ERROR_CODES,
    PROTOCOL,
    ProtocolError,
    ServeError,
    canonical,
    encode_line,
    error_response,
    eval_request,
    ok_response,
    parse_request,
)
from .registry import ModelEntry, ModelRegistry
from .service import TNNService
from .stats import (
    PROMETHEUS_CONTENT_TYPE,
    SERVE_STATS,
    prometheus_text,
    reset_serve_stats,
    serve_stats_snapshot,
)

__all__ = [
    "Batch",
    "BatchPolicy",
    "ERROR_CODES",
    "InlineWorkerPool",
    "Job",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "PROTOCOL",
    "PendingRequest",
    "ProcessWorkerPool",
    "ProtocolError",
    "SERVE_STATS",
    "ServeError",
    "TNNService",
    "canonical",
    "encode_line",
    "error_response",
    "eval_request",
    "ok_response",
    "parse_request",
    "prometheus_text",
    "reset_serve_stats",
    "serve_stats_snapshot",
]
