"""The seeded demo model shared by server, load generator, and CLI.

``python -m repro serve`` needs a model to serve and ``python -m repro
loadgen`` needs to rebuild the *same* model client-side so it can check
served responses against a direct local evaluation — so both sides
construct it from one deterministic recipe: a seeded SRM0 column, the
same family the ``trace``/``ir``/``stats`` CLI commands demo on.  The
loadgen additionally verifies the server really serves this model by
comparing :meth:`~repro.network.graph.Network.fingerprint` values over
the wire before trusting its local oracle.
"""

from __future__ import annotations

import random

from ..network.graph import Network


def demo_column(seed: int, *, smoke: bool) -> tuple[Network, tuple[int, ...]]:
    """A seeded SRM0 column network and one volley for it.

    Deterministic in *seed*: the same seed always yields the same
    weights, threshold, and volley — so trace exports are reproducible
    and a loadgen client can reconstruct the served model exactly.
    """
    from ..neuron.response import ResponseFunction
    from ..neuron.srm0 import SRM0Neuron
    from ..neuron.srm0_network import build_srm0_network

    rng = random.Random(seed)
    n_inputs = 2 if smoke else 3
    base = ResponseFunction.piecewise_linear(amplitude=2, rise=1, fall=3)
    weights = [rng.randint(1, 3) for _ in range(n_inputs)]
    neuron = SRM0Neuron.homogeneous(
        n_inputs, weights, base_response=base, threshold=rng.randint(2, 4)
    )
    network = build_srm0_network(neuron, name=f"srm0-col-seed{seed}")
    volley = tuple(rng.randint(0, 3) for _ in range(n_inputs))
    return network, volley


def demo_volleys(
    arity: int, count: int, *, seed: int, silence_probability: float = 0.2
) -> list[tuple]:
    """A deterministic volley stream for load generation.

    Pure function of ``(arity, count, seed)`` — the loadgen evaluates
    the same stream locally to byte-check every served response.
    """
    from ..core.value import INF

    rng = random.Random(seed)
    return [
        tuple(
            INF if rng.random() < silence_probability else rng.randint(0, 9)
            for _ in range(arity)
        )
        for _ in range(count)
    ]
