"""Micro-batching scheduler: coalesce single-volley requests into batches.

The compiled engine (:func:`repro.network.compile_plan.evaluate_batch`)
earns its 36–44× speedup only when it is handed *batches* — but service
clients send independent single-volley requests.  The micro-batcher sits
between the two: concurrent requests for the same ``(model, params)``
accumulate in an **open batch**, which closes (becomes dispatchable) as
soon as either

* it reaches ``max_batch`` rows (the size trigger), or
* its oldest request has waited ``max_wait_s`` (the latency trigger).

``max_wait_s`` is the knob that trades tail latency for throughput:
``0`` degenerates to per-request dispatch, a few milliseconds buys large
batches under load while adding at most those milliseconds to an idle
request.  Only requests with an **identical parameter binding** share a
batch — ``evaluate_batch`` binds parameters per call, so a batch is
well-formed exactly when its key (model fingerprint, canonical params)
is uniform.

This module is a pure scheduling data structure: no threads, no clocks
of its own (callers pass ``now``), no I/O.  That makes the policy
deterministic and unit-testable; :class:`repro.serve.service.TNNService`
owns the lock, the flusher thread, and the real clock.  Correctness of
the split/merge rests on ``evaluate_batch`` being batch-invariant —
evaluating a concatenation of volleys equals concatenating per-volley
evaluations — a property the test suite pins with Hypothesis
(``tests/serve/test_batch_invariance.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Optional

#: Batch key: (model fingerprint, canonical parameter binding).
BatchKey = tuple[str, str]


@dataclass(frozen=True)
class BatchPolicy:
    """The coalescing policy: size and latency triggers.

    ``max_batch=1`` is per-request dispatch (the baseline every serving
    benchmark compares against); ``max_wait_s`` bounds how long an
    under-full batch may hold its oldest request.
    """

    max_batch: int = 64
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


@dataclass
class PendingRequest:
    """One admitted request waiting for (or riding in) a batch."""

    req_id: int
    model_id: str
    volley: tuple
    params_key: str
    params: dict
    enqueued: float
    deadline: Optional[float]  # absolute monotonic time, or None
    future: Future = field(default_factory=Future)
    #: Volley pre-encoded to int64 at admission (validation already pays
    #: for the conversion, so dispatch reuses it instead of re-encoding).
    encoded: Optional[tuple] = None
    #: Display name of the target model (latency-histogram label).
    model_name: str = ""
    #: When the request was last handed to a worker (0.0 = never
    #: dispatched); stage-latency attribution reads it at completion.
    dispatched: float = 0.0
    #: Result-cache key (canonical volley digest) when the service has
    #: the cache armed; ``None`` disables store-on-completion.
    digest: Optional[str] = None
    #: The request's span tree when request tracing is enabled
    #: (:mod:`repro.obs.rtrace`); ``None`` costs the disabled path
    #: nothing.  A crash-retried batch re-dispatches these same request
    #: objects, so both attempts' spans land in one trace.
    trace: "object | None" = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


@dataclass
class Batch:
    """A closed (dispatchable) or open (accumulating) request group.

    ``attempts`` counts dispatch attempts — the service increments it on
    worker failure and re-dispatches the whole batch (bounded retry).
    """

    key: BatchKey
    requests: list[PendingRequest]
    opened: float
    attempts: int = 0
    #: Worker-reported timing payload for the latest attempt (engine
    #: wall clock + phase attribution), delivered just before the
    #: completion callback; ``None`` when the executing pool sent none.
    extras: "dict | None" = None

    @property
    def model_id(self) -> str:
        return self.key[0]

    @property
    def size(self) -> int:
        return len(self.requests)


class MicroBatcher:
    """Accumulates requests into per-key open batches under a policy.

    Not thread-safe by design — the owning service serializes access
    under its own lock, which also covers the admission counter the
    batcher must stay consistent with.
    """

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._open: "OrderedDict[BatchKey, Batch]" = OrderedDict()

    def pending(self) -> int:
        """Requests currently sitting in open batches."""
        return sum(batch.size for batch in self._open.values())

    def add(
        self, request: PendingRequest, now: float
    ) -> tuple[Optional[Batch], bool]:
        """Enqueue one request.

        Returns ``(full, opened)``: *full* is the batch if this request
        filled it (now closed and no longer tracked here), and *opened*
        says whether the request started a fresh open batch — the two
        events that give a flusher something new to act on.
        """
        key = (request.model_id, request.params_key)
        batch = self._open.get(key)
        opened = batch is None
        if opened:
            batch = Batch(key=key, requests=[], opened=now)
            self._open[key] = batch
        batch.requests.append(request)
        if batch.size >= self.policy.max_batch:
            del self._open[key]
            return batch, opened
        return None, opened

    def due(self, now: float) -> list[Batch]:
        """Close and return every batch whose oldest request is overdue."""
        ready = [
            batch
            for batch in self._open.values()
            if now - batch.opened >= self.policy.max_wait_s
        ]
        for batch in ready:
            del self._open[batch.key]
        return ready

    def next_due(self, now: float) -> Optional[float]:
        """Seconds until the earliest open batch becomes due (None: empty).

        May be ``<= 0`` when a batch is already overdue; callers treat
        that as "flush immediately".
        """
        if not self._open:
            return None
        oldest = min(batch.opened for batch in self._open.values())
        return (oldest + self.policy.max_wait_s) - now

    def drain(self) -> list[Batch]:
        """Close and return every open batch (shutdown path)."""
        ready = list(self._open.values())
        self._open.clear()
        return ready
