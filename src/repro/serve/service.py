"""The inference service core: admission, batching, dispatch, retry.

:class:`TNNService` is the transport-independent heart of ``repro.serve``
— the asyncio front-end (:mod:`repro.serve.server`), the benchmarks and
the conformance harness all drive this one object:

* **admission control** — a bounded count of in-system requests
  (queued + in flight); past ``max_pending`` new work is rejected
  immediately with ``overloaded`` (backpressure, never unbounded
  buffering);
* **micro-batching** — admitted requests join per-``(model, params)``
  open batches (:class:`~repro.serve.batcher.MicroBatcher`); a dedicated
  flusher thread dispatches each batch when it fills or its oldest
  request has waited ``max_wait_s``;
* **deadlines** — a request may carry a deadline; it is enforced at
  dispatch (expired requests are dropped from the batch and answered
  ``deadline``) and again at completion (a result that arrives late is
  discarded in favor of the ``deadline`` error, so a slow worker can
  never turn into a silently-late answer);
* **bounded retry** — when a worker dies mid-batch the whole batch is
  re-dispatched to another worker, up to ``max_attempts`` total
  attempts, after which every rider fails with ``worker-failure``.
  Evaluation is pure (same volley → same spike times), so a retry can
  never produce a different answer — the served-conformance suite
  asserts byte-identical responses *through* injected crashes.

:meth:`TNNService.submit` returns a :class:`concurrent.futures.Future`
resolving to the decoded output ``Time`` tuple; the asyncio front-end
awaits it via ``asyncio.wrap_future``.  :meth:`TNNService.direct` is the
reference path (one straight ``evaluate_batch``) that served responses
are compared against byte-for-byte.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import OrderedDict
from concurrent.futures import Future
from time import monotonic
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.value import Time
from ..network.compile_plan import (
    decode_matrix,
    encode_time,
    evaluate_batch,
)
from ..network.graph import NetworkError
from ..obs import metrics as _obs_metrics
from ..obs import profile as _obs_profile
from ..obs import rtrace as _rtrace
from .batcher import Batch, BatchPolicy, MicroBatcher, PendingRequest
from .protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_OVERLOADED,
    E_SHUTDOWN,
    E_WORKER,
    ServeError,
    time_to_wire,
)
from ..runtime.result_cache import RESULT_CACHE, volley_digest
from .pool import Job
from .registry import ModelEntry, ModelRegistry
from .stats import SERVE_STATS


#: Overload rejections within one second before the flight recorder is
#: tripped with ``overload-burst`` (a lone rejection is backpressure
#: working; a burst is an incident worth a dump).
OVERLOAD_BURST_TRIP = 16

#: Every Nth traced batch also runs the engine under the profiler so its
#: trace carries ``engine.<phase>`` child spans.  Profiled evaluation is
#: the priced path (see ``bench_obs_overhead``); sampling keeps traced
#: serving inside the overhead bound while still attributing engine time
#: to phases on a steady trickle of requests.
PHASE_SAMPLE_EVERY = 8


def _params_key(params: Mapping[str, Time]) -> str:
    """Canonical string of a parameter binding (the batch-key component)."""
    if not params:
        return "{}"
    return json.dumps(
        {name: time_to_wire(value) for name, value in sorted(params.items())},
        separators=(",", ":"),
    )


class TNNService:
    """Micro-batched, deadline-aware, retrying TNN inference service."""

    def __init__(
        self,
        registry: ModelRegistry,
        pool,
        *,
        policy: Optional[BatchPolicy] = None,
        max_pending: int = 1024,
        default_deadline_s: Optional[float] = None,
        max_attempts: int = 2,
        result_cache: bool = False,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.registry = registry
        self.pool = pool
        #: Answer repeated ``(fingerprint, volley, params)`` triples
        #: straight from :data:`repro.runtime.RESULT_CACHE`, ahead of
        #: admission.  Off by default because the cache is
        #: process-global: embedded services and unit tests opt in
        #: explicitly; the CLI server arms it (``--no-result-cache`` to
        #: disable).
        self.result_cache_enabled = bool(result_cache)
        self.policy = policy or BatchPolicy()
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.max_attempts = max_attempts
        #: The attached training plane (``repro.train``), if any.  The
        #: server wires one in when launched with ``--train``; its
        #: snapshot rides the ``stats()`` payload under ``"training"``.
        self.training = None
        #: Serialized documents of every model ever registered through
        #: this service, surviving retirement — the ``model_doc`` op
        #: serves from here so a client can still rebuild (and
        #: byte-check against) a version that was hot-swapped away
        #: while its responses were in flight.  Bounded FIFO.
        self._document_archive: "OrderedDict[str, str]" = OrderedDict()
        self._archive_limit = 512
        # Models registered before the service existed (the usual CLI
        # bootstrap order) are archived too, so retiring them later
        # still leaves their documents fetchable.
        self._document_archive.update(registry.documents())

        self._cond = threading.Condition()
        self._batcher = MicroBatcher(self.policy)
        self._ready: list[Batch] = []  # closed batches awaiting dispatch
        self._pending = 0  # admitted and not yet completed
        self._closed = False
        self._job_ids = itertools.count(1)
        self._req_ids = itertools.count(1)
        self._overload_marks = 0
        self._overload_window_start = 0.0
        self._span_batches = 0  # traced batches seen (phase sampling)
        SERVE_STATS.bind_gauges(
            queue_depth=lambda: self._pending,
            workers_alive=self.pool.alive_count,
        )
        self._flusher = threading.Thread(
            target=self._flush_loop, name="serve-flusher", daemon=True
        )
        self._flusher.start()

    # -- submission -----------------------------------------------------------
    def submit(
        self,
        model: str,
        volley: Sequence[Time],
        *,
        params: Optional[Mapping[str, Time]] = None,
        deadline_s: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> "Future[tuple[Time, ...]]":
        """Admit one volley; the future resolves to its output tuple.

        Raises :class:`ServeError` *synchronously* for admission-time
        rejections (overload, unknown model, malformed volley) and
        resolves the future with a :class:`ServeError` for asynchronous
        ones (deadline, worker failure).

        *trace_id* names the request's span tree when request tracing is
        on (:mod:`repro.obs.rtrace`); with tracing on and no client id,
        the service derives one from its own request counter — which is
        deterministic for a fresh service, so identical runs produce
        identical canonical trace documents.
        """
        _obs_metrics.METRICS.inc("serve.requests")
        entry, encoded = self._validated(model, volley, params)
        params = dict(params or {})
        params_key = _params_key(params)
        now = monotonic()
        digest: Optional[str] = None
        if self.result_cache_enabled:
            # Ahead of admission: a hit never takes a queue slot, never
            # wakes the flusher, never touches the pool.  The key is
            # total over everything that affects the answer (program
            # fingerprint + encoded volley + canonical params), so the
            # cached row is byte-identical to recomputation.
            digest = volley_digest(encoded, params_key)
            cached = RESULT_CACHE.get(entry.model_id, digest)
            if cached is not None:
                return self._resolve_from_cache(entry, cached, trace_id, now)
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline = None if deadline_s is None else now + deadline_s
        request = PendingRequest(
            req_id=next(self._req_ids),
            model_id=entry.model_id,
            volley=tuple(volley),
            params_key=params_key,
            params=params,
            enqueued=now,
            deadline=deadline,
            encoded=encoded,
            model_name=entry.name,
            digest=digest,
        )
        # The resolved fingerprint rides on the future so front-ends can
        # attribute the response to the exact model version that served
        # it — under hot-swap promotion an alias's meaning changes
        # between admissions, and byte-conformance is only well-defined
        # against the fingerprint actually resolved at admission time.
        request.future.model_id = entry.model_id  # type: ignore[attr-defined]
        if _rtrace._ENABLED:
            trace = _rtrace.RequestTrace(
                trace_id or f"t{request.req_id}", model=entry.name, now=now
            )
            trace.push("queue", now)
            request.trace = trace
            # Front-ends add post-resolution spans (response encode)
            # without a side channel: the trace rides on the future.
            request.future.rtrace = trace  # type: ignore[attr-defined]
        with self._cond:
            if self._closed:
                _obs_metrics.METRICS.inc("serve.rejected.shutdown")
                raise ServeError(E_SHUTDOWN, "service is shutting down")
            if self._pending >= self.max_pending:
                _obs_metrics.METRICS.inc("serve.rejected.overloaded")
                SERVE_STATS.observe_request(
                    model=entry.name,
                    outcome="overloaded",
                    enqueued=now,
                    dispatched=None,
                    completed=now,
                )
                if now - self._overload_window_start > 1.0:
                    self._overload_window_start = now
                    self._overload_marks = 0
                self._overload_marks += 1
                if self._overload_marks == OVERLOAD_BURST_TRIP:
                    _rtrace.FLIGHT.trip("overload-burst")
                if request.trace is not None:
                    request.trace.seal("overloaded", now)
                    _rtrace.FLIGHT.record(request.trace)
                raise ServeError(
                    E_OVERLOADED,
                    f"queue full ({self._pending}/{self.max_pending})",
                )
            self._pending += 1
            _obs_metrics.METRICS.observe_max("serve.queue.peak", self._pending)
            full, opened = self._batcher.add(request, now)
            if full is not None:
                self._ready.append(full)
            # Wake the flusher only when there is news for it: a closed
            # batch to dispatch, or a newly opened batch whose deadline it
            # must start tracking.  A request riding an already-open batch
            # changes neither, and skipping the wakeup keeps the admission
            # path out of the flusher's way under load.
            if full is not None or opened:
                self._cond.notify_all()
        return request.future

    def _resolve_from_cache(
        self,
        entry: ModelEntry,
        cached: tuple,
        trace_id: Optional[str],
        now: float,
    ) -> "Future[tuple[Time, ...]]":
        """Answer a request straight from the result cache.

        The cached row was produced by a worker evaluation of the same
        ``(fingerprint, encoded volley, params)`` triple, so resolving
        with it is byte-identical to dispatching.  Deadlines are moot —
        the answer is immediate — and the request never counts against
        ``max_pending``.
        """
        _obs_metrics.METRICS.inc("serve.result_cache.served")
        _obs_metrics.METRICS.inc("serve.ok")
        SERVE_STATS.observe_request(
            model=entry.name,
            outcome="ok",
            enqueued=now,
            dispatched=None,
            completed=now,
        )
        future: "Future[tuple[Time, ...]]" = Future()
        future.model_id = entry.model_id  # type: ignore[attr-defined]
        if _rtrace._ENABLED:
            trace = _rtrace.RequestTrace(
                trace_id or f"t{next(self._req_ids)}", model=entry.name, now=now
            )
            trace.push("result-cache", now)
            trace.pop("result-cache", now)
            trace.seal("ok", now)
            _rtrace.FLIGHT.record(trace)
            future.rtrace = trace  # type: ignore[attr-defined]
        future.set_result(cached)
        return future

    def _validated(
        self,
        model: str,
        volley: Sequence[Time],
        params: Optional[Mapping[str, Time]],
    ) -> tuple[ModelEntry, tuple]:
        try:
            entry = self.registry.resolve(model)
        except ServeError:
            _obs_metrics.METRICS.inc("serve.rejected.no_such_model")
            raise
        if len(volley) != entry.input_arity:
            _obs_metrics.METRICS.inc("serve.rejected.bad_request")
            raise ServeError(
                E_BAD_REQUEST,
                f"model {entry.name!r} takes {entry.input_arity} lines, "
                f"got {len(volley)}",
            )
        if (params or entry.param_names) and set(params or {}) != set(
            entry.param_names
        ):
            _obs_metrics.METRICS.inc("serve.rejected.bad_request")
            raise ServeError(
                E_BAD_REQUEST,
                f"model {entry.name!r} params mismatch: need "
                f"{sorted(entry.param_names)}, got {sorted(params or {})}",
            )
        try:
            encoded = tuple(encode_time(value) for value in volley)
            for value in (params or {}).values():
                encode_time(value)
        except (NetworkError, TypeError, ValueError) as exc:
            _obs_metrics.METRICS.inc("serve.rejected.bad_request")
            raise ServeError(E_BAD_REQUEST, str(exc)) from exc
        return entry, encoded

    # -- the flusher thread ---------------------------------------------------
    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                now = monotonic()
                batches = self._ready
                self._ready = []
                batches.extend(self._batcher.due(now))
                if not batches:
                    if self._closed and self._batcher.pending() == 0:
                        return
                    wait = self._batcher.next_due(now)
                    self._cond.wait(timeout=wait if wait is not None else 0.25)
                    continue
            for batch in batches:
                self._dispatch(batch)

    def _dispatch(self, batch: Batch) -> None:
        now = monotonic()
        live: list[PendingRequest] = []
        for request in batch.requests:
            if request.expired(now):
                self._reject_deadline(request)
            else:
                live.append(request)
        if not live:
            return
        batch.requests = live
        if batch.attempts == 0:
            SERVE_STATS.observe_batch(len(live))
        batch.attempts += 1
        want_spans = 0
        attempt_no, n_live = batch.attempts, len(live)
        for request in live:
            request.dispatched = now
            if request.trace is not None:
                want_spans = 1
                request.trace.pop("queue", now)
                request.trace.push(
                    "attempt", now, {"attempt": attempt_no, "batch": n_live}
                )
        if want_spans:
            # Engine wall time (two clock reads in the worker) is cheap
            # enough for every traced batch; the per-phase breakdown runs
            # the engine under the profiler, so it is sampled.
            self._span_batches += 1
            if self._span_batches % PHASE_SAMPLE_EVERY == 1:
                want_spans = 2
        matrix = np.array(
            [
                request.encoded
                if request.encoded is not None
                else [encode_time(v) for v in request.volley]
                for request in live
            ],
            dtype=np.int64,
        )
        params_enc = {
            name: encode_time(value) for name, value in live[0].params.items()
        }
        job = Job(
            job_id=next(self._job_ids),
            model_id=batch.model_id,
            matrix=matrix,
            params_enc=params_enc,
            on_done=lambda result, b=batch: self._on_done(b, result),
            on_fail=lambda reason, b=batch: self._on_fail(b, reason),
            want_spans=want_spans,
            on_extras=lambda extras, b=batch: self._on_extras(b, extras),
        )
        try:
            with _obs_profile.phase("serve.dispatch"):
                self.pool.submit(job)
        except ServeError as error:
            self._on_fail(batch, error.message)

    # -- completion paths -----------------------------------------------------
    # Every admitted request releases exactly one admission slot, on
    # exactly one of three paths: a result (_on_done), a deadline
    # rejection (_reject_deadline), or a terminal worker failure
    # (_on_fail after the retry budget).  A retried batch releases
    # nothing until its final attempt resolves.

    def _on_extras(self, batch: Batch, extras: dict) -> None:
        """Stash the worker's timing payload for the completion callback."""
        batch.extras = extras

    def _close_attempt(
        self,
        request: PendingRequest,
        batch: Batch,
        now: float,
        attrs: Optional[dict] = None,
    ) -> None:
        """Close the open ``attempt`` span, grafting worker engine timings.

        The worker reports *durations* (its clock domain is not ours);
        the engine span is anchored to end at completion, so it is
        duration-accurate and placement-approximate.
        """
        trace = request.trace
        attempt_id = trace.pop("attempt", now, attrs or None)
        eval_s = (batch.extras or {}).get("eval_s")
        if not eval_s or attempt_id is None:
            return
        start = max(now - eval_s, trace.span_start(attempt_id))
        engine = trace.graft("engine", start, now, attempt_id)
        cursor = start
        for name, seconds in (batch.extras.get("phases") or {}).items():
            phase_end = min(cursor + seconds, now)
            trace.graft(f"engine.{name}", cursor, phase_end, engine)
            cursor = phase_end

    def _finish_trace(
        self,
        request: PendingRequest,
        outcome: str,
        now: float,
        attrs: Optional[dict] = None,
    ) -> None:
        """Finish and flight-record the request's trace, if it has one."""
        trace = request.trace
        if trace is None:
            return
        if attrs:
            trace.finish(outcome, now=now, **attrs)
        else:
            trace.seal(outcome, now)
        _rtrace.FLIGHT.record(trace)

    def _on_done(self, batch: Batch, result: np.ndarray) -> None:
        now = monotonic()
        rows = decode_matrix(result)
        completed = 0
        for request, row in zip(batch.requests, rows):
            if request.expired(now):
                if request.trace is not None:
                    self._close_attempt(request, batch, now)
                self._reject_deadline(request)
                continue
            SERVE_STATS.observe_request(
                model=request.model_name,
                outcome="ok",
                enqueued=request.enqueued,
                dispatched=request.dispatched or None,
                completed=now,
            )
            if request.trace is not None:
                self._close_attempt(request, batch, now)
                self._finish_trace(request, "ok", now)
            result = tuple(row)
            if request.digest is not None:
                # Store before resolving: a client that resubmits the
                # moment its future fires already sees the hit.
                RESULT_CACHE.put(request.model_id, request.digest, result)
                if request.model_id not in self.registry:
                    # The model was retired (hot-swap promotion) while
                    # this request was in flight; the row must not
                    # outlive the promotion's cache purge.  Put-then-
                    # check keeps the window closed from both sides.
                    RESULT_CACHE.evict_fingerprint(request.model_id)
            request.future.set_result(result)
            completed += 1
        _obs_metrics.METRICS.inc("serve.ok", completed)
        self._release(completed)

    def _on_fail(self, batch: Batch, reason: str) -> None:
        now = monotonic()
        retry = False
        with self._cond:
            if batch.attempts < self.max_attempts and not self._closed:
                self._ready.append(batch)
                self._cond.notify_all()
                retry = True
        if retry:
            _obs_metrics.METRICS.inc("serve.retries")
            for request in batch.requests:
                if request.trace is not None:
                    request.trace.pop("attempt", now, {"error": reason})
                    # The retry re-enters the batch wait; its spans join
                    # this same trace (one trace id, two attempts).
                    request.trace.push("queue", now)
            return
        _rtrace.FLIGHT.trip("worker-failure")
        for request in batch.requests:
            SERVE_STATS.observe_request(
                model=request.model_name,
                outcome="worker-failure",
                enqueued=request.enqueued,
                dispatched=request.dispatched or None,
                completed=now,
            )
            if request.trace is not None:
                request.trace.pop("attempt", now, {"error": reason})
                self._finish_trace(
                    request, "worker-failure", now, {"error": reason}
                )
            request.future.set_exception(
                ServeError(
                    E_WORKER,
                    f"batch failed after {batch.attempts} attempt(s): {reason}",
                )
            )
        self._release(len(batch.requests))

    def _reject_deadline(self, request: PendingRequest) -> None:
        now = monotonic()
        _obs_metrics.METRICS.inc("serve.rejected.deadline")
        SERVE_STATS.observe_request(
            model=request.model_name,
            outcome="deadline",
            enqueued=request.enqueued,
            dispatched=request.dispatched or None,
            completed=now,
        )
        _rtrace.FLIGHT.trip("deadline-miss")
        self._finish_trace(request, "deadline", now)
        request.future.set_exception(
            ServeError(E_DEADLINE, f"request {request.req_id} missed its deadline")
        )
        self._release(1)

    def _release(self, n: int) -> None:
        """Release *n* admission slots (requests left the system)."""
        if n == 0:
            return
        with self._cond:
            self._pending -= n
            self._cond.notify_all()

    # -- reference path and introspection -------------------------------------
    def direct(
        self,
        model: str,
        volleys: Sequence[Sequence[Time]],
        *,
        params: Optional[Mapping[str, Time]] = None,
    ) -> list[tuple[Time, ...]]:
        """One straight ``evaluate_batch`` on the registered network.

        This is the conformance oracle: a served response is correct
        exactly when its canonical encoding is byte-identical to this
        result's.
        """
        entry = self.registry.resolve(model)
        matrix = evaluate_batch(
            entry.network, [tuple(v) for v in volleys], params=params
        )
        return [tuple(row) for row in decode_matrix(matrix)]

    def pending(self) -> int:
        """Requests admitted and not yet completed (queued + in flight)."""
        with self._cond:
            return self._pending

    def stats(self) -> dict:
        """Live serving snapshot (see :func:`repro.serve.stats.serve_stats_snapshot`)."""
        snapshot = SERVE_STATS.snapshot()
        snapshot["models"] = len(self.registry)
        snapshot["max_pending"] = self.max_pending
        snapshot["policy"] = {
            "max_batch": self.policy.max_batch,
            "max_wait_ms": self.policy.max_wait_s * 1e3,
        }
        snapshot["engine"] = getattr(self.pool, "engine", "int64")
        warmups = getattr(self.pool, "warmups", None)
        if warmups is not None:
            per_worker = warmups()
            totals: dict[str, int] = {}
            for worker in per_worker:
                for key, count in worker.items():
                    totals[key] = totals.get(key, 0) + count
            snapshot["warmups"] = {"per_worker": per_worker, **totals}
        snapshot["result_cache"] = {
            "enabled": self.result_cache_enabled,
            **RESULT_CACHE.info(),
        }
        snapshot["promotions"] = _obs_metrics.METRICS.counter("serve.promotions")
        if self.training is not None:
            snapshot["training"] = self.training.stats()
        snapshot["rtrace"] = {
            "enabled": _rtrace.rtrace_enabled(),
            "flight": _rtrace.FLIGHT.stats(),
        }
        return snapshot

    def worker_metrics(self) -> list[dict]:
        """Per-worker metrics snapshots piggybacked on eval replies."""
        getter = getattr(self.pool, "worker_metrics", None)
        return getter() if getter is not None else []

    # -- lifecycle ------------------------------------------------------------
    def register(self, network, *, name: Optional[str] = None) -> ModelEntry:
        """Register a model and ship it to the worker pool."""
        before = set(self.registry.ids())
        entry = self.registry.register(network, name=name)
        with self._cond:
            self._document_archive[entry.model_id] = entry.document
            while len(self._document_archive) > self._archive_limit:
                self._document_archive.popitem(last=False)
        if entry.model_id not in before:
            self.pool.add_model(entry.model_id, entry.document)
        return entry

    def document(self, key: str) -> tuple[str, str]:
        """``(fingerprint, serialized document)`` for *key*.

        Resolves live models through the registry; retired fingerprints
        (hot-swapped away) fall back to the bounded archive, by full
        fingerprint or unambiguous prefix.  Raises
        :class:`ServeError` (``no-such-model``) when neither knows it.
        """
        try:
            entry = self.registry.resolve(key)
            return entry.model_id, entry.document
        except ServeError:
            with self._cond:
                if key in self._document_archive:
                    return key, self._document_archive[key]
                if len(key) >= 8:
                    hits = [
                        fp
                        for fp in self._document_archive
                        if fp.startswith(key)
                    ]
                    if len(hits) == 1:
                        return hits[0], self._document_archive[hits[0]]
            raise

    def promote(self, alias: str, key: str, *, retire: bool = True) -> dict:
        """Hot-swap *alias* to the model *key* resolves to — zero downtime.

        The ordering is load-bearing:

        1. resolve the target — it must already be registered (and
           therefore shipped to the pool by :meth:`register`);
        2. **warm barrier** — wait until every alive worker has drained
           its load backlog (:meth:`~repro.serve.pool.ProcessWorkerPool.
           wait_warm`), so the first admission routed to the new
           fingerprint never pays rebuild or JIT cost;
        3. **atomic flip** — :meth:`ModelRegistry.promote` repoints the
           alias under the registry lock: admissions before the flip
           resolved the old entry and complete on it (they hold the
           entry reference and workers keep its program loaded);
           admissions after resolve the new one;
        4. **retire** — unless ``retire=False`` or another alias still
           references it, the superseded fingerprint is removed and its
           compiled plans and memoized result rows purged from the
           runtime caches, so a retired model can never be served stale.

        Returns a summary dict (``alias``, ``model``, ``previous``,
        ``warmed``, ``retired``).
        """
        entry = self.registry.resolve(key)
        wait_warm = getattr(self.pool, "wait_warm", None)
        warmed = bool(wait_warm()) if wait_warm is not None else True
        previous, current = self.registry.promote(alias, entry.model_id)
        _obs_metrics.METRICS.inc("serve.promotions")
        retired = None
        if (
            retire
            and previous is not None
            and previous != current
            and previous not in self.registry.aliases().values()
        ):
            self.registry.remove(previous)
            retired = previous
        return {
            "alias": alias,
            "model": current,
            "previous": previous,
            "warmed": warmed,
            "retired": retired,
        }

    def close(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop admission, optionally drain in-flight work, stop the pool."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for batch in self._batcher.drain() + self._ready:
                    for request in batch.requests:
                        request.future.set_exception(
                            ServeError(E_SHUTDOWN, "service closed")
                        )
                    self._pending -= len(batch.requests)
                self._ready = []
            self._cond.notify_all()
        deadline = monotonic() + timeout
        if drain:
            with self._cond:
                while self._pending > 0 and monotonic() < deadline:
                    self._cond.wait(timeout=0.05)
        self._flusher.join(timeout=max(0.1, deadline - monotonic()))
        self.pool.shutdown(timeout=timeout)
        SERVE_STATS.unbind_gauges()
