"""Serving statistics: batch histogram, stage latency histograms, gauges.

The general-purpose :class:`~repro.obs.metrics.MetricsRegistry` carries
counters, accumulated timers and high-water marks — enough for "how many
requests / how much time", but not for the distribution-shaped questions
a serving layer gets asked: *what batch sizes is the micro-batcher
actually forming?* and *what are p50/p99 latencies, per model, per
stage, per outcome?*  This module adds exactly those structures, plus
the live gauges (queue depth, alive workers) that have no meaning as
monotone counters.

Latency is recorded into **log-bucketed sliding-window histograms**
(:class:`repro.obs.hist.HistogramVault`), keyed ``(model, stage,
outcome)``:

* stages — ``total`` (admission to completion), ``queue`` (admission to
  dispatch), ``service`` (dispatch to completion);
* outcomes — ``ok`` plus the failure modes (``deadline``,
  ``overloaded``, ``worker-failure``), so rejected and deadline-missed
  requests appear in the reported tail instead of vanishing from it
  (the old fixed-size sample window observed completed requests only,
  and over-weighted whatever burst happened last).

Everything funnels into the module-level :data:`SERVE_STATS`;
:func:`serve_stats_snapshot` is what ``python -m repro stats --json``,
the server's ``metrics`` endpoint, and the CI artifact all render, and
:func:`prometheus_text` renders the same telemetry in Prometheus text
exposition format for the ``metrics_text`` op.  Counter-shaped serve
events (requests, rejections, retries, restarts) still go to
:data:`repro.obs.metrics.METRICS` under ``serve.*`` so they appear
beside every other subsystem's counters.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from ..obs import metrics as _obs_metrics
from ..obs.hist import HistogramVault

#: Batch-size histogram bucket upper bounds (powers of two; last is open).
BATCH_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: The per-request lifecycle stages latency histograms are labelled by.
STAGES = ("total", "queue", "service")


class BatchHistogram:
    """Counts of formed batches by size, in power-of-two buckets."""

    def __init__(self) -> None:
        self._counts = [0] * (len(BATCH_BUCKETS) + 1)
        self._total_batches = 0
        self._total_rows = 0

    def observe(self, size: int) -> None:
        for slot, bound in enumerate(BATCH_BUCKETS):
            if size <= bound:
                self._counts[slot] += 1
                break
        else:
            self._counts[-1] += 1
        self._total_batches += 1
        self._total_rows += size

    def snapshot(self) -> dict:
        buckets = {
            f"le_{bound}": count
            for bound, count in zip(BATCH_BUCKETS, self._counts)
            if count
        }
        if self._counts[-1]:
            buckets[f"gt_{BATCH_BUCKETS[-1]}"] = self._counts[-1]
        mean = self._total_rows / self._total_batches if self._total_batches else 0.0
        return {
            "batches": self._total_batches,
            "rows": self._total_rows,
            "mean_size": round(mean, 3),
            "buckets": buckets,
        }

    def reset(self) -> None:
        self._counts = [0] * (len(BATCH_BUCKETS) + 1)
        self._total_batches = self._total_rows = 0


class ServeStats:
    """The one bag of serving distributions and gauges.

    Thread-safe: the batcher flushes from the dispatcher thread while
    completions land from the pool's collector thread.  Gauges are
    *pulled* — the service registers callables so the snapshot always
    reflects live state instead of a stale store.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batch_sizes = BatchHistogram()
        self.latency = HistogramVault()
        self._queue_depth: Optional[Callable[[], int]] = None
        self._workers_alive: Optional[Callable[[], int]] = None

    # -- writers -------------------------------------------------------------
    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batch_sizes.observe(size)
        _obs_metrics.METRICS.inc("serve.batches")
        _obs_metrics.METRICS.inc("serve.batched_rows", size)

    def observe_latency(
        self,
        seconds: float,
        *,
        model: str = "",
        stage: str = "total",
        outcome: str = "ok",
    ) -> None:
        """One latency observation (the vault owns its own lock)."""
        self.latency.observe(seconds, model=model, stage=stage, outcome=outcome)

    def observe_request(
        self,
        *,
        model: str,
        outcome: str,
        enqueued: float,
        dispatched: Optional[float],
        completed: float,
    ) -> None:
        """Record every stage of one finished request in one call.

        *dispatched* is ``None`` for requests that never reached a
        worker (overload rejections, pre-dispatch deadline misses) —
        those observe ``total`` only, under their failure outcome.
        """
        self.latency.observe(
            completed - enqueued, model=model, stage="total", outcome=outcome
        )
        if dispatched is not None:
            self.latency.observe(
                dispatched - enqueued, model=model, stage="queue", outcome=outcome
            )
            self.latency.observe(
                completed - dispatched, model=model, stage="service", outcome=outcome
            )

    # -- gauges --------------------------------------------------------------
    def bind_gauges(
        self,
        *,
        queue_depth: Optional[Callable[[], int]] = None,
        workers_alive: Optional[Callable[[], int]] = None,
    ) -> None:
        """Register the live-state callables the snapshot pulls from."""
        with self._lock:
            if queue_depth is not None:
                self._queue_depth = queue_depth
            if workers_alive is not None:
                self._workers_alive = workers_alive

    def unbind_gauges(self) -> None:
        with self._lock:
            self._queue_depth = None
            self._workers_alive = None

    # -- readers -------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            queue_cb, workers_cb = self._queue_depth, self._workers_alive
            batch = self.batch_sizes.snapshot()
        metrics = _obs_metrics.METRICS
        return {
            "queue_depth": queue_cb() if queue_cb else 0,
            "queue_peak": metrics.maximum("serve.queue.peak"),
            "workers_alive": workers_cb() if workers_cb else 0,
            "batch_size": batch,
            # The headline latency readout stays shaped like it always
            # was (count/p50/p90/p99/max over successful requests), now
            # computed from the windowed histogram instead of a sample
            # reservoir.
            "latency": self.latency.merged(stage="total", outcome="ok"),
            "latency_by_stage": {
                stage: self.latency.merged(stage=stage, outcome="ok")
                for stage in STAGES
            },
            "latency_by_outcome": self.latency.snapshot(),
            "requests": metrics.counter("serve.requests"),
            "responses_ok": metrics.counter("serve.ok"),
            "rejected": {
                "overloaded": metrics.counter("serve.rejected.overloaded"),
                "deadline": metrics.counter("serve.rejected.deadline"),
                "bad_request": metrics.counter("serve.rejected.bad_request"),
                "no_such_model": metrics.counter("serve.rejected.no_such_model"),
            },
            "worker_failures": metrics.counter("serve.worker.failures"),
            "worker_restarts": metrics.counter("serve.worker.restarts"),
            "retries": metrics.counter("serve.retries"),
        }

    def reset(self) -> None:
        with self._lock:
            self.batch_sizes.reset()
        self.latency.reset()


#: The process-wide serving stats every service instance writes to.
SERVE_STATS = ServeStats()


def serve_stats_snapshot() -> dict:
    """Snapshot of :data:`SERVE_STATS` (queue depth, batch histogram,
    per-stage/per-outcome latency histograms, rejection/restart counters)."""
    return SERVE_STATS.snapshot()


def reset_serve_stats() -> None:
    """Reset the serving distributions (counters live in ``repro.obs``)."""
    SERVE_STATS.reset()


# ---------------------------------------------------------------------------
# Prometheus text exposition (the `metrics_text` op)
# ---------------------------------------------------------------------------

#: The content type Prometheus scrapers expect for this format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _metric_name(raw: str) -> str:
    """A ``serve.worker.failures``-style key as a Prometheus metric name."""
    return "repro_" + raw.replace(".", "_").replace("-", "_")


def prometheus_text(*, extra_gauges: Optional[dict] = None) -> str:
    """The full telemetry set in Prometheus text exposition format.

    Sections: every :data:`repro.obs.metrics.METRICS` counter/maximum
    (timers as ``_seconds_total`` + ``_calls_total`` pairs), the serving
    gauges and batch-size histogram, and one latency histogram series
    per ``(model, stage, outcome)``.  *extra_gauges* lets the server
    front-end add live values (e.g. per-worker in-flight counts).
    """
    stats = SERVE_STATS
    metrics = _obs_metrics.METRICS.snapshot()
    lines: list[str] = []

    lines.append("# TYPE repro_counter_total counter")
    for name, value in metrics["counters"].items():
        lines.append(f"{_metric_name(name)}_total {value}")
    for name, entry in metrics["timers"].items():
        base = _metric_name(name)
        lines.append(f"{base}_seconds_total {entry['total_s']}")
        lines.append(f"{base}_calls_total {entry['calls']}")
    for name, value in metrics["maxima"].items():
        lines.append(f"{_metric_name(name)}_max {value}")

    with stats._lock:
        queue_cb, workers_cb = stats._queue_depth, stats._workers_alive
        batch = stats.batch_sizes.snapshot()
        counts = list(stats.batch_sizes._counts)
    lines.append("# TYPE repro_serve_queue_depth gauge")
    lines.append(f"repro_serve_queue_depth {queue_cb() if queue_cb else 0}")
    lines.append("# TYPE repro_serve_workers_alive gauge")
    lines.append(f"repro_serve_workers_alive {workers_cb() if workers_cb else 0}")
    for name, value in (extra_gauges or {}).items():
        lines.append(f"# TYPE {_metric_name(name)} gauge")
        lines.append(f"{_metric_name(name)} {value}")

    lines.append("# TYPE repro_serve_batch_size histogram")
    cumulative = 0
    for bound, count in zip(BATCH_BUCKETS, counts):
        cumulative += count
        lines.append(f'repro_serve_batch_size_bucket{{le="{bound}"}} {cumulative}')
    cumulative += counts[-1]
    lines.append(f'repro_serve_batch_size_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"repro_serve_batch_size_count {batch['batches']}")
    lines.append(f"repro_serve_batch_size_sum {batch['rows']}")

    lines.extend(stats.latency.prometheus_lines())
    return "\n".join(lines) + "\n"
