"""Serving statistics: batch-size histogram, latency quantiles, gauges.

The general-purpose :class:`~repro.obs.metrics.MetricsRegistry` carries
counters, accumulated timers and high-water marks — enough for "how many
requests / how much time", but not for the two distribution-shaped
questions a serving layer gets asked: *what batch sizes is the
micro-batcher actually forming?* and *what are p50/p99 request
latencies?*  This module adds exactly those two structures, plus the
live gauges (queue depth, alive workers) that have no meaning as
monotone counters.

Everything funnels into the module-level :data:`SERVE_STATS`;
:func:`serve_stats_snapshot` is what ``python -m repro stats --json``,
the server's ``metrics`` endpoint, and the CI artifact all render.
Counter-shaped serve events (requests, rejections, retries, restarts)
still go to :data:`repro.obs.metrics.METRICS` under ``serve.*`` so they
appear beside every other subsystem's counters.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Callable, Optional

from ..obs import metrics as _obs_metrics

#: Batch-size histogram bucket upper bounds (powers of two; last is open).
BATCH_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Latency reservoir size: quantiles are computed over the most recent
#: window of this many requests (a ring buffer, O(1) per observation).
LATENCY_WINDOW = 8192


class BatchHistogram:
    """Counts of formed batches by size, in power-of-two buckets."""

    def __init__(self) -> None:
        self._counts = [0] * (len(BATCH_BUCKETS) + 1)
        self._total_batches = 0
        self._total_rows = 0

    def observe(self, size: int) -> None:
        for slot, bound in enumerate(BATCH_BUCKETS):
            if size <= bound:
                self._counts[slot] += 1
                break
        else:
            self._counts[-1] += 1
        self._total_batches += 1
        self._total_rows += size

    def snapshot(self) -> dict:
        buckets = {
            f"le_{bound}": count
            for bound, count in zip(BATCH_BUCKETS, self._counts)
            if count
        }
        if self._counts[-1]:
            buckets[f"gt_{BATCH_BUCKETS[-1]}"] = self._counts[-1]
        mean = self._total_rows / self._total_batches if self._total_batches else 0.0
        return {
            "batches": self._total_batches,
            "rows": self._total_rows,
            "mean_size": round(mean, 3),
            "buckets": buckets,
        }

    def reset(self) -> None:
        self._counts = [0] * (len(BATCH_BUCKETS) + 1)
        self._total_batches = self._total_rows = 0


class LatencyWindow:
    """Request latencies over a sliding window, with quantile readout."""

    def __init__(self, capacity: int = LATENCY_WINDOW) -> None:
        self._window: deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        self._window.append(seconds)
        self._count += 1
        if seconds > self._max:
            self._max = seconds

    def quantile(self, q: float) -> float:
        """The *q*-quantile (0..1) of the current window, in seconds."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "count": self._count,
            "window": len(self._window),
            "p50_ms": round(self.quantile(0.50) * 1e3, 3),
            "p90_ms": round(self.quantile(0.90) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99) * 1e3, 3),
            "max_ms": round(self._max * 1e3, 3),
        }

    def reset(self) -> None:
        self._window.clear()
        self._count = 0
        self._max = 0.0


class ServeStats:
    """The one bag of serving distributions and gauges.

    Thread-safe: the batcher flushes from the dispatcher thread while
    completions land from the pool's collector thread.  Gauges are
    *pulled* — the service registers callables so the snapshot always
    reflects live state instead of a stale store.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.batch_sizes = BatchHistogram()
        self.latency = LatencyWindow()
        self._queue_depth: Optional[Callable[[], int]] = None
        self._workers_alive: Optional[Callable[[], int]] = None

    # -- writers -------------------------------------------------------------
    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batch_sizes.observe(size)
        _obs_metrics.METRICS.inc("serve.batches")
        _obs_metrics.METRICS.inc("serve.batched_rows", size)

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency.observe(seconds)

    # -- gauges --------------------------------------------------------------
    def bind_gauges(
        self,
        *,
        queue_depth: Optional[Callable[[], int]] = None,
        workers_alive: Optional[Callable[[], int]] = None,
    ) -> None:
        """Register the live-state callables the snapshot pulls from."""
        with self._lock:
            if queue_depth is not None:
                self._queue_depth = queue_depth
            if workers_alive is not None:
                self._workers_alive = workers_alive

    def unbind_gauges(self) -> None:
        with self._lock:
            self._queue_depth = None
            self._workers_alive = None

    # -- readers -------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            queue_cb, workers_cb = self._queue_depth, self._workers_alive
            batch = self.batch_sizes.snapshot()
            latency = self.latency.snapshot()
        metrics = _obs_metrics.METRICS
        return {
            "queue_depth": queue_cb() if queue_cb else 0,
            "queue_peak": metrics.maximum("serve.queue.peak"),
            "workers_alive": workers_cb() if workers_cb else 0,
            "batch_size": batch,
            "latency": latency,
            "requests": metrics.counter("serve.requests"),
            "responses_ok": metrics.counter("serve.ok"),
            "rejected": {
                "overloaded": metrics.counter("serve.rejected.overloaded"),
                "deadline": metrics.counter("serve.rejected.deadline"),
                "bad_request": metrics.counter("serve.rejected.bad_request"),
                "no_such_model": metrics.counter("serve.rejected.no_such_model"),
            },
            "worker_failures": metrics.counter("serve.worker.failures"),
            "worker_restarts": metrics.counter("serve.worker.restarts"),
            "retries": metrics.counter("serve.retries"),
        }

    def reset(self) -> None:
        with self._lock:
            self.batch_sizes.reset()
            self.latency.reset()


#: The process-wide serving stats every service instance writes to.
SERVE_STATS = ServeStats()


def serve_stats_snapshot() -> dict:
    """Snapshot of :data:`SERVE_STATS` (queue depth, batch histogram,
    latency quantiles, rejection/restart counters)."""
    return SERVE_STATS.snapshot()


def reset_serve_stats() -> None:
    """Reset the serving distributions (counters live in ``repro.obs``)."""
    SERVE_STATS.reset()
