"""``python -m repro top``: a live terminal dashboard for the server.

Polls a running ``python -m repro serve`` instance over its own NDJSON
protocol — the ``metrics`` op for the structured snapshot and ``health``
for liveness — and renders a compact top-style view: request/queue
gauges, throughput computed from successive counter deltas, per-stage
latency quantiles from the sliding-window histograms, outcome counters,
worker pool state, and flight-recorder trips.

``--once`` prints a single frame and exits (scriptable, and what the
tests drive); otherwise the screen refreshes every ``--interval``
seconds until interrupted.  The dashboard is a pure client: it holds one
connection and sends one request per frame, so watching a server costs
it one extra request per interval.
"""

from __future__ import annotations

import argparse
import json
import socket
import time
from typing import Any, Optional

from .protocol import encode_line

#: ANSI clear-screen + home, used between live frames.
_CLEAR = "\x1b[2J\x1b[H"


class TopClient:
    """A blocking single-connection NDJSON client (dashboard-grade)."""

    def __init__(self, host: str, port: int, *, timeout: float = 5.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def request(self, message: dict) -> dict:
        self._sock.sendall(encode_line(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


def _fmt_quantiles(h: Optional[dict]) -> str:
    if not h or not h.get("count"):
        return "-"
    return (
        f"n={h['count']} p50={h['p50_ms']:.2f}ms "
        f"p90={h['p90_ms']:.2f}ms p99={h['p99_ms']:.2f}ms "
        f"max={h['max_ms']:.2f}ms"
    )


def render_frame(
    payload: dict, *, previous: Optional[dict] = None, interval: float = 0.0
) -> str:
    """One dashboard frame from a ``metrics`` payload (pure function).

    *previous* is the prior frame's payload; with it (and *interval*)
    the frame shows request/response rates from counter deltas.
    """
    serve: dict[str, Any] = payload.get("serve", {})
    lines: list[str] = []

    def rate(key: str) -> str:
        if previous is None or interval <= 0:
            return ""
        delta = serve.get(key, 0) - previous.get("serve", {}).get(key, 0)
        return f" ({delta / interval:,.0f}/s)"

    lines.append(
        f"repro serve top — engine={serve.get('engine', '?')} "
        f"models={serve.get('models', '?')} "
        f"workers={serve.get('workers_alive', '?')} "
        f"queue={serve.get('queue_depth', '?')}/{serve.get('max_pending', '?')} "
        f"(peak {serve.get('queue_peak', '?')})"
    )
    lines.append(
        f"requests: {serve.get('requests', 0):,}{rate('requests')}   "
        f"ok: {serve.get('responses_ok', 0):,}{rate('responses_ok')}   "
        f"retries: {serve.get('retries', 0)}"
    )
    rejected = serve.get("rejected", {})
    lines.append(
        "rejected: "
        + "  ".join(f"{k}={v}" for k, v in sorted(rejected.items()))
    )
    batch = serve.get("batch_size", {})
    lines.append(
        f"batches: {batch.get('batches', 0):,} "
        f"rows={batch.get('rows', 0):,} mean_size={batch.get('mean_size', 0)}"
    )
    lines.append("latency (ok, sliding window):")
    for stage, hist in (serve.get("latency_by_stage") or {}).items():
        lines.append(f"  {stage:<8} {_fmt_quantiles(hist)}")
    by_outcome = serve.get("latency_by_outcome") or {}
    failure_rows = []
    for model, stages in sorted(by_outcome.items()):
        for outcome, hist in sorted((stages.get("total") or {}).items()):
            if outcome != "ok" and hist.get("count"):
                failure_rows.append(
                    f"  {model or '(all)'}/{outcome:<16} {_fmt_quantiles(hist)}"
                )
    if failure_rows:
        lines.append("latency (failures, total stage):")
        lines.extend(failure_rows)
    workers = payload.get("workers", {})
    if workers.get("reporting"):
        merged = workers.get("merged", {}).get("counters", {})
        evals = {
            name: value
            for name, value in merged.items()
            if name.startswith(("eval", "native", "plan"))
        }
        lines.append(
            f"workers reporting: {workers['reporting']}  "
            + "  ".join(f"{k}={v:,}" for k, v in sorted(evals.items())[:4])
        )
    rtrace = serve.get("rtrace", {})
    flight = rtrace.get("flight", {})
    lines.append(
        f"rtrace: {'on' if rtrace.get('enabled') else 'off'}  "
        f"flight: {flight.get('buffered', 0)}/{flight.get('capacity', 0)} "
        f"buffered, {flight.get('recorded', 0)} recorded, "
        f"trips={flight.get('trips', {}) or '{}'}"
    )
    failures = serve.get("worker_failures", 0)
    restarts = serve.get("worker_restarts", 0)
    if failures or restarts:
        lines.append(f"worker failures: {failures}  restarts: {restarts}")
    return "\n".join(lines)


def top_main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description=(
            "Live terminal dashboard for a running `python -m repro "
            "serve` instance (polls its metrics op)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (seconds)"
    )
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    args = parser.parse_args(argv)
    try:
        client = TopClient(args.host, args.port)
    except OSError as error:
        print(f"top: cannot connect to {args.host}:{args.port}: {error}")
        return 1
    previous: Optional[dict] = None
    try:
        while True:
            try:
                payload = client.request({"op": "metrics"})
            except (OSError, ConnectionError, json.JSONDecodeError) as error:
                print(f"top: server went away: {error}")
                return 1
            frame = render_frame(
                payload, previous=previous, interval=args.interval
            )
            if args.once:
                print(frame)
                return 0
            print(_CLEAR + frame, flush=True)
            previous = payload
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()
